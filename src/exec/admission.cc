#include "exec/admission.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/query_context.h"

namespace dashdb {
namespace {

struct AdmissionInstruments {
  Counter* admitted;
  Counter* queued;
  Counter* shed;
};

AdmissionInstruments& GlobalAdmissionInstruments() {
  auto& reg = MetricRegistry::Global();
  static AdmissionInstruments in{
      reg.GetCounter("exec.admission_admitted"),
      reg.GetCounter("exec.admission_queued"),
      reg.GetCounter("exec.admission_shed"),
  };
  return in;
}

}  // namespace

AdmissionTicket& AdmissionTicket::operator=(AdmissionTicket&& o) noexcept {
  if (this != &o) {
    if (ctrl_ != nullptr) ctrl_->Release(cls_);
    ctrl_ = o.ctrl_;
    cls_ = o.cls_;
    o.ctrl_ = nullptr;
  }
  return *this;
}

AdmissionTicket::~AdmissionTicket() {
  if (ctrl_ != nullptr) ctrl_->Release(cls_);
}

Result<AdmissionTicket> AdmissionController::Admit(QueryClass cls,
                                                   QueryContext* qctx) {
  auto& in = GlobalAdmissionInstruments();
  std::unique_lock<std::mutex> lk(mu_);
  int& running =
      cls == QueryClass::kCheap ? running_cheap_ : running_expensive_;
  const int slots =
      cls == QueryClass::kCheap ? cfg_.cheap_slots : cfg_.expensive_slots;
  if (running < slots) {
    ++running;
    in.admitted->Add(1);
    return AdmissionTicket(this, cls);
  }
  if (queued_ >= cfg_.max_queued) {
    in.shed->Add(1);
    return Status::ResourceExhausted("admission queue full");
  }
  ++queued_;
  in.queued->Add(1);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(cfg_.queue_timeout_seconds));
  // Wait in bounded slices so a cancelled governor (dropped connection,
  // CANCEL frame) releases its queue spot promptly instead of occupying it
  // until the queue timeout.
  bool got = false;
  for (;;) {
    const auto slice = std::min(
        deadline, std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(qctx != nullptr ? 10 : 1000));
    got = slot_cv_.wait_until(lk, slice, [&] {
      const int s =
          cls == QueryClass::kCheap ? cfg_.cheap_slots : cfg_.expensive_slots;
      return running < s;
    });
    if (got) break;
    if (qctx != nullptr && qctx->cancelled()) {
      --queued_;
      return Status::Cancelled("query cancelled while queued for admission");
    }
    if (std::chrono::steady_clock::now() >= deadline) break;
  }
  --queued_;
  if (!got) {
    in.shed->Add(1);
    return Status::ResourceExhausted("admission queue timeout");
  }
  ++running;
  in.admitted->Add(1);
  return AdmissionTicket(this, cls);
}

void AdmissionController::Release(QueryClass cls) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (cls == QueryClass::kCheap) {
      --running_cheap_;
    } else {
      --running_expensive_;
    }
  }
  slot_cv_.notify_all();
}

}  // namespace dashdb
