#include "exec/functions.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/datetime.h"
#include "common/hash.h"
#include "exec/geo.h"
#include "exec/json.h"

namespace dashdb {

namespace {

// ---- helpers ------------------------------------------------------------

bool AnyNull(const std::vector<Value>& a) {
  for (const auto& v : a) {
    if (v.is_null()) return true;
  }
  return false;
}

Result<std::string> Str(const Value& v) {
  DASHDB_ASSIGN_OR_RETURN(Value s, v.CastTo(TypeId::kVarchar));
  return s.AsString();
}

Result<int64_t> Int(const Value& v) {
  DASHDB_ASSIGN_OR_RETURN(Value s, v.CastTo(TypeId::kInt64));
  return s.AsInt();
}

Result<double> Dbl(const Value& v) {
  DASHDB_ASSIGN_OR_RETURN(Value s, v.CastTo(TypeId::kDouble));
  return s.AsDouble();
}

TypeId RetVarchar(const std::vector<TypeId>&) { return TypeId::kVarchar; }
TypeId RetInt64(const std::vector<TypeId>&) { return TypeId::kInt64; }
TypeId RetDouble(const std::vector<TypeId>&) { return TypeId::kDouble; }
TypeId RetDate(const std::vector<TypeId>&) { return TypeId::kDate; }
TypeId RetFirstArg(const std::vector<TypeId>& a) {
  return a.empty() ? TypeId::kVarchar : a[0];
}

/// SUBSTR with Oracle semantics: 1-based, negative start counts from end.
Result<Value> SubstrImpl(const std::vector<Value>& a, const ExecContext&) {
  if (a[0].is_null() || a[1].is_null()) return Value::Null(TypeId::kVarchar);
  DASHDB_ASSIGN_OR_RETURN(std::string s, Str(a[0]));
  DASHDB_ASSIGN_OR_RETURN(int64_t start, Int(a[1]));
  int64_t len = static_cast<int64_t>(s.size());
  if (a.size() >= 3 && a[2].is_null()) return Value::Null(TypeId::kVarchar);
  int64_t count = a.size() >= 3 ? 0 : len;
  if (a.size() >= 3) {
    DASHDB_ASSIGN_OR_RETURN(count, Int(a[2]));
  }
  if (count < 0) return Value::Null(TypeId::kVarchar);
  if (start < 0) start = std::max<int64_t>(len + start + 1, 1);
  if (start == 0) start = 1;
  if (start > len) return Value::String("");
  int64_t from = start - 1;
  int64_t take = std::min(count, len - from);
  return Value::String(s.substr(from, take));
}

Result<Value> DecodeImpl(const std::vector<Value>& a, const ExecContext&) {
  // DECODE(expr, s1, r1, s2, r2, ..., [default]); NULL matches NULL.
  const Value& e = a[0];
  size_t i = 1;
  for (; i + 1 < a.size(); i += 2) {
    const Value& search = a[i];
    bool match = (e.is_null() && search.is_null()) ||
                 (!e.is_null() && !search.is_null() && e.Compare(search) == 0);
    if (match) return a[i + 1];
  }
  if (i < a.size()) return a[i];  // default
  return Value::Null(a.size() >= 3 ? a[2].type() : TypeId::kVarchar);
}

Result<Value> ToCharImpl(const std::vector<Value>& a, const ExecContext&) {
  if (a[0].is_null()) return Value::Null(TypeId::kVarchar);
  if (a.size() == 1) return a[0].CastTo(TypeId::kVarchar);
  DASHDB_ASSIGN_OR_RETURN(std::string fmt, Str(a[1]));
  if (a[0].type() == TypeId::kDate || a[0].type() == TypeId::kTimestamp) {
    DASHDB_ASSIGN_OR_RETURN(Value d, a[0].CastTo(TypeId::kDate));
    CivilDate c = CivilFromDays(static_cast<int32_t>(d.AsInt()));
    char buf[32];
    if (fmt == "YYYY-MM-DD") {
      std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", c.year, c.month, c.day);
    } else if (fmt == "YYYYMMDD") {
      std::snprintf(buf, sizeof(buf), "%04d%02d%02d", c.year, c.month, c.day);
    } else if (fmt == "YYYY") {
      std::snprintf(buf, sizeof(buf), "%04d", c.year);
    } else if (fmt == "MM") {
      std::snprintf(buf, sizeof(buf), "%02d", c.month);
    } else if (fmt == "DD") {
      std::snprintf(buf, sizeof(buf), "%02d", c.day);
    } else {
      return Status::Unimplemented("TO_CHAR date format '" + fmt + "'");
    }
    return Value::String(buf);
  }
  // Numeric formats: '9999', 'FM9999' -> plain; anything else unsupported.
  return a[0].CastTo(TypeId::kVarchar);
}

Result<Value> ToDateImpl(const std::vector<Value>& a, const ExecContext&) {
  if (a[0].is_null()) return Value::Null(TypeId::kDate);
  DASHDB_ASSIGN_OR_RETURN(std::string s, Str(a[0]));
  if (a.size() >= 2 && !a[1].is_null()) {
    DASHDB_ASSIGN_OR_RETURN(std::string fmt, Str(a[1]));
    if (fmt == "YYYYMMDD" && s.size() == 8) {
      s = s.substr(0, 4) + "-" + s.substr(4, 2) + "-" + s.substr(6, 2);
    }
    // 'YYYY-MM-DD' and compatible fall through to the default parser.
  }
  DASHDB_ASSIGN_OR_RETURN(int32_t days, ParseDate(s));
  return Value::Date(days);
}

Result<Value> DatePartImpl(const std::vector<Value>& a, const ExecContext&) {
  if (AnyNull(a)) return Value::Null(TypeId::kInt64);
  DASHDB_ASSIGN_OR_RETURN(std::string part, Str(a[0]));
  std::transform(part.begin(), part.end(), part.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  DASHDB_ASSIGN_OR_RETURN(Value d, a[1].CastTo(TypeId::kDate));
  int32_t days = static_cast<int32_t>(d.AsInt());
  CivilDate c = CivilFromDays(days);
  if (part == "year") return Value::Int64(c.year);
  if (part == "month") return Value::Int64(c.month);
  if (part == "day") return Value::Int64(c.day);
  if (part == "dow") return Value::Int64(DayOfWeek(days));
  if (part == "doy") return Value::Int64(DayOfYear(days));
  if (part == "quarter") return Value::Int64((c.month - 1) / 3 + 1);
  if (part == "week") return Value::Int64((DayOfYear(days) - 1) / 7 + 1);
  return Status::InvalidArgument("DATE_PART: unknown field '" + part + "'");
}

Result<Value> PadImpl(const std::vector<Value>& a, bool left) {
  if (AnyNull(a)) return Value::Null(TypeId::kVarchar);
  DASHDB_ASSIGN_OR_RETURN(std::string s, Str(a[0]));
  DASHDB_ASSIGN_OR_RETURN(int64_t n, Int(a[1]));
  std::string pad = " ";
  if (a.size() >= 3) {
    DASHDB_ASSIGN_OR_RETURN(pad, Str(a[2]));
    if (pad.empty()) return Value::Null(TypeId::kVarchar);
  }
  if (n <= 0) return Value::String("");
  if (static_cast<size_t>(n) <= s.size()) return Value::String(s.substr(0, n));
  std::string fill;
  while (fill.size() < n - s.size()) fill += pad;
  fill.resize(n - s.size());
  return Value::String(left ? fill + s : s + fill);
}

const char* kHexDigits = "0123456789ABCDEF";

Result<Value> MinMaxImpl(const std::vector<Value>& a, bool want_max) {
  if (AnyNull(a)) return Value::Null(a[0].type());
  const Value* best = &a[0];
  for (size_t i = 1; i < a.size(); ++i) {
    int c = a[i].Compare(*best);
    if (want_max ? c > 0 : c < 0) best = &a[i];
  }
  return *best;
}

}  // namespace

// ---- registry -----------------------------------------------------------

const FunctionRegistry& FunctionRegistry::Global() {
  static FunctionRegistry* reg = new FunctionRegistry();
  return *reg;
}

const FunctionDef* FunctionRegistry::Lookup(
    const std::string& upper_name) const {
  auto it = fns_.find(upper_name);
  return it == fns_.end() ? nullptr : &it->second;
}

std::vector<std::string> FunctionRegistry::NamesByOrigin(Dialect d) const {
  std::vector<std::string> out;
  for (const auto& [name, def] : fns_) {
    if (def.origin == d) out.push_back(name);
  }
  return out;
}

void FunctionRegistry::Register(FunctionDef def) {
  fns_[def.name] = std::move(def);
}

FunctionRegistry::FunctionRegistry() {
  auto reg = [this](std::string name, int mn, int mx, Dialect origin,
                    std::function<TypeId(const std::vector<TypeId>&)> rt,
                    ScalarFnImpl fn) {
    Register(FunctionDef{std::move(name), mn, mx, origin, std::move(rt),
                         std::move(fn)});
  };

  // ---- ANSI core --------------------------------------------------------
  reg("UPPER", 1, 1, Dialect::kAnsi, RetVarchar,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null()) return Value::Null(TypeId::kVarchar);
        DASHDB_ASSIGN_OR_RETURN(std::string s, Str(a[0]));
        std::transform(s.begin(), s.end(), s.begin(),
                       [](unsigned char c) { return std::toupper(c); });
        return Value::String(s);
      });
  reg("LOWER", 1, 1, Dialect::kAnsi, RetVarchar,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null()) return Value::Null(TypeId::kVarchar);
        DASHDB_ASSIGN_OR_RETURN(std::string s, Str(a[0]));
        std::transform(s.begin(), s.end(), s.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        return Value::String(s);
      });
  reg("LENGTH", 1, 1, Dialect::kAnsi, RetInt64,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null()) return Value::Null(TypeId::kInt64);
        DASHDB_ASSIGN_OR_RETURN(std::string s, Str(a[0]));
        return Value::Int64(static_cast<int64_t>(s.size()));
      });
  reg("TRIM", 1, 1, Dialect::kAnsi, RetVarchar,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null()) return Value::Null(TypeId::kVarchar);
        DASHDB_ASSIGN_OR_RETURN(std::string s, Str(a[0]));
        size_t b = s.find_first_not_of(' ');
        size_t e = s.find_last_not_of(' ');
        return Value::String(b == std::string::npos
                                 ? ""
                                 : s.substr(b, e - b + 1));
      });
  reg("LTRIM", 1, 1, Dialect::kAnsi, RetVarchar,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null()) return Value::Null(TypeId::kVarchar);
        DASHDB_ASSIGN_OR_RETURN(std::string s, Str(a[0]));
        size_t b = s.find_first_not_of(' ');
        return Value::String(b == std::string::npos ? "" : s.substr(b));
      });
  reg("RTRIM", 1, 1, Dialect::kAnsi, RetVarchar,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null()) return Value::Null(TypeId::kVarchar);
        DASHDB_ASSIGN_OR_RETURN(std::string s, Str(a[0]));
        size_t e = s.find_last_not_of(' ');
        return Value::String(e == std::string::npos ? "" : s.substr(0, e + 1));
      });
  reg("REPLACE", 3, 3, Dialect::kAnsi, RetVarchar,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (AnyNull(a)) return Value::Null(TypeId::kVarchar);
        DASHDB_ASSIGN_OR_RETURN(std::string s, Str(a[0]));
        DASHDB_ASSIGN_OR_RETURN(std::string from, Str(a[1]));
        DASHDB_ASSIGN_OR_RETURN(std::string to, Str(a[2]));
        if (from.empty()) return Value::String(s);
        std::string out;
        size_t pos = 0;
        for (;;) {
          size_t hit = s.find(from, pos);
          if (hit == std::string::npos) {
            out += s.substr(pos);
            break;
          }
          out += s.substr(pos, hit - pos);
          out += to;
          pos = hit + from.size();
        }
        return Value::String(out);
      });
  reg("CONCAT", 2, -1, Dialect::kAnsi, RetVarchar,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        std::string out;
        for (const auto& v : a) {
          if (v.is_null()) continue;
          DASHDB_ASSIGN_OR_RETURN(std::string s, Str(v));
          out += s;
        }
        return Value::String(out);
      });
  reg("ABS", 1, 1, Dialect::kAnsi, RetFirstArg,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null()) return a[0];
        if (a[0].type() == TypeId::kDouble) {
          return Value::Double(std::fabs(a[0].AsDouble()));
        }
        return Value::Int64(std::llabs(a[0].AsInt()));
      });
  reg("MOD", 2, 2, Dialect::kAnsi, RetInt64,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (AnyNull(a)) return Value::Null(TypeId::kInt64);
        DASHDB_ASSIGN_OR_RETURN(int64_t x, Int(a[0]));
        DASHDB_ASSIGN_OR_RETURN(int64_t y, Int(a[1]));
        if (y == 0) return Status::InvalidArgument("MOD by zero");
        if (y == -1) return Value::Int64(0);  // INT64_MIN % -1 traps
        return Value::Int64(x % y);
      });
  reg("FLOOR", 1, 1, Dialect::kAnsi, RetDouble,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null()) return Value::Null(TypeId::kDouble);
        DASHDB_ASSIGN_OR_RETURN(double d, Dbl(a[0]));
        return Value::Double(std::floor(d));
      });
  reg("CEIL", 1, 1, Dialect::kAnsi, RetDouble,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null()) return Value::Null(TypeId::kDouble);
        DASHDB_ASSIGN_OR_RETURN(double d, Dbl(a[0]));
        return Value::Double(std::ceil(d));
      });
  reg("ROUND", 1, 2, Dialect::kAnsi, RetDouble,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null()) return Value::Null(TypeId::kDouble);
        DASHDB_ASSIGN_OR_RETURN(double d, Dbl(a[0]));
        int64_t places = 0;
        if (a.size() >= 2 && !a[1].is_null()) {
          DASHDB_ASSIGN_OR_RETURN(places, Int(a[1]));
        }
        double scale = std::pow(10.0, static_cast<double>(places));
        return Value::Double(std::round(d * scale) / scale);
      });
  reg("SQRT", 1, 1, Dialect::kAnsi, RetDouble,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null()) return Value::Null(TypeId::kDouble);
        DASHDB_ASSIGN_OR_RETURN(double d, Dbl(a[0]));
        if (d < 0) return Status::InvalidArgument("SQRT of negative");
        return Value::Double(std::sqrt(d));
      });
  reg("EXP", 1, 1, Dialect::kAnsi, RetDouble,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null()) return Value::Null(TypeId::kDouble);
        DASHDB_ASSIGN_OR_RETURN(double d, Dbl(a[0]));
        return Value::Double(std::exp(d));
      });
  reg("LN", 1, 1, Dialect::kAnsi, RetDouble,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null()) return Value::Null(TypeId::kDouble);
        DASHDB_ASSIGN_OR_RETURN(double d, Dbl(a[0]));
        if (d <= 0) return Status::InvalidArgument("LN of non-positive");
        return Value::Double(std::log(d));
      });
  reg("SIGN", 1, 1, Dialect::kAnsi, RetInt64,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null()) return Value::Null(TypeId::kInt64);
        DASHDB_ASSIGN_OR_RETURN(double d, Dbl(a[0]));
        return Value::Int64(d > 0 ? 1 : (d < 0 ? -1 : 0));
      });
  reg("COALESCE", 1, -1, Dialect::kAnsi, RetFirstArg,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        for (const auto& v : a) {
          if (!v.is_null()) return v;
        }
        return a.back();
      });
  reg("NULLIF", 2, 2, Dialect::kAnsi, RetFirstArg,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (!a[0].is_null() && !a[1].is_null() && a[0].Compare(a[1]) == 0) {
          return Value::Null(a[0].type());
        }
        return a[0];
      });
  reg("CURRENT_DATE", 0, 0, Dialect::kAnsi, RetDate,
      [](const std::vector<Value>&, const ExecContext& ctx) -> Result<Value> {
        return Value::Date(static_cast<int32_t>(ctx.current_date_days));
      });
  reg("YEAR", 1, 1, Dialect::kAnsi, RetInt64,
      [](const std::vector<Value>& a, const ExecContext& c) -> Result<Value> {
        return DatePartImpl({Value::String("year"), a[0]}, c);
      });
  reg("MONTH", 1, 1, Dialect::kAnsi, RetInt64,
      [](const std::vector<Value>& a, const ExecContext& c) -> Result<Value> {
        return DatePartImpl({Value::String("month"), a[0]}, c);
      });
  reg("DAY", 1, 1, Dialect::kAnsi, RetInt64,
      [](const std::vector<Value>& a, const ExecContext& c) -> Result<Value> {
        return DatePartImpl({Value::String("day"), a[0]}, c);
      });

  // ---- Oracle (paper II.C.1.a) -------------------------------------------
  auto substr_def = [&](const char* name) {
    reg(name, 2, 3, Dialect::kOracle, RetVarchar, SubstrImpl);
  };
  substr_def("SUBSTR");
  substr_def("SUBSTR2");
  substr_def("SUBSTR4");
  substr_def("SUBSTRB");
  reg("NVL", 2, 2, Dialect::kOracle, RetFirstArg,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        return a[0].is_null() ? a[1] : a[0];
      });
  reg("NVL2", 3, 3, Dialect::kOracle,
      [](const std::vector<TypeId>& t) {
        return t.size() >= 2 ? t[1] : TypeId::kVarchar;
      },
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        return a[0].is_null() ? a[2] : a[1];
      });
  reg("INSTR", 2, 3, Dialect::kOracle, RetInt64,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null() || a[1].is_null()) return Value::Null(TypeId::kInt64);
        DASHDB_ASSIGN_OR_RETURN(std::string s, Str(a[0]));
        DASHDB_ASSIGN_OR_RETURN(std::string sub, Str(a[1]));
        int64_t from = 1;
        if (a.size() >= 3 && !a[2].is_null()) {
          DASHDB_ASSIGN_OR_RETURN(from, Int(a[2]));
        }
        if (from < 1 || static_cast<size_t>(from) > s.size() + 1) {
          return Value::Int64(0);
        }
        size_t pos = s.find(sub, from - 1);
        return Value::Int64(pos == std::string::npos
                                ? 0
                                : static_cast<int64_t>(pos) + 1);
      });
  reg("LPAD", 2, 3, Dialect::kOracle, RetVarchar,
      [](const std::vector<Value>& a, const ExecContext&) {
        return PadImpl(a, true);
      });
  reg("RPAD", 2, 3, Dialect::kOracle, RetVarchar,
      [](const std::vector<Value>& a, const ExecContext&) {
        return PadImpl(a, false);
      });
  reg("INITCAP", 1, 1, Dialect::kOracle, RetVarchar,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null()) return Value::Null(TypeId::kVarchar);
        DASHDB_ASSIGN_OR_RETURN(std::string s, Str(a[0]));
        bool start = true;
        for (char& c : s) {
          if (std::isalnum(static_cast<unsigned char>(c))) {
            c = start ? std::toupper(static_cast<unsigned char>(c))
                      : std::tolower(static_cast<unsigned char>(c));
            start = false;
          } else {
            start = true;
          }
        }
        return Value::String(s);
      });
  reg("HEXTORAW", 1, 1, Dialect::kOracle, RetVarchar,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null()) return Value::Null(TypeId::kVarchar);
        DASHDB_ASSIGN_OR_RETURN(std::string s, Str(a[0]));
        if (s.size() % 2) return Status::InvalidArgument("odd hex length");
        std::string out;
        for (size_t i = 0; i < s.size(); i += 2) {
          auto nib = [](char c) -> int {
            if (c >= '0' && c <= '9') return c - '0';
            if (c >= 'A' && c <= 'F') return c - 'A' + 10;
            if (c >= 'a' && c <= 'f') return c - 'a' + 10;
            return -1;
          };
          int h = nib(s[i]), l = nib(s[i + 1]);
          if (h < 0 || l < 0) return Status::InvalidArgument("bad hex digit");
          out.push_back(static_cast<char>((h << 4) | l));
        }
        return Value::String(out);
      });
  reg("RAWTOHEX", 1, 1, Dialect::kOracle, RetVarchar,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null()) return Value::Null(TypeId::kVarchar);
        DASHDB_ASSIGN_OR_RETURN(std::string s, Str(a[0]));
        std::string out;
        for (unsigned char c : s) {
          out.push_back(kHexDigits[c >> 4]);
          out.push_back(kHexDigits[c & 15]);
        }
        return Value::String(out);
      });
  reg("LEAST", 1, -1, Dialect::kOracle, RetFirstArg,
      [](const std::vector<Value>& a, const ExecContext&) {
        return MinMaxImpl(a, false);
      });
  reg("GREATEST", 1, -1, Dialect::kOracle, RetFirstArg,
      [](const std::vector<Value>& a, const ExecContext&) {
        return MinMaxImpl(a, true);
      });
  reg("DECODE", 3, -1, Dialect::kOracle,
      [](const std::vector<TypeId>& t) {
        return t.size() >= 3 ? t[2] : TypeId::kVarchar;
      },
      DecodeImpl);
  reg("TO_CHAR", 1, 2, Dialect::kOracle, RetVarchar, ToCharImpl);
  reg("TO_DATE", 1, 2, Dialect::kOracle, RetDate, ToDateImpl);
  reg("TO_NUMBER", 1, 1, Dialect::kOracle, RetDouble,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null()) return Value::Null(TypeId::kDouble);
        return a[0].CastTo(TypeId::kDouble);
      });
  reg("SYSDATE", 0, 0, Dialect::kOracle, RetDate,
      [](const std::vector<Value>&, const ExecContext& ctx) -> Result<Value> {
        return Value::Date(static_cast<int32_t>(ctx.current_date_days));
      });

  // ---- Netezza / PostgreSQL (paper II.C.1.b) ------------------------------
  reg("NOW", 0, 0, Dialect::kNetezza,
      [](const std::vector<TypeId>&) { return TypeId::kTimestamp; },
      [](const std::vector<Value>&, const ExecContext& ctx) -> Result<Value> {
        return Value::Timestamp(ctx.now_micros);
      });
  reg("DATE_PART", 2, 2, Dialect::kNetezza, RetInt64, DatePartImpl);
  reg("POW", 2, 2, Dialect::kNetezza, RetDouble,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (AnyNull(a)) return Value::Null(TypeId::kDouble);
        DASHDB_ASSIGN_OR_RETURN(double x, Dbl(a[0]));
        DASHDB_ASSIGN_OR_RETURN(double y, Dbl(a[1]));
        return Value::Double(std::pow(x, y));
      });
  auto hash_impl = [](const std::vector<Value>& a,
                      const ExecContext&) -> Result<Value> {
    if (a[0].is_null()) return Value::Null(TypeId::kInt64);
    DASHDB_ASSIGN_OR_RETURN(std::string s, Str(a[0]));
    return Value::Int64(static_cast<int64_t>(HashString(s)));
  };
  reg("HASH", 1, 1, Dialect::kNetezza, RetInt64, hash_impl);
  reg("HASH8", 1, 1, Dialect::kNetezza, RetInt64, hash_impl);
  reg("HASH4", 1, 1, Dialect::kNetezza, RetInt64,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null()) return Value::Null(TypeId::kInt64);
        DASHDB_ASSIGN_OR_RETURN(std::string s, Str(a[0]));
        return Value::Int64(
            static_cast<int64_t>(static_cast<uint32_t>(HashString(s))));
      });
  reg("BTRIM", 1, 2, Dialect::kNetezza, RetVarchar,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null()) return Value::Null(TypeId::kVarchar);
        DASHDB_ASSIGN_OR_RETURN(std::string s, Str(a[0]));
        std::string chars = " ";
        if (a.size() >= 2 && !a[1].is_null()) {
          DASHDB_ASSIGN_OR_RETURN(chars, Str(a[1]));
        }
        size_t b = s.find_first_not_of(chars);
        size_t e = s.find_last_not_of(chars);
        return Value::String(b == std::string::npos ? ""
                                                    : s.substr(b, e - b + 1));
      });
  reg("TO_HEX", 1, 1, Dialect::kNetezza, RetVarchar,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null()) return Value::Null(TypeId::kVarchar);
        DASHDB_ASSIGN_OR_RETURN(int64_t v, Int(a[0]));
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%llx",
                      static_cast<unsigned long long>(v));
        return Value::String(buf);
      });
  auto bitop = [&reg](const char* name, auto op) {
    reg(name, 2, 2, Dialect::kNetezza, RetInt64,
        [op](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
          if (AnyNull(a)) return Value::Null(TypeId::kInt64);
          DASHDB_ASSIGN_OR_RETURN(int64_t x, Int(a[0]));
          DASHDB_ASSIGN_OR_RETURN(int64_t y, Int(a[1]));
          return Value::Int64(op(x, y));
        });
  };
  bitop("INT4AND", [](int64_t x, int64_t y) { return x & y; });
  bitop("INT4OR", [](int64_t x, int64_t y) { return x | y; });
  bitop("INT4XOR", [](int64_t x, int64_t y) { return x ^ y; });
  bitop("INT8AND", [](int64_t x, int64_t y) { return x & y; });
  bitop("INT8OR", [](int64_t x, int64_t y) { return x | y; });
  bitop("INT8XOR", [](int64_t x, int64_t y) { return x ^ y; });
  reg("INT4NOT", 1, 1, Dialect::kNetezza, RetInt64,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null()) return Value::Null(TypeId::kInt64);
        DASHDB_ASSIGN_OR_RETURN(int64_t x, Int(a[0]));
        return Value::Int64(~x);
      });
  reg("INT8NOT", 1, 1, Dialect::kNetezza, RetInt64,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null()) return Value::Null(TypeId::kInt64);
        DASHDB_ASSIGN_OR_RETURN(int64_t x, Int(a[0]));
        return Value::Int64(~x);
      });
  auto strleft = [](const std::vector<Value>& a,
                    const ExecContext&) -> Result<Value> {
    if (AnyNull(a)) return Value::Null(TypeId::kVarchar);
    DASHDB_ASSIGN_OR_RETURN(std::string s, Str(a[0]));
    DASHDB_ASSIGN_OR_RETURN(int64_t n, Int(a[1]));
    if (n <= 0) return Value::String("");
    return Value::String(s.substr(0, n));
  };
  reg("STRLEFT", 2, 2, Dialect::kNetezza, RetVarchar, strleft);
  reg("STRLFT", 2, 2, Dialect::kNetezza, RetVarchar, strleft);
  reg("STRRIGHT", 2, 2, Dialect::kNetezza, RetVarchar,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (AnyNull(a)) return Value::Null(TypeId::kVarchar);
        DASHDB_ASSIGN_OR_RETURN(std::string s, Str(a[0]));
        DASHDB_ASSIGN_OR_RETURN(int64_t n, Int(a[1]));
        if (n <= 0) return Value::String("");
        size_t take = std::min<size_t>(s.size(), n);
        return Value::String(s.substr(s.size() - take));
      });
  reg("STRPOS", 2, 2, Dialect::kNetezza, RetInt64,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (AnyNull(a)) return Value::Null(TypeId::kInt64);
        DASHDB_ASSIGN_OR_RETURN(std::string s, Str(a[0]));
        DASHDB_ASSIGN_OR_RETURN(std::string sub, Str(a[1]));
        size_t pos = s.find(sub);
        return Value::Int64(pos == std::string::npos
                                ? 0
                                : static_cast<int64_t>(pos) + 1);
      });
  reg("AGE", 2, 2, Dialect::kNetezza, RetInt64,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (AnyNull(a)) return Value::Null(TypeId::kInt64);
        DASHDB_ASSIGN_OR_RETURN(Value d1, a[0].CastTo(TypeId::kDate));
        DASHDB_ASSIGN_OR_RETURN(Value d2, a[1].CastTo(TypeId::kDate));
        return Value::Int64(d1.AsInt() - d2.AsInt());  // days
      });
  reg("NEXT_MONTH", 1, 1, Dialect::kNetezza, RetDate,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null()) return Value::Null(TypeId::kDate);
        DASHDB_ASSIGN_OR_RETURN(Value d, a[0].CastTo(TypeId::kDate));
        CivilDate c = CivilFromDays(static_cast<int32_t>(d.AsInt()));
        int y = c.year, m = c.month + 1;
        if (m > 12) {
          m = 1;
          ++y;
        }
        return Value::Date(DaysFromCivil(y, m, 1));
      });
  auto between = [&reg](const char* name, int64_t divisor) {
    reg(name, 2, 2, Dialect::kNetezza, RetInt64,
        [divisor](const std::vector<Value>& a,
                  const ExecContext&) -> Result<Value> {
          if (AnyNull(a)) return Value::Null(TypeId::kInt64);
          DASHDB_ASSIGN_OR_RETURN(Value t1, a[0].CastTo(TypeId::kTimestamp));
          DASHDB_ASSIGN_OR_RETURN(Value t2, a[1].CastTo(TypeId::kTimestamp));
          int64_t diff_secs = (t2.AsInt() - t1.AsInt()) / 1000000;
          return Value::Int64(diff_secs / divisor);
        });
  };
  between("SECONDS_BETWEEN", 1);
  between("HOURS_BETWEEN", 3600);
  between("DAYS_BETWEEN", 86400);
  between("WEEKS_BETWEEN", 7 * 86400);

  // ---- DB2 (paper II.C.1.c) -----------------------------------------------
  reg("NORMALIZE_DECFLOAT", 1, 1, Dialect::kDb2, RetDouble,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null()) return Value::Null(TypeId::kDouble);
        return a[0].CastTo(TypeId::kDouble);  // doubles are always normalized
      });
  reg("COMPARE_DECFLOAT", 2, 2, Dialect::kDb2, RetInt64,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (AnyNull(a)) return Value::Null(TypeId::kInt64);
        DASHDB_ASSIGN_OR_RETURN(double x, Dbl(a[0]));
        DASHDB_ASSIGN_OR_RETURN(double y, Dbl(a[1]));
        if (std::isnan(x) || std::isnan(y)) return Value::Int64(3);
        return Value::Int64(x < y ? -1 : (x > y ? 1 : 0));
      });

  // ---- Geospatial, SQL/MM style (paper II.C.5) -----------------------------
  reg("ST_POINT", 2, 2, Dialect::kAnsi, RetVarchar,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (AnyNull(a)) return Value::Null(TypeId::kVarchar);
        DASHDB_ASSIGN_OR_RETURN(double x, Dbl(a[0]));
        DASHDB_ASSIGN_OR_RETURN(double y, Dbl(a[1]));
        geo::Geometry g;
        g.kind = geo::GeomKind::kPoint;
        g.points = {{x, y}};
        return Value::String(g.ToWkt());
      });
  auto coord = [](bool want_x) {
    return [want_x](const std::vector<Value>& a,
                    const ExecContext&) -> Result<Value> {
      if (a[0].is_null()) return Value::Null(TypeId::kDouble);
      DASHDB_ASSIGN_OR_RETURN(std::string w, Str(a[0]));
      DASHDB_ASSIGN_OR_RETURN(geo::Geometry g, geo::ParseWkt(w));
      if (g.kind != geo::GeomKind::kPoint) {
        return Status::InvalidArgument("ST_X/ST_Y require a POINT");
      }
      return Value::Double(want_x ? g.points[0].x : g.points[0].y);
    };
  };
  reg("ST_X", 1, 1, Dialect::kAnsi, RetDouble, coord(true));
  reg("ST_Y", 1, 1, Dialect::kAnsi, RetDouble, coord(false));
  reg("ST_DISTANCE", 2, 2, Dialect::kAnsi, RetDouble,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (AnyNull(a)) return Value::Null(TypeId::kDouble);
        DASHDB_ASSIGN_OR_RETURN(std::string wa, Str(a[0]));
        DASHDB_ASSIGN_OR_RETURN(std::string wb, Str(a[1]));
        DASHDB_ASSIGN_OR_RETURN(geo::Geometry ga, geo::ParseWkt(wa));
        DASHDB_ASSIGN_OR_RETURN(geo::Geometry gb, geo::ParseWkt(wb));
        return Value::Double(geo::Distance(ga, gb));
      });
  auto containment = [](bool polygon_first) {
    return [polygon_first](const std::vector<Value>& a,
                           const ExecContext&) -> Result<Value> {
      if (AnyNull(a)) return Value::Null(TypeId::kBoolean);
      DASHDB_ASSIGN_OR_RETURN(std::string wa, Str(a[0]));
      DASHDB_ASSIGN_OR_RETURN(std::string wb, Str(a[1]));
      DASHDB_ASSIGN_OR_RETURN(geo::Geometry ga, geo::ParseWkt(wa));
      DASHDB_ASSIGN_OR_RETURN(geo::Geometry gb, geo::ParseWkt(wb));
      const geo::Geometry& poly = polygon_first ? ga : gb;
      const geo::Geometry& pt = polygon_first ? gb : ga;
      if (poly.kind != geo::GeomKind::kPolygon ||
          pt.kind != geo::GeomKind::kPoint) {
        return Status::InvalidArgument(
            "containment requires (POLYGON, POINT)");
      }
      return Value::Boolean(geo::Contains(poly, pt.points[0]));
    };
  };
  auto ret_bool = [](const std::vector<TypeId>&) { return TypeId::kBoolean; };
  reg("ST_CONTAINS", 2, 2, Dialect::kAnsi, ret_bool, containment(true));
  reg("ST_WITHIN", 2, 2, Dialect::kAnsi, ret_bool, containment(false));
  reg("ST_AREA", 1, 1, Dialect::kAnsi, RetDouble,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null()) return Value::Null(TypeId::kDouble);
        DASHDB_ASSIGN_OR_RETURN(std::string w, Str(a[0]));
        DASHDB_ASSIGN_OR_RETURN(geo::Geometry g, geo::ParseWkt(w));
        return Value::Double(geo::Area(g));
      });
  reg("ST_LENGTH", 1, 1, Dialect::kAnsi, RetDouble,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null()) return Value::Null(TypeId::kDouble);
        DASHDB_ASSIGN_OR_RETURN(std::string w, Str(a[0]));
        DASHDB_ASSIGN_OR_RETURN(geo::Geometry g, geo::ParseWkt(w));
        return Value::Double(geo::Length(g));
      });
  reg("ST_NUMPOINTS", 1, 1, Dialect::kAnsi, RetInt64,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null()) return Value::Null(TypeId::kInt64);
        DASHDB_ASSIGN_OR_RETURN(std::string w, Str(a[0]));
        DASHDB_ASSIGN_OR_RETURN(geo::Geometry g, geo::ParseWkt(w));
        return Value::Int64(static_cast<int64_t>(g.points.size()));
      });
  reg("ST_ASTEXT", 1, 1, Dialect::kAnsi, RetVarchar,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null()) return Value::Null(TypeId::kVarchar);
        DASHDB_ASSIGN_OR_RETURN(std::string w, Str(a[0]));
        DASHDB_ASSIGN_OR_RETURN(geo::Geometry g, geo::ParseWkt(w));
        return Value::String(g.ToWkt());
      });
  // ---- JSON analytics (paper Section VI future work) ----------------------
  reg("JSON_VALUE", 2, 2, Dialect::kAnsi, RetVarchar,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (AnyNull(a)) return Value::Null(TypeId::kVarchar);
        DASHDB_ASSIGN_OR_RETURN(std::string doc, Str(a[0]));
        DASHDB_ASSIGN_OR_RETURN(std::string path, Str(a[1]));
        return json::Extract(doc, path);
      });
  reg("JSON_ARRAY_LENGTH", 1, 2, Dialect::kAnsi, RetInt64,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (a[0].is_null()) return Value::Null(TypeId::kInt64);
        DASHDB_ASSIGN_OR_RETURN(std::string doc, Str(a[0]));
        std::string path = "$";
        if (a.size() >= 2 && !a[1].is_null()) {
          DASHDB_ASSIGN_OR_RETURN(path, Str(a[1]));
        }
        return json::ArrayLength(doc, path);
      });
  auto ret_bool2 = [](const std::vector<TypeId>&) { return TypeId::kBoolean; };
  reg("JSON_EXISTS", 2, 2, Dialect::kAnsi, ret_bool2,
      [](const std::vector<Value>& a, const ExecContext&) -> Result<Value> {
        if (AnyNull(a)) return Value::Boolean(false);
        DASHDB_ASSIGN_OR_RETURN(std::string doc, Str(a[0]));
        DASHDB_ASSIGN_OR_RETURN(std::string path, Str(a[1]));
        return json::Exists(doc, path);
      });

  // ---- purity + columnar kernels ----------------------------------------
  // Pure = deterministic and context-free (beyond dialect string
  // semantics, which the binder's fold context shares with execution):
  // a pure call over all-literal arguments folds at bind time. Functions
  // reading the clock/date context (SYSDATE, NOW, CURRENT_DATE, AGE) and
  // conversion functions with format-model state stay unfoldable.
  for (const char* n :
       {"UPPER",    "LOWER",   "LENGTH",   "TRIM",     "LTRIM",   "RTRIM",
        "REPLACE",  "CONCAT",  "ABS",      "MOD",      "FLOOR",   "CEIL",
        "ROUND",    "SQRT",    "EXP",      "LN",       "SIGN",    "COALESCE",
        "NULLIF",   "YEAR",    "MONTH",    "DAY",      "SUBSTR",  "SUBSTR2",
        "SUBSTR4",  "SUBSTRB", "NVL",      "NVL2",     "INSTR",   "LPAD",
        "RPAD",     "INITCAP", "HEXTORAW", "RAWTOHEX", "LEAST",   "GREATEST",
        "DECODE",   "POW",     "HASH",     "HASH8",    "HASH4",   "BTRIM",
        "TO_HEX",   "INT4NOT", "INT8NOT",  "STRLEFT",  "STRLFT",  "STRRIGHT",
        "STRPOS",   "NEXT_MONTH"}) {
    fns_[n].pure = true;
  }

  // Columnar kernels for the hottest scalar functions. Each mirrors its
  // row implementation exactly — including Oracle empty-string-is-NULL on
  // arguments and results — and declines (returns false) on argument
  // types it does not specialize, falling back to the row loop.
  auto case_map_vec = [](int (*conv)(int)) {
    return [conv](const std::vector<ColumnVector>& args, size_t rows,
                  const ExecContext& ctx, ColumnVector* out) -> Result<bool> {
      const ColumnVector& in = args[0];
      if (in.type() != TypeId::kVarchar) return false;
      const bool oracle = ctx.EmptyStringIsNull();
      out->Reserve(rows);
      for (size_t i = 0; i < rows; ++i) {
        if (in.IsNull(i) || (oracle && in.strings()[i].empty())) {
          out->AppendNull();
          continue;
        }
        std::string s = in.strings()[i];
        std::transform(s.begin(), s.end(), s.begin(),
                       [conv](unsigned char c) { return conv(c); });
        out->AppendString(std::move(s));
      }
      return true;
    };
  };
  fns_["UPPER"].vec_fn = case_map_vec([](int c) { return std::toupper(c); });
  fns_["LOWER"].vec_fn = case_map_vec([](int c) { return std::tolower(c); });
  fns_["LENGTH"].vec_fn = [](const std::vector<ColumnVector>& args,
                             size_t rows, const ExecContext& ctx,
                             ColumnVector* out) -> Result<bool> {
    const ColumnVector& in = args[0];
    if (in.type() != TypeId::kVarchar) return false;
    const bool oracle = ctx.EmptyStringIsNull();
    out->Reserve(rows);
    for (size_t i = 0; i < rows; ++i) {
      if (in.IsNull(i) || (oracle && in.strings()[i].empty())) {
        out->AppendNull();
      } else {
        out->AppendInt(static_cast<int64_t>(in.strings()[i].size()));
      }
    }
    return true;
  };
  fns_["ABS"].vec_fn = [](const std::vector<ColumnVector>& args, size_t rows,
                          const ExecContext&,
                          ColumnVector* out) -> Result<bool> {
    const ColumnVector& in = args[0];
    if (in.type() == TypeId::kDouble) {
      out->Reserve(rows);
      for (size_t i = 0; i < rows; ++i) {
        if (in.IsNull(i)) {
          out->AppendNull();
        } else {
          out->AppendDouble(std::fabs(in.doubles()[i]));
        }
      }
      return true;
    }
    if (IsIntegerBacked(in.type())) {
      out->Reserve(rows);
      for (size_t i = 0; i < rows; ++i) {
        if (in.IsNull(i)) {
          out->AppendNull();
        } else {
          out->AppendInt(std::llabs(in.ints()[i]));
        }
      }
      return true;
    }
    return false;
  };
}

}  // namespace dashdb
