#include "exec/agg.h"

#include <algorithm>
#include <cmath>

namespace dashdb {

bool AggKindFromName(const std::string& u, AggKind* out) {
  if (u == "COUNT") *out = AggKind::kCount;
  else if (u == "SUM") *out = AggKind::kSum;
  else if (u == "AVG" || u == "MEAN") *out = AggKind::kAvg;
  else if (u == "MIN") *out = AggKind::kMin;
  else if (u == "MAX") *out = AggKind::kMax;
  else if (u == "VAR_POP" || u == "VARIANCE_POP") *out = AggKind::kVarPop;
  else if (u == "VAR_SAMP" || u == "VARIANCE" || u == "VARIANCE_SAMP")
    *out = AggKind::kVarSamp;  // DB2 VARIANCE is sample variance
  else if (u == "STDDEV_POP") *out = AggKind::kStddevPop;
  else if (u == "STDDEV" || u == "STDDEV_SAMP") *out = AggKind::kStddevSamp;
  else if (u == "COVAR_POP" || u == "COVARIANCE") *out = AggKind::kCovarPop;
  else if (u == "COVAR_SAMP" || u == "COVARIANCE_SAMP")
    *out = AggKind::kCovarSamp;
  else if (u == "MEDIAN") *out = AggKind::kMedian;
  else if (u == "PERCENTILE_CONT") *out = AggKind::kPercentileCont;
  else if (u == "PERCENTILE_DISC") *out = AggKind::kPercentileDisc;
  else return false;
  return true;
}

TypeId AggResultType(AggKind kind, TypeId input) {
  switch (kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      return TypeId::kInt64;
    case AggKind::kSum:
      return input == TypeId::kDouble ? TypeId::kDouble : TypeId::kInt64;
    case AggKind::kMin:
    case AggKind::kMax:
      return input;
    default:
      return TypeId::kDouble;
  }
}

void AggState::Add(const Value& v, const Value& v2) {
  if (spec_->kind == AggKind::kCountStar) {
    ++count_;
    return;
  }
  if (v.is_null()) return;
  if (spec_->distinct) {
    std::string key = TypeName(v.type()) + std::string(":") + v.ToString();
    if (!seen_.insert(key).second) return;
  }
  switch (spec_->kind) {
    case AggKind::kCount:
      ++count_;
      break;
    case AggKind::kSum:
    case AggKind::kAvg: {
      ++count_;
      if (v.type() == TypeId::kDouble) int_domain_ = false;
      sum_ += v.AsDouble();
      if (int_domain_) isum_ += v.AsInt();
      break;
    }
    case AggKind::kMin:
      if (!min_ || v.Compare(*min_) < 0) min_ = v;
      break;
    case AggKind::kMax:
      if (!max_ || v.Compare(*max_) > 0) max_ = v;
      break;
    case AggKind::kVarPop:
    case AggKind::kVarSamp:
    case AggKind::kStddevPop:
    case AggKind::kStddevSamp: {
      ++count_;
      double x = v.AsDouble();
      double d = x - mean_;
      mean_ += d / count_;
      m2_ += d * (x - mean_);
      break;
    }
    case AggKind::kCovarPop:
    case AggKind::kCovarSamp: {
      if (v2.is_null()) return;
      ++count_;
      double x = v.AsDouble(), y = v2.AsDouble();
      double dx = x - mean_x_;
      mean_x_ += dx / count_;
      mean_y_ += (y - mean_y_) / count_;
      cxy_ += dx * (y - mean_y_);
      break;
    }
    case AggKind::kMedian:
    case AggKind::kPercentileCont:
    case AggKind::kPercentileDisc:
      ++count_;
      values_.push_back(v.AsDouble());
      break;
    case AggKind::kCountStar:
      break;
  }
}

void AggState::AddNumericFast(double x, int64_t ix, bool int_domain) {
  switch (spec_->kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      ++count_;
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      ++count_;
      if (!int_domain) int_domain_ = false;
      sum_ += x;
      if (int_domain_) isum_ += ix;
      break;
    case AggKind::kMin:
    case AggKind::kMax:
      if (!fast_minmax_) {
        fast_minmax_ = true;
        fast_int_domain_ = int_domain;
        dmin_ = dmax_ = x;
        imin_ = imax_ = ix;
      } else {
        if (!int_domain) fast_int_domain_ = false;
        dmin_ = std::min(dmin_, x);
        dmax_ = std::max(dmax_, x);
        imin_ = std::min(imin_, ix);
        imax_ = std::max(imax_, ix);
      }
      break;
    case AggKind::kVarPop:
    case AggKind::kVarSamp:
    case AggKind::kStddevPop:
    case AggKind::kStddevSamp: {
      ++count_;
      double d = x - mean_;
      mean_ += d / count_;
      m2_ += d * (x - mean_);
      break;
    }
    case AggKind::kMedian:
    case AggKind::kPercentileCont:
    case AggKind::kPercentileDisc:
      ++count_;
      values_.push_back(x);
      break;
    case AggKind::kCovarPop:
    case AggKind::kCovarSamp:
      // Two-argument aggregates stay on the boxed path.
      break;
  }
}

void AggState::Merge(const AggState& o) {
  // Chan et al. parallel updates need the pre-merge counts.
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(o.count_);
  switch (spec_->kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      break;  // count_ merged below
    case AggKind::kSum:
    case AggKind::kAvg:
      sum_ += o.sum_;
      isum_ += o.isum_;
      int_domain_ = int_domain_ && o.int_domain_;
      break;
    case AggKind::kMin:
    case AggKind::kMax:
      if (o.fast_minmax_) {
        if (!fast_minmax_) {
          fast_minmax_ = true;
          fast_int_domain_ = o.fast_int_domain_;
          dmin_ = o.dmin_;
          dmax_ = o.dmax_;
          imin_ = o.imin_;
          imax_ = o.imax_;
        } else {
          fast_int_domain_ = fast_int_domain_ && o.fast_int_domain_;
          dmin_ = std::min(dmin_, o.dmin_);
          dmax_ = std::max(dmax_, o.dmax_);
          imin_ = std::min(imin_, o.imin_);
          imax_ = std::max(imax_, o.imax_);
        }
      }
      if (o.min_ && (!min_ || o.min_->Compare(*min_) < 0)) min_ = o.min_;
      if (o.max_ && (!max_ || o.max_->Compare(*max_) > 0)) max_ = o.max_;
      break;
    case AggKind::kVarPop:
    case AggKind::kVarSamp:
    case AggKind::kStddevPop:
    case AggKind::kStddevSamp:
      if (o.count_ > 0) {
        if (count_ == 0) {
          mean_ = o.mean_;
          m2_ = o.m2_;
        } else {
          double d = o.mean_ - mean_;
          double tot = n1 + n2;
          mean_ += d * n2 / tot;
          m2_ += o.m2_ + d * d * n1 * n2 / tot;
        }
      }
      break;
    case AggKind::kCovarPop:
    case AggKind::kCovarSamp:
      if (o.count_ > 0) {
        if (count_ == 0) {
          mean_x_ = o.mean_x_;
          mean_y_ = o.mean_y_;
          cxy_ = o.cxy_;
        } else {
          double dx = o.mean_x_ - mean_x_;
          double dy = o.mean_y_ - mean_y_;
          double tot = n1 + n2;
          mean_x_ += dx * n2 / tot;
          mean_y_ += dy * n2 / tot;
          cxy_ += o.cxy_ + dx * dy * n1 * n2 / tot;
        }
      }
      break;
    case AggKind::kMedian:
    case AggKind::kPercentileCont:
    case AggKind::kPercentileDisc:
      values_.insert(values_.end(), o.values_.begin(), o.values_.end());
      break;
  }
  count_ += o.count_;
}

Value AggState::Finish() const {
  switch (spec_->kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      return Value::Int64(count_);
    case AggKind::kSum:
      if (count_ == 0) return Value::Null(spec_->out_type);
      return int_domain_ && spec_->out_type != TypeId::kDouble
                 ? Value::Int64(isum_)
                 : Value::Double(sum_);
    case AggKind::kAvg:
      if (count_ == 0) return Value::Null(TypeId::kDouble);
      return Value::Double(sum_ / count_);
    case AggKind::kMin:
    case AggKind::kMax: {
      if (fast_minmax_) {
        bool want_min = spec_->kind == AggKind::kMin;
        if (fast_int_domain_ && spec_->out_type != TypeId::kDouble) {
          auto cast = Value::Int64(want_min ? imin_ : imax_)
                          .CastTo(spec_->out_type);
          return cast.ok() ? *cast : Value::Int64(want_min ? imin_ : imax_);
        }
        return Value::Double(want_min ? dmin_ : dmax_);
      }
      if (spec_->kind == AggKind::kMin) {
        return min_ ? *min_ : Value::Null(spec_->out_type);
      }
      return max_ ? *max_ : Value::Null(spec_->out_type);
    }
    case AggKind::kVarPop:
      if (count_ == 0) return Value::Null(TypeId::kDouble);
      return Value::Double(m2_ / count_);
    case AggKind::kVarSamp:
      if (count_ < 2) return Value::Null(TypeId::kDouble);
      return Value::Double(m2_ / (count_ - 1));
    case AggKind::kStddevPop:
      if (count_ == 0) return Value::Null(TypeId::kDouble);
      return Value::Double(std::sqrt(m2_ / count_));
    case AggKind::kStddevSamp:
      if (count_ < 2) return Value::Null(TypeId::kDouble);
      return Value::Double(std::sqrt(m2_ / (count_ - 1)));
    case AggKind::kCovarPop:
      if (count_ == 0) return Value::Null(TypeId::kDouble);
      return Value::Double(cxy_ / count_);
    case AggKind::kCovarSamp:
      if (count_ < 2) return Value::Null(TypeId::kDouble);
      return Value::Double(cxy_ / (count_ - 1));
    case AggKind::kMedian:
    case AggKind::kPercentileCont:
    case AggKind::kPercentileDisc: {
      if (values_.empty()) return Value::Null(TypeId::kDouble);
      std::sort(values_.begin(), values_.end());
      double f = spec_->kind == AggKind::kMedian ? 0.5 : spec_->param;
      double idx = f * (values_.size() - 1);
      if (spec_->kind == AggKind::kPercentileDisc) {
        // Smallest value whose cumulative distribution >= f.
        size_t k = static_cast<size_t>(std::ceil(f * values_.size()));
        if (k > 0) --k;
        return Value::Double(values_[k]);
      }
      size_t lo = static_cast<size_t>(std::floor(idx));
      size_t hi = static_cast<size_t>(std::ceil(idx));
      double frac = idx - lo;
      return Value::Double(values_[lo] * (1 - frac) + values_[hi] * frac);
    }
  }
  return Value::Null(TypeId::kDouble);
}

}  // namespace dashdb
