// Join-order search for the cost-based optimizer. Relations and equi-join
// edges form an undirected join graph; OrderJoins picks a linear (left-deep)
// order that minimizes the sum of intermediate-result sizes plus hash-table
// build sizes. Up to kDpMaxRelations free relations the search is exact
// (DPsize-style dynamic programming over connected subsets); beyond that a
// greedy nearest-neighbor heuristic keeps planning O(n^2).
//
// A `prefix` of already-executed relations can be passed in for runtime
// adaptive re-planning: those relations are fixed at the front of the order
// (with their *observed* row counts in `rels`), and only the suffix is
// re-searched.
#pragma once

#include <vector>

namespace dashdb {

/// One FROM item, reduced to its estimated (or observed) output rows.
struct JoinRelation {
  double rows = 0;
};

/// Equi-join edge between relations a and b with per-side key NDVs
/// (0 = unknown). Selectivity is 1 / max(ndv_a, ndv_b) by distinct-count
/// containment.
struct JoinGraphEdge {
  int a = 0;
  int b = 0;
  double a_ndv = 0;
  double b_ndv = 0;
};

/// Exact DP is used while the number of relations to order (excluding the
/// prefix) is at most this; larger graphs fall back to greedy.
constexpr int kDpMaxRelations = 10;

/// Returns a permutation of [0, rels.size()) beginning with `prefix`
/// (verbatim) such that joining relations in that order minimizes the cost
/// model described above. Relations with no connecting edge are joined last
/// (cross product, heavily penalized).
std::vector<int> OrderJoins(const std::vector<JoinRelation>& rels,
                            const std::vector<JoinGraphEdge>& edges,
                            const std::vector<int>& prefix = {});

}  // namespace dashdb
