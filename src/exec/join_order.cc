#include "exec/join_order.h"

#include <algorithm>
#include <cstdint>
#include <limits>

namespace dashdb {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Joining a relation with no edge into the current set is a cross product;
/// the penalty keeps such steps at the very end of any order that has an
/// edge-connected alternative.
constexpr double kCrossPenalty = 1e3;

struct Step {
  double out_rows = 0;
  double cost = 0;
};

/// Cost and output rows of joining relation `r` into the current
/// intermediate result (`member`/`cur_rows`). The first relation in an
/// order is free: it is streamed through the join chain, never built into
/// a hash table. Every later step charges the intermediate-result size plus
/// the hash-table build of `r`.
Step ComputeStep(const std::vector<JoinRelation>& rels,
                 const std::vector<JoinGraphEdge>& edges,
                 const std::vector<char>& member, bool any_member,
                 double cur_rows, int r) {
  if (!any_member) return {rels[r].rows, 0.0};
  const double build = std::max(0.0, rels[r].rows);
  double out = cur_rows * build;
  bool connected = false;
  for (const auto& e : edges) {
    bool touches = (e.a == r && member[e.b]) || (e.b == r && member[e.a]);
    if (!touches) continue;
    connected = true;
    double ndv = std::max(e.a_ndv, e.b_ndv);
    // Unknown NDV on both sides: containment degrades to the FK shape,
    // out = max of the inputs, i.e. divide by the smaller input.
    if (ndv < 1.0) ndv = std::max(1.0, std::min(cur_rows, build));
    out /= ndv;
  }
  double cost = out + build;
  if (!connected) cost *= kCrossPenalty;
  return {out, cost};
}

}  // namespace

std::vector<int> OrderJoins(const std::vector<JoinRelation>& rels,
                            const std::vector<JoinGraphEdge>& edges,
                            const std::vector<int>& prefix) {
  const int n = static_cast<int>(rels.size());
  std::vector<char> member(n, 0);
  bool any_member = false;
  double cur_rows = 0;
  std::vector<int> order;
  order.reserve(n);
  // Fold the fixed prefix (already-executed relations under adaptive
  // re-planning) into the starting state, in its given order.
  for (int p : prefix) {
    Step s = ComputeStep(rels, edges, member, any_member, cur_rows, p);
    cur_rows = s.out_rows;
    member[p] = 1;
    any_member = true;
    order.push_back(p);
  }
  std::vector<int> free_rel;
  for (int i = 0; i < n; ++i) {
    if (!member[i]) free_rel.push_back(i);
  }
  const int f = static_cast<int>(free_rel.size());
  if (f == 0) return order;

  if (f <= kDpMaxRelations) {
    // Exact search: dp over subsets of the free relations, each entry the
    // cheapest linear order realizing that subset on top of the prefix.
    struct Entry {
      double cost = kInf;
      double rows = 0;
      std::vector<int> order;
    };
    std::vector<Entry> dp(size_t{1} << f);
    for (int i = 0; i < f; ++i) {
      Step s = ComputeStep(rels, edges, member, any_member, cur_rows,
                           free_rel[i]);
      Entry& e = dp[size_t{1} << i];
      e.cost = s.cost;
      e.rows = s.out_rows;
      e.order = {free_rel[i]};
    }
    for (uint32_t mask = 1; mask + 1 < (uint32_t{1} << f); ++mask) {
      const Entry& cur = dp[mask];
      if (!(cur.cost < kInf)) continue;
      std::vector<char> m = member;
      for (int i = 0; i < f; ++i) {
        if (mask & (uint32_t{1} << i)) m[free_rel[i]] = 1;
      }
      for (int i = 0; i < f; ++i) {
        if (mask & (uint32_t{1} << i)) continue;
        Step s = ComputeStep(rels, edges, m, true, cur.rows, free_rel[i]);
        Entry& nxt = dp[mask | (uint32_t{1} << i)];
        double ncost = cur.cost + s.cost;
        if (ncost < nxt.cost) {
          nxt.cost = ncost;
          nxt.rows = s.out_rows;
          nxt.order = cur.order;
          nxt.order.push_back(free_rel[i]);
        }
      }
    }
    const Entry& full = dp[(size_t{1} << f) - 1];
    order.insert(order.end(), full.order.begin(), full.order.end());
    return order;
  }

  // Greedy nearest-neighbor beyond the DP cutoff. With no prefix, stream
  // the largest relation (it is the one we least want to build).
  std::vector<char> remaining(n, 0);
  int left = f;
  for (int r : free_rel) remaining[r] = 1;
  if (!any_member) {
    int driver = free_rel[0];
    for (int r : free_rel) {
      if (rels[r].rows > rels[driver].rows) driver = r;
    }
    order.push_back(driver);
    member[driver] = 1;
    any_member = true;
    cur_rows = rels[driver].rows;
    remaining[driver] = 0;
    --left;
  }
  while (left > 0) {
    int best = -1;
    Step best_step{0, kInf};
    for (int r = 0; r < n; ++r) {
      if (!remaining[r]) continue;
      Step s = ComputeStep(rels, edges, member, any_member, cur_rows, r);
      if (best < 0 || s.cost < best_step.cost) {
        best = r;
        best_step = s;
      }
    }
    order.push_back(best);
    member[best] = 1;
    cur_rows = best_step.out_rows;
    remaining[best] = 0;
    --left;
  }
  return order;
}

}  // namespace dashdb
