// Aggregate function machinery: the union of aggregation functions from the
// paper's dialect lists (II.C.1) — COUNT/SUM/AVG/MIN/MAX plus Oracle
// PERCENTILE_DISC/PERCENTILE_CONT/MEDIAN/CUME_DIST/VAR_POP/COVAR_POP/
// STDDEV_POP, Netezza COVAR_SAMP/STDDEV_SAMP, DB2 VARIANCE/STDDEV/
// COVARIANCE/COVARIANCE_SAMP.
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "exec/expr.h"

namespace dashdb {

enum class AggKind : uint8_t {
  kCountStar = 0,
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
  kVarPop,
  kVarSamp,
  kStddevPop,
  kStddevSamp,
  kCovarPop,
  kCovarSamp,
  kMedian,
  kPercentileCont,  ///< param = fraction in [0,1]
  kPercentileDisc,
};

/// Maps a SQL aggregate name (any dialect spelling) to a kind; false when
/// the name is not an aggregate.
bool AggKindFromName(const std::string& upper, AggKind* out);

/// Result type of an aggregate given its input type.
TypeId AggResultType(AggKind kind, TypeId input);

/// One aggregate in a GROUP BY: kind + argument expression(s).
struct AggSpec {
  AggKind kind = AggKind::kCountStar;
  ExprPtr arg;        ///< null for COUNT(*)
  ExprPtr arg2;       ///< second argument (COVAR_*)
  double param = 0.5; ///< percentile fraction
  bool distinct = false;
  TypeId out_type = TypeId::kInt64;
};

/// Streaming accumulator for one (group, aggregate) pair.
class AggState {
 public:
  explicit AggState(const AggSpec* spec) : spec_(spec) {}

  void Add(const Value& v, const Value& v2);

  /// Typed fast-path entries (no Value boxing). The caller guarantees the
  /// input is non-null and that the spec is not DISTINCT and not COVAR.
  void AddCountStarFast() { ++count_; }
  void AddNumericFast(double x, int64_t ix, bool int_domain);

  /// Folds another partial accumulator for the same spec into this one
  /// (parallel aggregation: thread-local partials merged per group). Welford
  /// and covariance states merge via Chan's parallel update; order
  /// statistics concatenate (Finish sorts). Not valid for DISTINCT specs —
  /// per-partial dedup undercounts across partials (see CanMergeParallel).
  void Merge(const AggState& other);

  /// Whether partial states for `spec` can be combined with Merge().
  static bool CanMergeParallel(const AggSpec& spec) { return !spec.distinct; }

  Value Finish() const;

 private:
  const AggSpec* spec_;
  int64_t count_ = 0;          // non-null inputs (or all rows for COUNT(*))
  double sum_ = 0;
  int64_t isum_ = 0;
  bool int_domain_ = true;
  std::optional<Value> min_, max_;
  // Welford.
  double mean_ = 0, m2_ = 0;
  // Covariance.
  double mean_x_ = 0, mean_y_ = 0, cxy_ = 0;
  // Typed fast-path min/max mirror (used instead of min_/max_ when the
  // fast entries fed this state).
  bool fast_minmax_ = false;
  bool fast_int_domain_ = true;
  double dmin_ = 0, dmax_ = 0;
  int64_t imin_ = 0, imax_ = 0;
  // Order statistics (median / percentiles).
  mutable std::vector<double> values_;
  // DISTINCT support.
  std::set<std::string> seen_;
};

}  // namespace dashdb
