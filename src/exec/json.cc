#include "exec/json.h"

#include <cctype>
#include <cstdlib>
#include <vector>

namespace dashdb {
namespace json {

namespace {

/// A lightweight cursor over JSON text: navigates without building a DOM.
class Cursor {
 public:
  explicit Cursor(const std::string& s) : s_(s) {}

  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= s_.size(); }
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void Advance() { ++pos_; }
  size_t pos() const { return pos_; }
  void set_pos(size_t p) { pos_ = p; }

  /// Skips one complete JSON value; returns [start, end) of its text.
  Result<std::pair<size_t, size_t>> SkipValue() {
    SkipWs();
    size_t start = pos_;
    if (AtEnd()) return Status::ParseError("unexpected end of JSON");
    char c = Peek();
    if (c == '"') {
      DASHDB_RETURN_IF_ERROR(SkipString());
    } else if (c == '{') {
      DASHDB_RETURN_IF_ERROR(SkipContainer('{', '}'));
    } else if (c == '[') {
      DASHDB_RETURN_IF_ERROR(SkipContainer('[', ']'));
    } else {
      // number / true / false / null
      while (!AtEnd() && std::string(",}] \t\r\n").find(Peek()) ==
                             std::string::npos) {
        Advance();
      }
    }
    return std::make_pair(start, pos_);
  }

  /// Parses the string at the cursor into *out (handles escapes).
  Result<std::string> ParseString() {
    SkipWs();
    if (Peek() != '"') return Status::ParseError("expected JSON string");
    Advance();
    std::string out;
    while (!AtEnd() && Peek() != '"') {
      char c = Peek();
      if (c == '\\') {
        Advance();
        if (AtEnd()) return Status::ParseError("bad escape");
        char e = Peek();
        switch (e) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            // \uXXXX: keep ASCII, replace others with '?'.
            if (pos_ + 4 >= s_.size()) return Status::ParseError("bad \\u");
            std::string hex = s_.substr(pos_ + 1, 4);
            long cp = std::strtol(hex.c_str(), nullptr, 16);
            out.push_back(cp < 128 ? static_cast<char>(cp) : '?');
            pos_ += 4;
            break;
          }
          default: out.push_back(e);
        }
      } else {
        out.push_back(c);
      }
      Advance();
    }
    if (AtEnd()) return Status::ParseError("unterminated JSON string");
    Advance();  // closing quote
    return out;
  }

 private:
  Status SkipString() {
    Advance();  // opening quote
    while (!AtEnd() && Peek() != '"') {
      if (Peek() == '\\') Advance();
      if (!AtEnd()) Advance();
    }
    if (AtEnd()) return Status::ParseError("unterminated JSON string");
    Advance();
    return Status::OK();
  }

  Status SkipContainer(char open, char close) {
    int depth = 0;
    while (!AtEnd()) {
      char c = Peek();
      if (c == '"') {
        DASHDB_RETURN_IF_ERROR(SkipString());
        continue;
      }
      if (c == open) ++depth;
      if (c == close) {
        --depth;
        Advance();
        if (depth == 0) return Status::OK();
        continue;
      }
      Advance();
    }
    return Status::ParseError("unterminated JSON container");
  }

  const std::string& s_;
  size_t pos_ = 0;
};

struct PathStep {
  bool is_index = false;
  std::string key;
  size_t index = 0;
};

Result<std::vector<PathStep>> ParsePath(const std::string& path) {
  if (path.empty() || path[0] != '$') {
    return Status::InvalidArgument("JSON path must start with '$'");
  }
  std::vector<PathStep> steps;
  size_t i = 1;
  while (i < path.size()) {
    if (path[i] == '.') {
      ++i;
      std::string key;
      while (i < path.size() && path[i] != '.' && path[i] != '[') {
        key.push_back(path[i++]);
      }
      if (key.empty()) return Status::InvalidArgument("empty JSON path key");
      steps.push_back({false, key, 0});
    } else if (path[i] == '[') {
      ++i;
      std::string num;
      while (i < path.size() && path[i] != ']') num.push_back(path[i++]);
      if (i >= path.size()) return Status::InvalidArgument("missing ']'");
      ++i;
      steps.push_back({true, "", static_cast<size_t>(std::strtoull(
                                    num.c_str(), nullptr, 10))});
    } else {
      return Status::InvalidArgument("bad JSON path near '" +
                                     path.substr(i) + "'");
    }
  }
  return steps;
}

/// Navigates to the text span of the value at `path`. found=false (with OK
/// status) when the path is absent.
Result<std::pair<bool, std::string>> Navigate(const std::string& doc,
                                              const std::string& path) {
  DASHDB_ASSIGN_OR_RETURN(std::vector<PathStep> steps, ParsePath(path));
  std::string current = doc;
  for (const PathStep& step : steps) {
    Cursor c(current);
    c.SkipWs();
    if (step.is_index) {
      if (c.Peek() != '[') return std::make_pair(false, std::string());
      c.Advance();
      size_t idx = 0;
      for (;;) {
        c.SkipWs();
        if (c.Peek() == ']') return std::make_pair(false, std::string());
        DASHDB_ASSIGN_OR_RETURN(auto span, c.SkipValue());
        if (idx == step.index) {
          current = current.substr(span.first, span.second - span.first);
          break;
        }
        c.SkipWs();
        if (c.Peek() == ',') {
          c.Advance();
          ++idx;
          continue;
        }
        return std::make_pair(false, std::string());
      }
    } else {
      if (c.Peek() != '{') return std::make_pair(false, std::string());
      c.Advance();
      bool found = false;
      for (;;) {
        c.SkipWs();
        if (c.Peek() == '}') break;
        DASHDB_ASSIGN_OR_RETURN(std::string key, c.ParseString());
        c.SkipWs();
        if (c.Peek() != ':') return Status::ParseError("expected ':'");
        c.Advance();
        DASHDB_ASSIGN_OR_RETURN(auto span, c.SkipValue());
        if (key == step.key) {
          current = current.substr(span.first, span.second - span.first);
          found = true;
          break;
        }
        c.SkipWs();
        if (c.Peek() == ',') {
          c.Advance();
          continue;
        }
        break;
      }
      if (!found) return std::make_pair(false, std::string());
    }
  }
  return std::make_pair(true, current);
}

}  // namespace

Result<Value> Extract(const std::string& doc, const std::string& path) {
  DASHDB_ASSIGN_OR_RETURN(auto nav, Navigate(doc, path));
  if (!nav.first) return Value::Null(TypeId::kVarchar);
  std::string text = nav.second;
  // Trim.
  size_t b = text.find_first_not_of(" \t\r\n");
  size_t e = text.find_last_not_of(" \t\r\n");
  if (b == std::string::npos) return Value::Null(TypeId::kVarchar);
  text = text.substr(b, e - b + 1);
  if (text == "null") return Value::Null(TypeId::kVarchar);
  if (text == "true") return Value::Boolean(true);
  if (text == "false") return Value::Boolean(false);
  if (text[0] == '"') {
    Cursor c(text);
    DASHDB_ASSIGN_OR_RETURN(std::string s, c.ParseString());
    return Value::String(s);
  }
  if (text[0] == '{' || text[0] == '[') return Value::String(text);
  // Number.
  char* end = nullptr;
  double d = std::strtod(text.c_str(), &end);
  if (end && *end == '\0') return Value::Double(d);
  return Value::String(text);
}

Result<Value> ArrayLength(const std::string& doc, const std::string& path) {
  Result<std::pair<bool, std::string>> nav =
      path == "$" ? Result<std::pair<bool, std::string>>(
                        std::make_pair(true, doc))
                  : Navigate(doc, path);
  DASHDB_RETURN_IF_ERROR(nav.status());
  if (!nav->first) return Value::Null(TypeId::kInt64);
  Cursor c(nav->second);
  c.SkipWs();
  if (c.Peek() != '[') return Value::Null(TypeId::kInt64);
  c.Advance();
  c.SkipWs();
  if (c.Peek() == ']') return Value::Int64(0);
  int64_t count = 1;
  for (;;) {
    DASHDB_RETURN_IF_ERROR(c.SkipValue().status());
    c.SkipWs();
    if (c.Peek() == ',') {
      c.Advance();
      ++count;
      continue;
    }
    break;
  }
  return Value::Int64(count);
}

Result<Value> Exists(const std::string& doc, const std::string& path) {
  DASHDB_ASSIGN_OR_RETURN(auto nav, Navigate(doc, path));
  return Value::Boolean(nav.first);
}

}  // namespace json
}  // namespace dashdb
