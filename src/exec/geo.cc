#include "exec/geo.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace dashdb {
namespace geo {

namespace {

/// Parses "x y, x y, ..." into points.
Result<std::vector<Point>> ParseCoords(const std::string& s) {
  std::vector<Point> out;
  std::stringstream ss(s);
  std::string pair;
  while (std::getline(ss, pair, ',')) {
    Point p;
    if (std::sscanf(pair.c_str(), "%lf %lf", &p.x, &p.y) != 2) {
      return Status::ParseError("bad coordinate pair: '" + pair + "'");
    }
    out.push_back(p);
  }
  if (out.empty()) return Status::ParseError("empty coordinate list");
  return out;
}

double SegmentDistance(const Point& p, const Point& a, const Point& b) {
  double dx = b.x - a.x, dy = b.y - a.y;
  double len2 = dx * dx + dy * dy;
  double t = len2 == 0 ? 0
                       : ((p.x - a.x) * dx + (p.y - a.y) * dy) / len2;
  t = std::clamp(t, 0.0, 1.0);
  double cx = a.x + t * dx, cy = a.y + t * dy;
  return std::hypot(p.x - cx, p.y - cy);
}

double PointToGeometry(const Point& p, const Geometry& g) {
  if (g.kind == GeomKind::kPoint) {
    return std::hypot(p.x - g.points[0].x, p.y - g.points[0].y);
  }
  if (g.kind == GeomKind::kPolygon && Contains(g, p)) return 0;
  double best = std::numeric_limits<double>::infinity();
  size_t n = g.points.size();
  size_t segs = g.kind == GeomKind::kPolygon ? n : n - 1;
  for (size_t i = 0; i < segs; ++i) {
    best = std::min(best,
                    SegmentDistance(p, g.points[i], g.points[(i + 1) % n]));
  }
  return best;
}

}  // namespace

std::string Geometry::ToWkt() const {
  std::ostringstream os;
  auto coords = [&](bool wrap) {
    if (wrap) os << "(";
    for (size_t i = 0; i < points.size(); ++i) {
      if (i) os << ", ";
      os << points[i].x << " " << points[i].y;
    }
    if (wrap) os << ")";
  };
  switch (kind) {
    case GeomKind::kPoint:
      os << "POINT(";
      coords(false);
      os << ")";
      break;
    case GeomKind::kLineString:
      os << "LINESTRING(";
      coords(false);
      os << ")";
      break;
    case GeomKind::kPolygon:
      os << "POLYGON(";
      coords(true);
      os << ")";
      break;
  }
  return os.str();
}

Result<Geometry> ParseWkt(const std::string& wkt) {
  std::string u;
  for (char c : wkt) u.push_back(std::toupper(static_cast<unsigned char>(c)));
  Geometry g;
  size_t open = u.find('(');
  if (open == std::string::npos || u.back() != ')') {
    return Status::ParseError("bad WKT: '" + wkt + "'");
  }
  std::string head = u.substr(0, open);
  // Trim trailing whitespace from the tag.
  while (!head.empty() && head.back() == ' ') head.pop_back();
  std::string body = u.substr(open + 1, u.size() - open - 2);
  if (head == "POINT") {
    g.kind = GeomKind::kPoint;
  } else if (head == "LINESTRING") {
    g.kind = GeomKind::kLineString;
  } else if (head == "POLYGON") {
    g.kind = GeomKind::kPolygon;
    // Strip one ring's parentheses; reject multi-ring (holes unsupported).
    size_t b = body.find('(');
    size_t e = body.rfind(')');
    if (b == std::string::npos || e == std::string::npos || e <= b) {
      return Status::ParseError("bad POLYGON body");
    }
    if (body.find('(', b + 1) != std::string::npos) {
      return Status::Unimplemented("polygons with holes are not supported");
    }
    body = body.substr(b + 1, e - b - 1);
  } else {
    return Status::Unimplemented("geometry type " + head);
  }
  DASHDB_ASSIGN_OR_RETURN(g.points, ParseCoords(body));
  if (g.kind == GeomKind::kPoint && g.points.size() != 1) {
    return Status::ParseError("POINT needs exactly one coordinate");
  }
  if (g.kind == GeomKind::kLineString && g.points.size() < 2) {
    return Status::ParseError("LINESTRING needs at least two points");
  }
  if (g.kind == GeomKind::kPolygon) {
    if (g.points.size() < 4) {
      return Status::ParseError("POLYGON ring needs at least four points");
    }
    // Drop the closing duplicate vertex.
    const Point& f = g.points.front();
    const Point& l = g.points.back();
    if (f.x == l.x && f.y == l.y) g.points.pop_back();
  }
  return g;
}

bool Contains(const Geometry& polygon, const Point& p) {
  const auto& v = polygon.points;
  const size_t n = v.size();
  // Boundary counts as contained.
  for (size_t i = 0; i < n; ++i) {
    if (SegmentDistance(p, v[i], v[(i + 1) % n]) < 1e-12) return true;
  }
  bool inside = false;
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    if ((v[i].y > p.y) != (v[j].y > p.y) &&
        p.x < (v[j].x - v[i].x) * (p.y - v[i].y) / (v[j].y - v[i].y) +
                  v[i].x) {
      inside = !inside;
    }
  }
  return inside;
}

double Distance(const Geometry& a, const Geometry& b) {
  if (a.kind == GeomKind::kPoint) return PointToGeometry(a.points[0], b);
  if (b.kind == GeomKind::kPoint) return PointToGeometry(b.points[0], a);
  // Geometry-to-geometry: min over vertices of each against the other
  // (adequate for the convex shapes the examples/benches use).
  double best = std::numeric_limits<double>::infinity();
  for (const Point& p : a.points) best = std::min(best, PointToGeometry(p, b));
  for (const Point& p : b.points) best = std::min(best, PointToGeometry(p, a));
  return best;
}

double Area(const Geometry& g) {
  if (g.kind != GeomKind::kPolygon) return 0;
  double sum = 0;
  const auto& v = g.points;
  for (size_t i = 0, j = v.size() - 1; i < v.size(); j = i++) {
    sum += (v[j].x + v[i].x) * (v[j].y - v[i].y);
  }
  return std::fabs(sum) / 2;
}

double Length(const Geometry& g) {
  if (g.kind == GeomKind::kPoint) return 0;
  double total = 0;
  size_t n = g.points.size();
  size_t segs = g.kind == GeomKind::kPolygon ? n : n - 1;
  for (size_t i = 0; i < segs; ++i) {
    const Point& a = g.points[i];
    const Point& b = g.points[(i + 1) % n];
    total += std::hypot(b.x - a.x, b.y - a.y);
  }
  return total;
}

}  // namespace geo
}  // namespace dashdb
