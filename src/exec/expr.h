// Expression trees evaluated over RowBatch columns.
//
// The planner pushes sargable conjuncts (col OP literal) down into the
// storage scan where they run on compressed codes; everything else —
// arithmetic, scalar functions, CASE, residual predicates — evaluates here
// with full SQL NULL semantics (three-valued logic).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/column_vector.h"
#include "common/dialect.h"
#include "common/status.h"
#include "common/value.h"
#include "simd/swar.h"  // CmpOp

namespace dashdb {

class ThreadPool;

/// Per-query evaluation context.
struct ExecContext {
  Dialect dialect = Dialect::kAnsi;
  int64_t current_date_days = 17000;     ///< fixed for determinism
  int64_t now_micros = 17000LL * 86400 * 1000000;
  /// Intra-query parallelism (paper II.B.6): the engine's worker pool and
  /// the degree of parallelism granted to this query. Operators fall back
  /// to their serial paths when pool is null or dop <= 1.
  ThreadPool* pool = nullptr;
  int dop = 1;
  /// Oracle VARCHAR2 semantics: empty string IS NULL (paper II.C.2).
  bool EmptyStringIsNull() const { return dialect == Dialect::kOracle; }

  bool parallel() const { return pool != nullptr && dop > 1; }
};

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Base expression node.
class Expr {
 public:
  explicit Expr(TypeId out_type) : out_type_(out_type) {}
  virtual ~Expr() = default;

  TypeId out_type() const { return out_type_; }

  /// Evaluates one row. The default Evaluate() loops over this.
  virtual Result<Value> EvaluateRow(const RowBatch& batch, size_t row,
                                    const ExecContext& ctx) const = 0;

  /// Evaluates the whole batch into a ColumnVector.
  virtual Result<ColumnVector> Evaluate(const RowBatch& batch,
                                        const ExecContext& ctx) const;

  /// Display form for EXPLAIN.
  virtual std::string ToString() const = 0;

 protected:
  TypeId out_type_;
};

/// Reference to an input column by position.
class ColumnRefExpr : public Expr {
 public:
  ColumnRefExpr(int index, TypeId type, std::string name = "")
      : Expr(type), index_(index), name_(std::move(name)) {}
  int index() const { return index_; }
  Result<Value> EvaluateRow(const RowBatch& b, size_t row,
                            const ExecContext&) const override;
  Result<ColumnVector> Evaluate(const RowBatch& b,
                                const ExecContext&) const override;
  std::string ToString() const override {
    return name_.empty() ? "$" + std::to_string(index_) : name_;
  }

 private:
  int index_;
  std::string name_;
};

/// Constant.
class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value v) : Expr(v.type()), value_(std::move(v)) {}
  const Value& value() const { return value_; }
  Result<Value> EvaluateRow(const RowBatch&, size_t,
                            const ExecContext&) const override {
    return value_;
  }
  std::string ToString() const override { return value_.ToString(); }

 private:
  Value value_;
};

enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv, kMod, kConcat };

/// Binary arithmetic / string concatenation with numeric promotion.
class ArithExpr : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr l, ExprPtr r, TypeId out)
      : Expr(out), op_(op), l_(std::move(l)), r_(std::move(r)) {}
  Result<Value> EvaluateRow(const RowBatch& b, size_t row,
                            const ExecContext& ctx) const override;
  std::string ToString() const override;

 private:
  ArithOp op_;
  ExprPtr l_, r_;
};

/// Comparison producing BOOLEAN (NULL when either side is NULL).
class CompareExpr : public Expr {
 public:
  CompareExpr(CmpOp op, ExprPtr l, ExprPtr r)
      : Expr(TypeId::kBoolean), op_(op), l_(std::move(l)), r_(std::move(r)) {}
  Result<Value> EvaluateRow(const RowBatch& b, size_t row,
                            const ExecContext& ctx) const override;
  std::string ToString() const override;

 private:
  CmpOp op_;
  ExprPtr l_, r_;
};

enum class LogicOp : uint8_t { kAnd, kOr, kNot };

/// Three-valued AND/OR/NOT.
class LogicExpr : public Expr {
 public:
  LogicExpr(LogicOp op, ExprPtr l, ExprPtr r = nullptr)
      : Expr(TypeId::kBoolean), op_(op), l_(std::move(l)), r_(std::move(r)) {}
  Result<Value> EvaluateRow(const RowBatch& b, size_t row,
                            const ExecContext& ctx) const override;
  std::string ToString() const override;

 private:
  LogicOp op_;
  ExprPtr l_, r_;
};

/// IS [NOT] NULL / Netezza ISNULL-NOTNULL operators, and Netezza
/// ISTRUE/ISFALSE when `truth_` is set.
class IsNullExpr : public Expr {
 public:
  IsNullExpr(ExprPtr child, bool negate)
      : Expr(TypeId::kBoolean), child_(std::move(child)), negate_(negate) {}
  Result<Value> EvaluateRow(const RowBatch& b, size_t row,
                            const ExecContext& ctx) const override;
  std::string ToString() const override {
    return child_->ToString() + (negate_ ? " IS NOT NULL" : " IS NULL");
  }

 private:
  ExprPtr child_;
  bool negate_;
};

/// CAST(child AS type) / Netezza ::type.
class CastExpr : public Expr {
 public:
  CastExpr(ExprPtr child, TypeId target)
      : Expr(target), child_(std::move(child)) {}
  Result<Value> EvaluateRow(const RowBatch& b, size_t row,
                            const ExecContext& ctx) const override;
  std::string ToString() const override {
    return "CAST(" + child_->ToString() + " AS " + TypeName(out_type_) + ")";
  }

 private:
  ExprPtr child_;
};

/// LIKE with % and _ wildcards.
class LikeExpr : public Expr {
 public:
  LikeExpr(ExprPtr child, std::string pattern, bool negate)
      : Expr(TypeId::kBoolean),
        child_(std::move(child)),
        pattern_(std::move(pattern)),
        negate_(negate) {}
  Result<Value> EvaluateRow(const RowBatch& b, size_t row,
                            const ExecContext& ctx) const override;
  std::string ToString() const override {
    return child_->ToString() + (negate_ ? " NOT LIKE '" : " LIKE '") +
           pattern_ + "'";
  }
  /// Exposed for tests: SQL LIKE matching.
  static bool Match(const std::string& s, const std::string& pattern);

 private:
  ExprPtr child_;
  std::string pattern_;
  bool negate_;
};

/// expr IN (v1, v2, ...) over literal lists.
class InExpr : public Expr {
 public:
  InExpr(ExprPtr child, std::vector<Value> list, bool negate)
      : Expr(TypeId::kBoolean),
        child_(std::move(child)),
        list_(std::move(list)),
        negate_(negate) {}
  Result<Value> EvaluateRow(const RowBatch& b, size_t row,
                            const ExecContext& ctx) const override;
  std::string ToString() const override;

 private:
  ExprPtr child_;
  std::vector<Value> list_;
  bool negate_;
};

/// CASE WHEN ... THEN ... [ELSE ...] END (searched form; the simple form is
/// rewritten to this by the analyzer).
class CaseExpr : public Expr {
 public:
  CaseExpr(std::vector<std::pair<ExprPtr, ExprPtr>> whens, ExprPtr else_expr,
           TypeId out)
      : Expr(out), whens_(std::move(whens)), else_(std::move(else_expr)) {}
  Result<Value> EvaluateRow(const RowBatch& b, size_t row,
                            const ExecContext& ctx) const override;
  std::string ToString() const override { return "CASE ... END"; }

 private:
  std::vector<std::pair<ExprPtr, ExprPtr>> whens_;
  ExprPtr else_;
};

/// Scalar function call bound to an implementation (exec/functions.h).
using ScalarFnImpl =
    std::function<Result<Value>(const std::vector<Value>&, const ExecContext&)>;

class FuncExpr : public Expr {
 public:
  FuncExpr(std::string name, ScalarFnImpl fn, std::vector<ExprPtr> args,
           TypeId out)
      : Expr(out), name_(std::move(name)), fn_(std::move(fn)),
        args_(std::move(args)) {}
  Result<Value> EvaluateRow(const RowBatch& b, size_t row,
                            const ExecContext& ctx) const override;
  std::string ToString() const override;

 private:
  std::string name_;
  ScalarFnImpl fn_;
  std::vector<ExprPtr> args_;
};

/// Applies Oracle VARCHAR2 semantics to a just-produced value: an empty
/// string becomes NULL under the Oracle dialect.
Value ApplyDialectStringSemantics(Value v, const ExecContext& ctx);

/// Evaluates `expr` as a filter over `batch`: returns row indices where the
/// predicate is TRUE (NULL and FALSE are both rejected).
Result<std::vector<uint32_t>> EvalFilter(const Expr& expr,
                                         const RowBatch& batch,
                                         const ExecContext& ctx);

}  // namespace dashdb
