// Expression trees evaluated over RowBatch columns.
//
// The planner pushes sargable conjuncts (col OP literal) down into the
// storage scan where they run on compressed codes; everything else —
// arithmetic, scalar functions, CASE, residual predicates — evaluates here
// with full SQL NULL semantics (three-valued logic).
//
// Evaluation is vectorized (paper II.B.2): every node implements
// EvaluateSel(), producing a dense ColumnVector for the rows named by a
// selection vector. Type-specialized kernels run directly over the
// ColumnVector primitive arrays with null bitmaps combined word-wise;
// EvaluateRow() remains the row-at-a-time correctness oracle and the
// fallback for shapes the kernels do not cover (cross-family comparisons,
// varchar arithmetic, ...). Comparisons and LIKE against dictionary-coded
// columns translate the literal to the code domain once and reuse the SWAR
// kernels (src/simd) on the still-compressed codes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/column_vector.h"
#include "common/dialect.h"
#include "common/status.h"
#include "common/value.h"
#include "simd/swar.h"  // CmpOp

namespace dashdb {

class ThreadPool;

/// Per-query evaluation context.
struct ExecContext {
  Dialect dialect = Dialect::kAnsi;
  int64_t current_date_days = 17000;     ///< fixed for determinism
  int64_t now_micros = 17000LL * 86400 * 1000000;
  /// Intra-query parallelism (paper II.B.6): the engine's worker pool and
  /// the degree of parallelism granted to this query. Operators fall back
  /// to their serial paths when pool is null or dop <= 1.
  ThreadPool* pool = nullptr;
  int dop = 1;
  /// Oracle VARCHAR2 semantics: empty string IS NULL (paper II.C.2).
  bool EmptyStringIsNull() const { return dialect == Dialect::kOracle; }

  bool parallel() const { return pool != nullptr && dop > 1; }
};

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Base expression node.
class Expr {
 public:
  explicit Expr(TypeId out_type) : out_type_(out_type) {}
  virtual ~Expr() = default;

  TypeId out_type() const { return out_type_; }

  /// Evaluates one row. The correctness oracle; EvaluateSel's default
  /// implementation loops over this.
  virtual Result<Value> EvaluateRow(const RowBatch& batch, size_t row,
                                    const ExecContext& ctx) const = 0;

  /// Evaluates rows sel[0..k) of `batch` (or rows 0..k when sel is null)
  /// into a DENSE ColumnVector of k values, typed out_type(), in selection
  /// order. Nodes override this with columnar kernels; the base
  /// implementation is the row-at-a-time fallback.
  virtual Result<ColumnVector> EvaluateSel(const RowBatch& batch,
                                           const uint32_t* sel, size_t k,
                                           const ExecContext& ctx) const;

  /// Evaluates the whole batch, honoring batch.selection when present
  /// (output is dense over the batch's logical rows).
  Result<ColumnVector> Evaluate(const RowBatch& batch,
                                const ExecContext& ctx) const {
    if (batch.has_selection()) {
      return EvaluateSel(batch, batch.selection->data(),
                         batch.selection->size(), ctx);
    }
    return EvaluateSel(batch, nullptr, batch.num_rows(), ctx);
  }

  /// True when the node is deterministic and side-effect free — a pure node
  /// over all-literal children folds to a literal at bind time.
  virtual bool pure() const { return false; }
  /// Direct children, for the bind-time folder.
  virtual std::vector<const Expr*> children() const { return {}; }

  /// Display form for EXPLAIN.
  virtual std::string ToString() const = 0;

 protected:
  TypeId out_type_;
};

/// Reference to an input column by position.
class ColumnRefExpr : public Expr {
 public:
  ColumnRefExpr(int index, TypeId type, std::string name = "")
      : Expr(type), index_(index), name_(std::move(name)) {}
  int index() const { return index_; }
  Result<Value> EvaluateRow(const RowBatch& b, size_t row,
                            const ExecContext&) const override;
  Result<ColumnVector> EvaluateSel(const RowBatch& b, const uint32_t* sel,
                                   size_t k,
                                   const ExecContext&) const override;
  std::string ToString() const override {
    return name_.empty() ? "$" + std::to_string(index_) : name_;
  }

 private:
  int index_;
  std::string name_;
};

/// Constant.
class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value v) : Expr(v.type()), value_(std::move(v)) {}
  const Value& value() const { return value_; }
  Result<Value> EvaluateRow(const RowBatch&, size_t,
                            const ExecContext&) const override {
    return value_;
  }
  Result<ColumnVector> EvaluateSel(const RowBatch&, const uint32_t*, size_t k,
                                   const ExecContext&) const override;
  std::string ToString() const override { return value_.ToString(); }

 private:
  Value value_;
};

enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv, kMod, kConcat };

/// Binary arithmetic / string concatenation with numeric promotion.
class ArithExpr : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr l, ExprPtr r, TypeId out)
      : Expr(out), op_(op), l_(std::move(l)), r_(std::move(r)) {}
  Result<Value> EvaluateRow(const RowBatch& b, size_t row,
                            const ExecContext& ctx) const override;
  Result<ColumnVector> EvaluateSel(const RowBatch& b, const uint32_t* sel,
                                   size_t k,
                                   const ExecContext& ctx) const override;
  bool pure() const override { return true; }
  std::vector<const Expr*> children() const override {
    return {l_.get(), r_.get()};
  }
  std::string ToString() const override;

 private:
  ArithOp op_;
  ExprPtr l_, r_;
};

/// Comparison producing BOOLEAN (NULL when either side is NULL).
///
/// When one side is a column carrying dictionary codes and the other a
/// literal, the literal is translated to the code domain once per dictionary
/// (cached) and the comparison runs on packed codes via the SWAR kernels —
/// order-preserving dicts turn range predicates into code bands.
class CompareExpr : public Expr {
 public:
  CompareExpr(CmpOp op, ExprPtr l, ExprPtr r)
      : Expr(TypeId::kBoolean), op_(op), l_(std::move(l)), r_(std::move(r)) {}
  Result<Value> EvaluateRow(const RowBatch& b, size_t row,
                            const ExecContext& ctx) const override;
  Result<ColumnVector> EvaluateSel(const RowBatch& b, const uint32_t* sel,
                                   size_t k,
                                   const ExecContext& ctx) const override;
  bool pure() const override { return true; }
  std::vector<const Expr*> children() const override {
    return {l_.get(), r_.get()};
  }
  std::string ToString() const override;

  /// Filter-mode fast path: appends the TRUE rows among sel[0..k) to *out
  /// (absolute indices, ascending) and returns true, or returns false when
  /// no specialized path applies (caller falls back to EvaluateSel).
  bool TryFilterSel(const RowBatch& b, const uint32_t* sel, size_t k,
                    const ExecContext& ctx, std::vector<uint32_t>* out) const;

 private:
  /// A literal compiled into one dictionary's code domain.
  struct DictPlan {
    const void* dict = nullptr;       ///< cache key: dictionary identity
    bool usable = false;
    bool str_has_empty = false;       ///< dict encodes "" (Oracle hazard)
    enum class Kind : uint8_t { kNone, kAll, kCmp } kind = Kind::kNone;
    CmpOp op = CmpOp::kEq;            ///< for kCmp
    uint64_t code = 0;                ///< for kCmp
  };
  /// Returns a copy — concurrent morsel threads may grow the cache, so a
  /// pointer into dict_plans_ could dangle on reallocation.
  DictPlan PlanFor(const DictCodes& dc) const;
  /// Evaluates this compare on dict codes into a match bitvector over all
  /// n dense rows; returns false when the dict path does not apply.
  bool DictMatch(const RowBatch& b, size_t n, const ExecContext& ctx,
                 const ColumnVector** col_out, BitVector* match) const;

  CmpOp op_;
  ExprPtr l_, r_;
  mutable std::mutex dict_mu_;
  mutable std::vector<DictPlan> dict_plans_;
};

enum class LogicOp : uint8_t { kAnd, kOr, kNot };

/// Three-valued AND/OR/NOT.
class LogicExpr : public Expr {
 public:
  LogicExpr(LogicOp op, ExprPtr l, ExprPtr r = nullptr)
      : Expr(TypeId::kBoolean), op_(op), l_(std::move(l)), r_(std::move(r)) {}
  LogicOp op() const { return op_; }
  const Expr* left() const { return l_.get(); }
  const Expr* right() const { return r_.get(); }
  Result<Value> EvaluateRow(const RowBatch& b, size_t row,
                            const ExecContext& ctx) const override;
  Result<ColumnVector> EvaluateSel(const RowBatch& b, const uint32_t* sel,
                                   size_t k,
                                   const ExecContext& ctx) const override;
  bool pure() const override { return true; }
  std::vector<const Expr*> children() const override {
    if (!r_) return {l_.get()};
    return {l_.get(), r_.get()};
  }
  std::string ToString() const override;

 private:
  LogicOp op_;
  ExprPtr l_, r_;
};

/// IS [NOT] NULL / Netezza ISNULL-NOTNULL operators, and Netezza
/// ISTRUE/ISFALSE when `truth_` is set.
class IsNullExpr : public Expr {
 public:
  IsNullExpr(ExprPtr child, bool negate)
      : Expr(TypeId::kBoolean), child_(std::move(child)), negate_(negate) {}
  Result<Value> EvaluateRow(const RowBatch& b, size_t row,
                            const ExecContext& ctx) const override;
  Result<ColumnVector> EvaluateSel(const RowBatch& b, const uint32_t* sel,
                                   size_t k,
                                   const ExecContext& ctx) const override;
  bool pure() const override { return true; }
  std::vector<const Expr*> children() const override { return {child_.get()}; }
  std::string ToString() const override {
    return child_->ToString() + (negate_ ? " IS NOT NULL" : " IS NULL");
  }

 private:
  ExprPtr child_;
  bool negate_;
};

/// CAST(child AS type) / Netezza ::type.
class CastExpr : public Expr {
 public:
  CastExpr(ExprPtr child, TypeId target)
      : Expr(target), child_(std::move(child)) {}
  Result<Value> EvaluateRow(const RowBatch& b, size_t row,
                            const ExecContext& ctx) const override;
  Result<ColumnVector> EvaluateSel(const RowBatch& b, const uint32_t* sel,
                                   size_t k,
                                   const ExecContext& ctx) const override;
  bool pure() const override { return true; }
  std::vector<const Expr*> children() const override { return {child_.get()}; }
  std::string ToString() const override {
    return "CAST(" + child_->ToString() + " AS " + TypeName(out_type_) + ")";
  }

 private:
  ExprPtr child_;
};

/// LIKE with % and _ wildcards. The pattern is classified at construction:
/// exact (no wildcards) and prefix ("abc%") patterns get dedicated kernels
/// and, over dictionary-coded columns, compile to code ranges.
class LikeExpr : public Expr {
 public:
  LikeExpr(ExprPtr child, std::string pattern, bool negate);
  Result<Value> EvaluateRow(const RowBatch& b, size_t row,
                            const ExecContext& ctx) const override;
  Result<ColumnVector> EvaluateSel(const RowBatch& b, const uint32_t* sel,
                                   size_t k,
                                   const ExecContext& ctx) const override;
  bool pure() const override { return true; }
  std::vector<const Expr*> children() const override { return {child_.get()}; }
  std::string ToString() const override {
    return child_->ToString() + (negate_ ? " NOT LIKE '" : " LIKE '") +
           pattern_ + "'";
  }
  /// Exposed for tests: SQL LIKE matching.
  static bool Match(const std::string& s, const std::string& pattern);

 private:
  enum class PatKind : uint8_t { kGeneral, kExact, kPrefix };
  bool MatchOne(const std::string& s) const;

  ExprPtr child_;
  std::string pattern_;
  bool negate_;
  PatKind pat_kind_ = PatKind::kGeneral;
  std::string prefix_;  ///< exact string (kExact) or prefix (kPrefix)
};

/// expr IN (v1, v2, ...) over literal lists. The list is lowered at
/// construction into a sorted set typed to the child, so per-row membership
/// is a binary search on primitives instead of Value comparisons.
class InExpr : public Expr {
 public:
  InExpr(ExprPtr child, std::vector<Value> list, bool negate);
  Result<Value> EvaluateRow(const RowBatch& b, size_t row,
                            const ExecContext& ctx) const override;
  Result<ColumnVector> EvaluateSel(const RowBatch& b, const uint32_t* sel,
                                   size_t k,
                                   const ExecContext& ctx) const override;
  bool pure() const override { return true; }
  std::vector<const Expr*> children() const override { return {child_.get()}; }
  std::string ToString() const override;

 private:
  ExprPtr child_;
  std::vector<Value> list_;
  bool negate_;
  // Typed membership sets (sorted, deduped); vector_ok_ is false when the
  // list mixes type families in a way only Value::Compare can resolve.
  bool vector_ok_ = false;
  bool saw_null_ = false;
  std::vector<int64_t> int_set_;
  std::vector<double> dbl_set_;
  std::vector<std::string> str_set_;
};

/// CASE WHEN ... THEN ... [ELSE ...] END (searched form; the simple form is
/// rewritten to this by the analyzer). Vectorized evaluation is
/// selection-driven: each WHEN's condition runs only on rows no earlier arm
/// claimed, each THEN only on the rows its condition matched.
class CaseExpr : public Expr {
 public:
  CaseExpr(std::vector<std::pair<ExprPtr, ExprPtr>> whens, ExprPtr else_expr,
           TypeId out)
      : Expr(out), whens_(std::move(whens)), else_(std::move(else_expr)) {}
  Result<Value> EvaluateRow(const RowBatch& b, size_t row,
                            const ExecContext& ctx) const override;
  Result<ColumnVector> EvaluateSel(const RowBatch& b, const uint32_t* sel,
                                   size_t k,
                                   const ExecContext& ctx) const override;
  bool pure() const override { return true; }
  std::vector<const Expr*> children() const override {
    std::vector<const Expr*> out;
    for (const auto& [c, t] : whens_) {
      out.push_back(c.get());
      out.push_back(t.get());
    }
    if (else_) out.push_back(else_.get());
    return out;
  }
  std::string ToString() const override { return "CASE ... END"; }

 private:
  std::vector<std::pair<ExprPtr, ExprPtr>> whens_;
  ExprPtr else_;
};

/// Scalar function call bound to an implementation (exec/functions.h).
using ScalarFnImpl =
    std::function<Result<Value>(const std::vector<Value>&, const ExecContext&)>;

/// Optional vectorized implementation: evaluates the function over `rows`
/// dense argument vectors into *out (typed to the function's return type).
/// Returns false to decline (caller falls back to the row loop), so an impl
/// only needs to handle the argument types it specializes.
using VectorFnImpl = std::function<Result<bool>(
    const std::vector<ColumnVector>& args, size_t rows, const ExecContext& ctx,
    ColumnVector* out)>;

class FuncExpr : public Expr {
 public:
  FuncExpr(std::string name, ScalarFnImpl fn, std::vector<ExprPtr> args,
           TypeId out, bool pure = false, VectorFnImpl vec_fn = nullptr)
      : Expr(out), name_(std::move(name)), fn_(std::move(fn)),
        args_(std::move(args)), pure_(pure), vec_fn_(std::move(vec_fn)) {}
  Result<Value> EvaluateRow(const RowBatch& b, size_t row,
                            const ExecContext& ctx) const override;
  Result<ColumnVector> EvaluateSel(const RowBatch& b, const uint32_t* sel,
                                   size_t k,
                                   const ExecContext& ctx) const override;
  bool pure() const override { return pure_ && !args_.empty(); }
  std::vector<const Expr*> children() const override {
    std::vector<const Expr*> out;
    for (const auto& a : args_) out.push_back(a.get());
    return out;
  }
  std::string ToString() const override;

 private:
  std::string name_;
  ScalarFnImpl fn_;
  std::vector<ExprPtr> args_;
  bool pure_ = false;
  VectorFnImpl vec_fn_;
};

/// Applies Oracle VARCHAR2 semantics to a just-produced value: an empty
/// string becomes NULL under the Oracle dialect.
Value ApplyDialectStringSemantics(Value v, const ExecContext& ctx);

/// Evaluates `expr` as a filter over `batch`: returns row indices where the
/// predicate is TRUE (NULL and FALSE are both rejected). Honors
/// batch.selection; indices are absolute (dense) positions.
Result<std::vector<uint32_t>> EvalFilter(const Expr& expr,
                                         const RowBatch& batch,
                                         const ExecContext& ctx);

/// Filter-mode evaluation over an explicit selection: returns the subset of
/// sel[0..k) (or of rows 0..k when sel is null) where `expr` is TRUE.
/// AND/OR short-circuit by narrowing the selection between sides;
/// comparisons and LIKE over dictionary-coded columns run on packed codes.
Result<std::vector<uint32_t>> EvalFilterSel(const Expr& expr,
                                            const RowBatch& batch,
                                            const uint32_t* sel, size_t k,
                                            const ExecContext& ctx);

/// Row-at-a-time reference evaluation (the EvaluateRow loop every kernel is
/// tested against). Exposed for the property tests and A/B benchmarks.
Result<ColumnVector> EvaluateRowAtATime(const Expr& expr,
                                        const RowBatch& batch,
                                        const uint32_t* sel, size_t k,
                                        const ExecContext& ctx);

}  // namespace dashdb
