// Geospatial types and functions in the SQL/MM style (paper II.C.5):
// "complete coverage of location data types such as points, line strings
// and polygons along with ... geospatial computation and analytic
// functions". This reproduction implements the core planar subset over WKT
// text values (POINT / LINESTRING / POLYGON): constructors, accessors,
// ST_Distance, ST_Contains/ST_Within (ray casting), ST_Area (shoelace),
// ST_Length. Registered into the scalar function registry so they are
// usable from any dialect.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace dashdb {
namespace geo {

struct Point {
  double x = 0, y = 0;
};

enum class GeomKind : uint8_t { kPoint, kLineString, kPolygon };

/// A parsed planar geometry. Polygons store the outer ring only (holes are
/// out of scope; documented in DESIGN.md).
struct Geometry {
  GeomKind kind = GeomKind::kPoint;
  std::vector<Point> points;

  std::string ToWkt() const;
};

/// Parses "POINT(x y)", "LINESTRING(x y, x y, ...)",
/// "POLYGON((x y, x y, ...))".
Result<Geometry> ParseWkt(const std::string& wkt);

/// Minimum planar distance between two geometries.
double Distance(const Geometry& a, const Geometry& b);

/// Point-in-polygon via ray casting (boundary counts as contained).
bool Contains(const Geometry& polygon, const Point& p);

/// Shoelace area of a polygon (0 for other kinds).
double Area(const Geometry& g);

/// Sum of segment lengths of a linestring (0 for points).
double Length(const Geometry& g);

class FunctionRegistryBuilderHook;  // fwd (registration happens in functions.cc)

}  // namespace geo
}  // namespace dashdb
