#include "exec/shared_scan.h"

#include "common/metrics.h"

namespace dashdb {

namespace {

struct ShareInstruments {
  Counter* attaches;
  Counter* misses;
  Counter* pages_shared;
};

ShareInstruments& GlobalShareInstruments() {
  auto& reg = MetricRegistry::Global();
  static ShareInstruments in{
      reg.GetCounter("exec.shared_scan_attaches"),
      reg.GetCounter("exec.shared_scan_misses"),
      reg.GetCounter("exec.shared_scan_pages_shared"),
  };
  return in;
}

}  // namespace

struct SharedScanTicket::Group {
  std::atomic<size_t> clock{0};  ///< last page position published
  std::atomic<int> active{0};    ///< consumers currently attached
  size_t num_pages = 0;          ///< page units at last attach
};

SharedScanTicket& SharedScanTicket::operator=(SharedScanTicket&& o) noexcept {
  if (this != &o) {
    if (mgr_ != nullptr) mgr_->Detach(this);
    mgr_ = o.mgr_;
    group_ = std::move(o.group_);
    start_ = o.start_;
    joined_inflight_ = o.joined_inflight_;
    o.mgr_ = nullptr;
    o.group_.reset();
  }
  return *this;
}

SharedScanTicket::~SharedScanTicket() {
  if (mgr_ != nullptr) mgr_->Detach(this);
}

void SharedScanTicket::NotePage(size_t page) {
  if (!group_) return;
  group_->clock.store(page, std::memory_order_relaxed);
  if (group_->active.load(std::memory_order_relaxed) > 1) {
    mgr_->CountSharedPage();
    GlobalShareInstruments().pages_shared->Add(1);
  }
}

SharedScanTicket ScanShareManager::Attach(uint64_t table_id, uint64_t colset,
                                          size_t num_pages) {
  SharedScanTicket t;
  if (num_pages == 0) return t;
  Key key{table_id, colset};
  std::shared_ptr<SharedScanTicket::Group> group;
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Groups persist across quiet periods so a follow-up scan resumes at
    // the buffer-resident region; bound the map so dropped tables don't
    // accumulate forever (idle groups are tiny, so the bound is generous).
    if (groups_.size() > 4096) {
      for (auto it = groups_.begin(); it != groups_.end();) {
        it = it->second->active.load(std::memory_order_relaxed) == 0
                 ? groups_.erase(it)
                 : std::next(it);
      }
    }
    auto [it, inserted] = groups_.try_emplace(key);
    if (inserted) it->second = std::make_shared<SharedScanTicket::Group>();
    group = it->second;
    if (group->num_pages != num_pages) {
      // Table grew or shrank since the clock was last published: restart
      // the clock inside the new page range.
      group->num_pages = num_pages;
      group->clock.store(0, std::memory_order_relaxed);
    }
    t.joined_inflight_ =
        group->active.fetch_add(1, std::memory_order_acq_rel) > 0;
  }
  t.mgr_ = this;
  t.group_ = std::move(group);
  t.start_ = t.group_->clock.load(std::memory_order_relaxed) % num_pages;
  active_.fetch_add(1, std::memory_order_relaxed);
  if (t.joined_inflight_) {
    attaches_.fetch_add(1, std::memory_order_relaxed);
    GlobalShareInstruments().attaches->Add(1);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    GlobalShareInstruments().misses->Add(1);
  }
  return t;
}

void ScanShareManager::Detach(SharedScanTicket* t) {
  if (t->group_) {
    t->group_->active.fetch_sub(1, std::memory_order_acq_rel);
    active_.fetch_sub(1, std::memory_order_relaxed);
  }
  t->mgr_ = nullptr;
  t->group_.reset();
}

uint64_t ScanColumnSetSignature(const std::vector<int>& projection,
                                const std::vector<int>& predicate_cols) {
  uint64_t h = 0xCBF29CE484222325ull;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  };
  for (int c : projection) mix(static_cast<uint64_t>(c) + 1);
  mix(0xFFFFFFFFull);  // separator: projection vs predicate columns
  for (int c : predicate_cols) mix(static_cast<uint64_t>(c) + 1);
  return h;
}

}  // namespace dashdb
