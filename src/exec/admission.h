// Admission control / workload management (paper: dashDB Local ships with
// workload management pre-configured so many tenants can pile onto one
// engine without a runaway mix starving interactive queries).
//
// Queries are classified into two classes by the optimizer's root
// cardinality estimate — cheap (small/interactive) vs. expensive
// (large/analytical) — and each class has its own pool of concurrency
// slots. A query that finds no free slot waits on a bounded queue; waiting
// past the queue timeout (or arriving to a full queue) is shed with
// kResourceExhausted so overload degrades into fast, explicit rejections
// instead of unbounded latency. Slots are released when the statement
// finishes (AdmissionTicket is RAII).
//
// Defaults are generous (slots >= any test's concurrency), so existing
// serial callers admit immediately and behavior without SET ADMISSION
// tuning is unchanged.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/status.h"

namespace dashdb {

class QueryContext;

struct AdmissionConfig {
  int cheap_slots = 64;       ///< concurrent cheap queries
  int expensive_slots = 16;   ///< concurrent expensive queries
  int max_queued = 256;       ///< waiters across both classes; 0 = no queue
  double queue_timeout_seconds = 10.0;
  /// Root-estimate boundary between the classes: plans expected to produce
  /// at least this many rows (or with no estimate at all once they join
  /// multiple relations) are expensive.
  double expensive_est_rows = 100000.0;
};

enum class QueryClass : uint8_t { kCheap = 0, kExpensive };

class AdmissionController;

/// RAII admission slot: releases on destruction. Default-constructed
/// tickets (admission bypassed/disabled) release nothing.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  AdmissionTicket(AdmissionController* ctrl, QueryClass cls)
      : ctrl_(ctrl), cls_(cls) {}
  AdmissionTicket(AdmissionTicket&& o) noexcept
      : ctrl_(o.ctrl_), cls_(o.cls_) {
    o.ctrl_ = nullptr;
  }
  AdmissionTicket& operator=(AdmissionTicket&& o) noexcept;
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;
  ~AdmissionTicket();

 private:
  AdmissionController* ctrl_ = nullptr;
  QueryClass cls_ = QueryClass::kCheap;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig cfg = {}) : cfg_(cfg) {}

  /// Blocks until a slot for `cls` frees up, the queue timeout passes, or
  /// the queue is full — the latter two shed the query with
  /// kResourceExhausted. Feeds the exec.admission_* counters.
  ///
  /// `qctx`, when set, makes the queue wait cancellable: a query whose
  /// governor is cancelled while QUEUED (a dropped client connection, an
  /// explicit CANCEL frame) leaves the queue with kCancelled instead of
  /// holding its waiter until the queue timeout. The wait polls the flag at
  /// 10ms granularity, so a disconnect frees the admission path promptly
  /// without threading a wakeup through every QueryContext.
  Result<AdmissionTicket> Admit(QueryClass cls, QueryContext* qctx = nullptr);

  /// Classifies by the optimizer's root estimate (negative = no estimate,
  /// treated as cheap — scans and point lookups bind without estimates in
  /// some paths and must not queue behind analytics).
  QueryClass Classify(double est_rows) const {
    return est_rows >= cfg_.expensive_est_rows ? QueryClass::kExpensive
                                               : QueryClass::kCheap;
  }

  const AdmissionConfig& config() const { return cfg_; }
  /// Reconfigure between statements (bench/tests); not safe while queries
  /// hold tickets.
  void Configure(const AdmissionConfig& cfg) {
    std::lock_guard<std::mutex> lk(mu_);
    cfg_ = cfg;
  }

  int running(QueryClass cls) const {
    std::lock_guard<std::mutex> lk(mu_);
    return cls == QueryClass::kCheap ? running_cheap_ : running_expensive_;
  }
  int queued() const {
    std::lock_guard<std::mutex> lk(mu_);
    return queued_;
  }

 private:
  friend class AdmissionTicket;
  void Release(QueryClass cls);

  mutable std::mutex mu_;
  std::condition_variable slot_cv_;
  AdmissionConfig cfg_;
  int running_cheap_ = 0;
  int running_expensive_ = 0;
  int queued_ = 0;
};

}  // namespace dashdb
