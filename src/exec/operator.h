// Pull-based vectorized operators (paper II.B.7): scans over both table
// organizations, filter/project, cache-partitioned hash join, partitioned
// hash aggregation, sort, limit, values, union.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/column_vector.h"
#include "common/flat_hash.h"
#include "common/query_context.h"
#include "common/status.h"
#include "common/trace.h"
#include "exec/agg.h"
#include "exec/expr.h"
#include "storage/column_table.h"
#include "storage/row_table.h"

namespace dashdb {

/// One column of an operator's output.
struct OutputCol {
  std::string name;
  TypeId type;
};

/// Per-operator runtime metrics, accumulated by the Open()/Next() wrappers.
/// Wall/CPU time is cumulative over the operator's subtree (a parent's
/// Next() nests its children's), so "self" time is wall minus the sum of
/// the children's wall; EXPLAIN ANALYZE renders both. CPU time is the
/// calling thread's (CLOCK_THREAD_CPUTIME_ID) — pool workers spawned by
/// parallel operators contribute wall time but not cpu_seconds.
struct OperatorMetrics {
  uint64_t open_calls = 0;
  uint64_t next_calls = 0;
  uint64_t batches_out = 0;
  uint64_t rows_out = 0;
  double wall_seconds = 0;
  double cpu_seconds = 0;
};

/// Base pull operator: Open() once, then Next() until it returns false.
///
/// Open()/Next() are non-virtual instrumented wrappers: subclasses
/// implement OpenImpl()/NextImpl(), and the wrappers time each call,
/// count batches/rows, and feed the global metrics registry. Internal
/// operator code pulls children through the public wrappers, so every
/// node in a plan is measured without any per-operator effort.
class Operator {
 public:
  virtual ~Operator();
  Status Open();
  /// Replaces *out with the next batch; returns false at end of stream.
  /// Batches are always dense: any selection vector a child produced is
  /// compacted here, so callers that have not opted in never see one.
  Result<bool> Next(RowBatch* out);
  /// Like Next(), but the batch may carry a selection vector (FilterOp
  /// emits one instead of compacting). Selection-aware consumers pull
  /// through this and defer compaction to their own blow-up points.
  Result<bool> NextSel(RowBatch* out);
  const std::vector<OutputCol>& output() const { return output_; }

  /// EXPLAIN support.
  virtual std::string label() const { return "Operator"; }
  virtual std::vector<const Operator*> children() const { return {}; }
  std::string PlanString(int indent = 0) const;

  /// Stable operator-kind name used for trace spans: the label up to its
  /// parameter list. Overridden where the class name is a DOP artifact
  /// (ParallelColumnScan reports "ColumnScan") so span trees compare equal
  /// across DOP settings when the logical plan is unchanged.
  virtual std::string kind() const;

  /// EXPLAIN ANALYZE rendering: the plan tree annotated with per-operator
  /// rows, batches, cumulative and self wall time. Meaningful after the
  /// plan has been drained.
  std::string AnalyzeString(int indent = 0) const;

  const OperatorMetrics& metrics() const { return metrics_; }

  /// Appends one span per plan node (pre-order, children in children()
  /// order — deterministic) under `parent`; returns this node's span id.
  uint32_t AddTraceSpans(Trace* trace, uint32_t parent) const;

  /// Optimizer row estimate, rendered as `est=` in EXPLAIN ANALYZE and fed
  /// to the `exec.card_est_error` histogram after the plan drains. Unset
  /// means the planner had no estimate for this node.
  void set_est_rows(double est) {
    est_rows_ = est;
    has_est_ = true;
  }
  bool has_est_rows() const { return has_est_; }
  double est_rows() const { return est_rows_; }

  /// Governor plumbing: the wrappers probe `qctx` before OpenImpl/NextImpl,
  /// so any plan node stops within one batch of a cancel/timeout. Set by
  /// AttachQueryContext on the whole tree after binding; the context must
  /// outlive the plan (reservations are released on destruction).
  void set_query_ctx(QueryContext* qctx) { qctx_ = qctx; }
  QueryContext* query_ctx() const { return qctx_; }

  /// Peak bytes this operator reserved against the query budget, rendered
  /// as `mem=` in EXPLAIN ANALYZE.
  int64_t mem_peak_bytes() const { return mem_peak_bytes_; }

  /// Sideways information passing: a hash-join build (or the adaptive join
  /// assembler, or the MPP coordinator) offers a Bloom filter over its
  /// build keys to a probe-side scan. `col` is an output-column index of
  /// this operator; hashes follow HashValue semantics. Returns true when
  /// the operator will apply the filter; the base class declines.
  virtual bool AcceptRuntimeFilter(int col,
                                   std::shared_ptr<const BloomPrefilter> bloom) {
    (void)col;
    (void)bloom;
    return false;
  }

 protected:
  virtual Status OpenImpl() = 0;
  virtual Result<bool> NextImpl(RowBatch* out) = 0;
  /// Extra per-operator detail appended inside the AnalyzeString bracket
  /// (e.g. FilterOp's selectivity).
  virtual std::string AnalyzeExtra() const { return std::string(); }

  /// Reserves `bytes` for this operator's materialized state against the
  /// attached query budget (no-op without one). kResourceExhausted aborts
  /// the query; the reservation is returned when the operator is destroyed.
  /// Call only from the operator's own execution thread — accounting here
  /// is per-operator and unsynchronized (the QueryContext totals are
  /// atomic).
  Status ChargeMemory(int64_t bytes, const char* what);

  /// The governor probe available to operator internals that loop without
  /// pulling a child (morsel workers, build loops).
  Status CheckQueryAlive() {
    return qctx_ != nullptr ? qctx_->CheckAlive() : Status::OK();
  }

  std::vector<OutputCol> output_;

 private:
  Result<bool> NextInternal(RowBatch* out, bool allow_selection);

  OperatorMetrics metrics_;
  double est_rows_ = 0;
  bool has_est_ = false;
  QueryContext* qctx_ = nullptr;
  int64_t mem_reserved_ = 0;    ///< outstanding bytes, released on destroy
  int64_t mem_peak_bytes_ = 0;  ///< high-water mark of mem_reserved_
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Storage objects that can produce their own scan operator. The binder
/// uses this for catalog entries that are neither column nor row tables —
/// e.g. Fluid Query nicknames over remote stores (paper II.C.6). The
/// contract: the returned operator applies EVERY given predicate (whether
/// by remote pushdown or local post-filtering is the source's business).
class ScannableStorage : public StorageObject {
 public:
  virtual Result<OperatorPtr> CreateScan(
      const std::vector<ColumnPredicate>& preds,
      const std::vector<int>& projection) const = 0;
};

/// Hash of a Value for join/aggregation keys.
uint64_t HashValue(const Value& v);

/// A Bloom filter pushed sideways into a scan (semi-join reduction): rows
/// whose `col` cell hash misses the filter are dropped at emit time. The
/// cell hash matches HashValue, so any filter built over join-build keys
/// (locally or on another MPP node) composes with any scan.
struct ScanRuntimeFilter {
  int col = 0;  ///< scan output-column index
  std::shared_ptr<const BloomPrefilter> bloom;
};

/// Walks a drained plan and, for every node carrying a planner estimate,
/// records log2(actual / estimated) into the `exec.card_est_error`
/// histogram (0 = perfect, ±1 = off by 2x, ...).
void RecordCardinalityFeedback(const Operator* root);

/// Scan over a column-organized table with pushed-down predicates.
class ColumnScanOp : public Operator {
 public:
  ColumnScanOp(std::shared_ptr<const ColumnTable> table,
               std::vector<ColumnPredicate> preds, std::vector<int> projection,
               ScanOptions opts);
  Status OpenImpl() override;
  Result<bool> NextImpl(RowBatch* out) override;
  const ScanStats& stats() const { return stats_; }

  std::string label() const override { return "ColumnScan(" + table_->schema().QualifiedName() + " preds=" + std::to_string(preds_.size()) + ")"; }

  bool AcceptRuntimeFilter(
      int col, std::shared_ptr<const BloomPrefilter> bloom) override;

 protected:
  std::string AnalyzeExtra() const override;

 private:
  std::shared_ptr<const ColumnTable> table_;
  std::vector<ColumnPredicate> preds_;
  std::vector<int> projection_;
  ScanOptions opts_;
  size_t next_page_ = 0;
  ScanStats stats_;
  std::vector<ScanRuntimeFilter> runtime_filters_;
  uint64_t bloom_dropped_ = 0;
};

/// Morsel-driven parallel scan over a column-organized table (paper II.B.6:
/// strides scheduled across cores). The page range — one morsel per page,
/// including the uncompressed tail — fans out over `opts.exec_pool` at
/// degree `opts.dop`; each worker evaluates predicates and decodes the
/// projection into a per-page slot, so emitted batches keep exact page
/// order and results are identical to the serial ColumnScanOp. Per-worker
/// ScanStats are merged when the fan-out completes.
class ParallelColumnScanOp : public Operator {
 public:
  ParallelColumnScanOp(std::shared_ptr<const ColumnTable> table,
                       std::vector<ColumnPredicate> preds,
                       std::vector<int> projection, ScanOptions opts);
  Status OpenImpl() override;
  Result<bool> NextImpl(RowBatch* out) override;
  const ScanStats& stats() const { return stats_; }

  std::string label() const override {
    return "ParallelColumnScan(" + table_->schema().QualifiedName() +
           " preds=" + std::to_string(preds_.size()) +
           " dop=" + std::to_string(opts_.dop) + ")";
  }
  /// Same logical operator as the serial scan; keeps spans DOP-invariant.
  std::string kind() const override { return "ColumnScan"; }

  bool AcceptRuntimeFilter(
      int col, std::shared_ptr<const BloomPrefilter> bloom) override;

 protected:
  std::string AnalyzeExtra() const override;

 private:
  /// Runs the whole page range across the pool, filling results_.
  Status RunMorsels();

  std::shared_ptr<const ColumnTable> table_;
  std::vector<ColumnPredicate> preds_;
  std::vector<int> projection_;
  ScanOptions opts_;
  std::vector<RowBatch> results_;  ///< one slot per page, page order
  size_t next_slot_ = 0;
  bool ran_ = false;
  ScanStats stats_;
  std::vector<ScanRuntimeFilter> runtime_filters_;
  uint64_t bloom_dropped_ = 0;
};

/// Full scan over the row-organized baseline table.
class RowScanOp : public Operator {
 public:
  RowScanOp(std::shared_ptr<const RowTable> table,
            std::vector<ColumnPredicate> preds, std::vector<int> projection);
  Status OpenImpl() override;
  Result<bool> NextImpl(RowBatch* out) override;

  std::string label() const override { return "RowScan(" + table_->schema().QualifiedName() + ")"; }

 private:
  std::shared_ptr<const RowTable> table_;
  std::vector<ColumnPredicate> preds_;
  std::vector<int> projection_;
  uint64_t next_row_ = 0;
  static constexpr uint64_t kChunk = 4096;
};

/// B+Tree index range scan over the row table (appliance access path).
class RowIndexScanOp : public Operator {
 public:
  RowIndexScanOp(std::shared_ptr<const RowTable> table, int index_col,
                 int64_t lo, int64_t hi, std::vector<ColumnPredicate> residual,
                 std::vector<int> projection);
  Status OpenImpl() override;
  Result<bool> NextImpl(RowBatch* out) override;

  std::string label() const override { return "RowIndexScan(" + table_->schema().QualifiedName() + ")"; }

 private:
  std::shared_ptr<const RowTable> table_;
  int index_col_;
  int64_t lo_, hi_;
  std::vector<ColumnPredicate> residual_;
  std::vector<int> projection_;
  RowBatch buffer_;
  bool drained_ = false;
};

/// Residual predicate filter. Emits the child's batch unchanged with a
/// selection vector attached instead of compacting — downstream
/// selection-aware consumers (project, join probe, aggregation, limit)
/// evaluate through the selection and compact only at blow-up points.
class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr child, ExprPtr pred, const ExecContext* ctx);
  Status OpenImpl() override;
  Result<bool> NextImpl(RowBatch* out) override;

  std::string label() const override { return "Filter(" + pred_->ToString() + ")"; }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

 protected:
  std::string AnalyzeExtra() const override;

 private:
  OperatorPtr child_;
  ExprPtr pred_;
  const ExecContext* ctx_;
  uint64_t rows_in_ = 0;       ///< logical rows examined
  uint64_t rows_passed_ = 0;   ///< rows selected
  uint64_t sel_batches_ = 0;   ///< batches emitted carrying a selection
};

/// Expression projection.
class ProjectOp : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<ExprPtr> exprs,
            std::vector<std::string> names, const ExecContext* ctx);
  Status OpenImpl() override;
  Result<bool> NextImpl(RowBatch* out) override;

  std::string label() const override { return "Project(" + std::to_string(exprs_.size()) + " exprs)"; }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
  const ExecContext* ctx_;
};

enum class JoinType : uint8_t { kInner = 0, kLeft, kCross };

/// Hash join; the build side (right child) is radix-partitioned into
/// cache-sized partitions, each with its own hash table — the Hybrid Hash
/// Join / BLU-style "partition into L2/L3 chunks" strategy of paper II.B.7.
/// `partitioned=false` degrades to one global table (ablation baseline).
class HashJoinOp : public Operator {
 public:
  HashJoinOp(OperatorPtr probe, OperatorPtr build,
             std::vector<ExprPtr> probe_keys, std::vector<ExprPtr> build_keys,
             JoinType type, const ExecContext* ctx, bool partitioned = true);
  Status OpenImpl() override;
  Result<bool> NextImpl(RowBatch* out) override;

  std::string label() const override;
  std::vector<const Operator*> children() const override {
    return {probe_.get(), build_.get()};
  }

  /// Arms scan-side Bloom pushdown: when the build side completes, a
  /// filter over the (single) build key column is offered to `target` — a
  /// scan below the probe side — on its output column `target_col`. Only
  /// meaningful for single-key INNER joins (NULL and unmatched probe rows
  /// may be dropped at the scan); the binder enforces that.
  void SetProbeFilterTarget(Operator* target, int target_col) {
    filter_target_ = target;
    filter_target_col_ = target_col;
  }

 protected:
  std::string AnalyzeExtra() const override;

 private:
  static constexpr int kPartitionBits = 6;  // 64 cache-sized partitions
  /// Below this build cardinality the fan-out overhead beats the win.
  static constexpr size_t kParallelBuildMinRows = 4096;
  /// One cache-sized radix partition: a flat open-addressing multimap from
  /// the 64-bit key (combined key hash, or the raw int64 on the fast-int
  /// path) to the build-row chain, fronted by a Bloom-style prefilter so
  /// probe misses reject without touching the table.
  struct Partition {
    FlatJoinIndex table;
    BloomPrefilter bloom;
  };

  /// Whether this build runs on the pool (needs the context's pool, a
  /// partitioned build — the radix partitions are the independent units —
  /// and enough rows to amortize the fan-out).
  bool ParallelBuildEligible(size_t build_rows) const;

  Status BuildSide();
  /// Typed equality of the probe row's key cells against the build row's
  /// (hash-equal candidates only; never allocates).
  bool KeysEqual(const std::vector<ColumnVector>& probe_key_cols,
                 size_t probe_row, uint32_t build_row) const;

  OperatorPtr probe_, build_;
  std::vector<ExprPtr> probe_keys_, build_keys_;
  JoinType type_;
  const ExecContext* ctx_;
  bool partitioned_;
  RowBatch build_data_;
  /// Build-side key columns, batch-evaluated once over build_data_
  /// (generic path; the fast-int path reads build_data_ directly).
  std::vector<ColumnVector> build_key_cols_;
  std::vector<Partition> partitions_;
  bool built_ = false;
  /// Fast path: single integer-backed column-ref key on both sides keys
  /// the partition tables directly on the int64 value.
  bool fast_int_ = false;
  int probe_key_col_ = -1, build_key_col_ = -1;
  /// Scan-side Bloom pushdown target (see SetProbeFilterTarget).
  Operator* filter_target_ = nullptr;
  int filter_target_col_ = -1;
  bool filter_installed_ = false;
};

/// Cross / non-equi nested-loop join (small inputs: DUAL, dimension
/// cross-products, Oracle (+) conditions that are not equi-joins).
class NestedLoopJoinOp : public Operator {
 public:
  NestedLoopJoinOp(OperatorPtr left, OperatorPtr right, ExprPtr condition,
                   JoinType type, const ExecContext* ctx);
  Status OpenImpl() override;
  Result<bool> NextImpl(RowBatch* out) override;

  std::string label() const override { return "NestedLoopJoin"; }
  std::vector<const Operator*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  OperatorPtr left_, right_;
  ExprPtr condition_;  ///< may be null (pure cross join)
  JoinType type_;
  const ExecContext* ctx_;
  RowBatch right_data_;
  bool built_ = false;
};

/// Wraps an already-drained child: emits the captured batch once per Open.
/// The adaptive join assembler drains relations up front (to observe their
/// true cardinalities) and then feeds them to hash-join builds through
/// this operator, so the child is never re-executed.
class MaterializedOp : public Operator {
 public:
  MaterializedOp(OperatorPtr child, RowBatch data);
  Status OpenImpl() override;
  Result<bool> NextImpl(RowBatch* out) override;

  std::string label() const override {
    return "Materialized(" + std::to_string(data_.num_rows()) + " rows)";
  }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

 private:
  OperatorPtr child_;
  RowBatch data_;
  bool done_ = false;
};

/// One single-column equi-join edge between two FROM items, in the items'
/// local scan-output column indices, plus each side's estimated key NDV
/// (0 = unknown).
struct AdaptiveJoinEdge {
  int left_item = 0;
  int left_col = 0;
  int right_item = 0;
  int right_col = 0;
  double left_ndv = 0;
  double right_ndv = 0;
};

/// Cost-ordered multi-way inner join with runtime adaptivity (paper II.B.7
/// extended): on first Next, picks a join order from the estimates
/// (sql/join_order.h), then materializes the non-driving relations one at
/// a time. After each materialization the OBSERVED cardinality replaces
/// the estimate; if it diverges from the estimate by more than 10x while
/// joins remain, the suffix of the order is re-planned. Materialized
/// relations with an edge to the driving relation push a Bloom filter of
/// their key column into the driving scan (semi-join reduction), then the
/// chain of hash joins is assembled and streamed. Output columns are in
/// the original FROM order regardless of the chosen join order.
class AdaptiveJoinOp : public Operator {
 public:
  AdaptiveJoinOp(std::vector<OperatorPtr> sources,
                 std::vector<AdaptiveJoinEdge> edges,
                 std::vector<double> source_est_rows, bool adaptive,
                 const ExecContext* ctx);
  Status OpenImpl() override;
  Result<bool> NextImpl(RowBatch* out) override;

  std::string label() const override;
  std::string kind() const override { return "AdaptiveJoin"; }
  std::vector<const Operator*> children() const override;

  uint64_t replans() const { return replans_; }

 protected:
  std::string AnalyzeExtra() const override;

 private:
  /// Orders, materializes (re-planning on mis-estimates), pushes Bloom
  /// filters, and builds the hash-join chain. Runs once, on first Next.
  Status Assemble();

  std::vector<OperatorPtr> sources_;
  std::vector<AdaptiveJoinEdge> edges_;
  std::vector<double> source_est_rows_;
  bool adaptive_;
  const ExecContext* ctx_;

  OperatorPtr chain_;  ///< assembled join chain (owns all sources)
  /// chain output column -> FROM-order output column.
  std::vector<int> out_perm_;
  bool assembled_ = false;
  uint64_t replans_ = 0;
  uint64_t blooms_ = 0;
};

/// Hash GROUP BY with the aggregate library. Materializes on first Next.
class HashAggOp : public Operator {
 public:
  HashAggOp(OperatorPtr child, std::vector<ExprPtr> group_exprs,
            std::vector<std::string> group_names, std::vector<AggSpec> aggs,
            std::vector<std::string> agg_names, const ExecContext* ctx);
  Status OpenImpl() override;
  Result<bool> NextImpl(RowBatch* out) override;

  std::string label() const override;
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

 private:
  /// Whether materialization may use thread-local partials + parallel merge
  /// (needs the context's pool and mergeable aggregate states).
  bool ParallelEligible() const;

  Status Materialize();

  OperatorPtr child_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggSpec> aggs_;
  const ExecContext* ctx_;
  RowBatch result_;
  bool done_ = false;
  bool materialized_ = false;
};

/// SELECT COUNT(*) fast path over one column table with pushed-down
/// predicates (paper II.B.6, "counting without materialization"): the
/// count comes from the storage layer's code-domain population counts
/// (SwarCount over packed codes), with no match bitmap and no decode.
class CountStarScanOp : public Operator {
 public:
  CountStarScanOp(std::shared_ptr<const ColumnTable> table,
                  std::vector<ColumnPredicate> preds, ScanOptions opts,
                  const std::string& out_name);
  Status OpenImpl() override;
  Result<bool> NextImpl(RowBatch* out) override;
  const ScanStats& stats() const { return stats_; }

  std::string label() const override {
    return "CountStarScan(" + table_->schema().QualifiedName() +
           " preds=" + std::to_string(preds_.size()) + ")";
  }

 private:
  std::shared_ptr<const ColumnTable> table_;
  std::vector<ColumnPredicate> preds_;
  ScanOptions opts_;
  bool done_ = false;
  ScanStats stats_;
};

// SortKey / SortOp / TopNOp live in exec/sort.h (parallel sort subsystem).

/// LIMIT n OFFSET m (also implements FETCH FIRST and Oracle ROWNUM caps).
/// Once the limit is satisfied the child is never pulled again (done_
/// latches), which `child_pulls()` makes verifiable.
class LimitOp : public Operator {
 public:
  LimitOp(OperatorPtr child, int64_t limit, int64_t offset);
  Status OpenImpl() override;
  Result<bool> NextImpl(RowBatch* out) override;

  std::string label() const override { return "Limit(" + std::to_string(limit_) + " offset " + std::to_string(offset_) + ")"; }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

  /// Number of child NextSel calls made so far (early-termination probe).
  uint64_t child_pulls() const { return child_pulls_; }

 protected:
  std::string AnalyzeExtra() const override;

 private:
  OperatorPtr child_;
  int64_t limit_, offset_;
  int64_t skipped_ = 0, emitted_ = 0;
  uint64_t child_pulls_ = 0;
  bool done_ = false;  ///< latched when the limit is satisfied
};

/// Emits a constant batch (VALUES clause, DUAL, INSERT source).
class ValuesOp : public Operator {
 public:
  ValuesOp(RowBatch batch, std::vector<OutputCol> cols);
  Status OpenImpl() override;
  Result<bool> NextImpl(RowBatch* out) override;

  std::string label() const override { return "Values(" + std::to_string(batch_.num_rows()) + " rows)"; }

 private:
  RowBatch batch_;
  bool done_ = false;
};

/// Concatenation of child streams (UNION ALL, CTE fan-in).
class UnionAllOp : public Operator {
 public:
  explicit UnionAllOp(std::vector<OperatorPtr> children);
  Status OpenImpl() override;
  Result<bool> NextImpl(RowBatch* out) override;

  std::string label() const override { return "UnionAll"; }
  std::vector<const Operator*> children() const override {
    std::vector<const Operator*> out;
    for (const auto& c : children_) out.push_back(c.get());
    return out;
  }

 private:
  std::vector<OperatorPtr> children_;
  size_t current_ = 0;
};

/// Drains an operator into a single batch (used by the SQL engine, MPP
/// gather, and tests).
Result<RowBatch> DrainOperator(Operator* op);

/// Attaches `qctx` to every node of a bound plan (pre-order). Operators
/// that build sub-plans at runtime (AdaptiveJoinOp) re-attach through
/// their ExecContext's query_ctx.
void AttachQueryContext(Operator* root, QueryContext* qctx);

/// Estimated in-memory footprint of a batch, matching the fluid transfer
/// accounting: 8 bytes per fixed-width cell, string size + 2 per varchar
/// cell. Used by operators to size their budget reservations.
int64_t BatchMemoryBytes(const RowBatch& b);

}  // namespace dashdb
