#include "exec/expr.h"

#include <cmath>

namespace dashdb {

Result<ColumnVector> Expr::Evaluate(const RowBatch& batch,
                                    const ExecContext& ctx) const {
  ColumnVector out(out_type_);
  const size_t n = batch.num_rows();
  out.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    DASHDB_ASSIGN_OR_RETURN(Value v, EvaluateRow(batch, i, ctx));
    if (!v.is_null() && v.type() != out_type_) {
      DASHDB_ASSIGN_OR_RETURN(v, v.CastTo(out_type_));
    }
    out.AppendValue(v);
  }
  return out;
}

Result<Value> ColumnRefExpr::EvaluateRow(const RowBatch& b, size_t row,
                                         const ExecContext&) const {
  if (index_ < 0 || static_cast<size_t>(index_) >= b.columns.size()) {
    return Status::Internal("column ref out of range");
  }
  return b.columns[index_].GetValue(row);
}

Result<ColumnVector> ColumnRefExpr::Evaluate(const RowBatch& b,
                                             const ExecContext&) const {
  if (index_ < 0 || static_cast<size_t>(index_) >= b.columns.size()) {
    return Status::Internal("column ref out of range");
  }
  return b.columns[index_];
}

Value ApplyDialectStringSemantics(Value v, const ExecContext& ctx) {
  if (ctx.EmptyStringIsNull() && !v.is_null() &&
      v.type() == TypeId::kVarchar && v.AsString().empty()) {
    return Value::Null(TypeId::kVarchar);
  }
  return v;
}

Result<Value> ArithExpr::EvaluateRow(const RowBatch& b, size_t row,
                                     const ExecContext& ctx) const {
  DASHDB_ASSIGN_OR_RETURN(Value l, l_->EvaluateRow(b, row, ctx));
  DASHDB_ASSIGN_OR_RETURN(Value r, r_->EvaluateRow(b, row, ctx));
  if (l.is_null() || r.is_null()) return Value::Null(out_type_);
  if (op_ == ArithOp::kConcat) {
    DASHDB_ASSIGN_OR_RETURN(Value ls, l.CastTo(TypeId::kVarchar));
    DASHDB_ASSIGN_OR_RETURN(Value rs, r.CastTo(TypeId::kVarchar));
    return ApplyDialectStringSemantics(
        Value::String(ls.AsString() + rs.AsString()), ctx);
  }
  // DATE +/- integer day arithmetic.
  if (l.type() == TypeId::kDate && r.type() != TypeId::kDate &&
      (op_ == ArithOp::kAdd || op_ == ArithOp::kSub)) {
    int64_t days = op_ == ArithOp::kAdd ? l.AsInt() + r.AsInt()
                                        : l.AsInt() - r.AsInt();
    return Value::Date(static_cast<int32_t>(days));
  }
  if (l.type() == TypeId::kDate && r.type() == TypeId::kDate &&
      op_ == ArithOp::kSub) {
    return Value::Int64(l.AsInt() - r.AsInt());
  }
  bool use_double = l.type() == TypeId::kDouble ||
                    r.type() == TypeId::kDouble || op_ == ArithOp::kDiv;
  if (use_double) {
    double a = l.AsDouble(), c = r.AsDouble();
    switch (op_) {
      case ArithOp::kAdd: return Value::Double(a + c);
      case ArithOp::kSub: return Value::Double(a - c);
      case ArithOp::kMul: return Value::Double(a * c);
      case ArithOp::kDiv:
        if (c == 0) return Status::InvalidArgument("division by zero");
        return Value::Double(a / c);
      case ArithOp::kMod:
        if (c == 0) return Status::InvalidArgument("division by zero");
        return Value::Double(std::fmod(a, c));
      default: break;
    }
  }
  int64_t a = l.AsInt(), c = r.AsInt();
  switch (op_) {
    case ArithOp::kAdd: return Value::Int64(a + c);
    case ArithOp::kSub: return Value::Int64(a - c);
    case ArithOp::kMul: return Value::Int64(a * c);
    case ArithOp::kMod:
      if (c == 0) return Status::InvalidArgument("division by zero");
      return Value::Int64(a % c);
    default: break;
  }
  return Status::Internal("unhandled arith op");
}

std::string ArithExpr::ToString() const {
  const char* ops[] = {"+", "-", "*", "/", "%", "||"};
  return "(" + l_->ToString() + " " + ops[static_cast<int>(op_)] + " " +
         r_->ToString() + ")";
}

Result<Value> CompareExpr::EvaluateRow(const RowBatch& b, size_t row,
                                       const ExecContext& ctx) const {
  DASHDB_ASSIGN_OR_RETURN(Value l, l_->EvaluateRow(b, row, ctx));
  DASHDB_ASSIGN_OR_RETURN(Value r, r_->EvaluateRow(b, row, ctx));
  l = ApplyDialectStringSemantics(std::move(l), ctx);
  r = ApplyDialectStringSemantics(std::move(r), ctx);
  if (l.is_null() || r.is_null()) return Value::Null(TypeId::kBoolean);
  int c = l.Compare(r);
  bool res = false;
  switch (op_) {
    case CmpOp::kEq: res = c == 0; break;
    case CmpOp::kNe: res = c != 0; break;
    case CmpOp::kLt: res = c < 0; break;
    case CmpOp::kLe: res = c <= 0; break;
    case CmpOp::kGt: res = c > 0; break;
    case CmpOp::kGe: res = c >= 0; break;
  }
  return Value::Boolean(res);
}

std::string CompareExpr::ToString() const {
  const char* ops[] = {"=", "<>", "<", "<=", ">", ">="};
  return "(" + l_->ToString() + " " + ops[static_cast<int>(op_)] + " " +
         r_->ToString() + ")";
}

Result<Value> LogicExpr::EvaluateRow(const RowBatch& b, size_t row,
                                     const ExecContext& ctx) const {
  DASHDB_ASSIGN_OR_RETURN(Value l, l_->EvaluateRow(b, row, ctx));
  if (op_ == LogicOp::kNot) {
    if (l.is_null()) return Value::Null(TypeId::kBoolean);
    return Value::Boolean(!l.AsBool());
  }
  // Three-valued logic with short circuit.
  bool l_null = l.is_null();
  bool l_true = !l_null && l.AsBool();
  if (op_ == LogicOp::kAnd && !l_null && !l_true) return Value::Boolean(false);
  if (op_ == LogicOp::kOr && l_true) return Value::Boolean(true);
  DASHDB_ASSIGN_OR_RETURN(Value r, r_->EvaluateRow(b, row, ctx));
  bool r_null = r.is_null();
  bool r_true = !r_null && r.AsBool();
  if (op_ == LogicOp::kAnd) {
    if (!r_null && !r_true) return Value::Boolean(false);
    if (l_null || r_null) return Value::Null(TypeId::kBoolean);
    return Value::Boolean(true);
  }
  if (r_true) return Value::Boolean(true);
  if (l_null || r_null) return Value::Null(TypeId::kBoolean);
  return Value::Boolean(false);
}

std::string LogicExpr::ToString() const {
  if (op_ == LogicOp::kNot) return "NOT " + l_->ToString();
  return "(" + l_->ToString() +
         (op_ == LogicOp::kAnd ? " AND " : " OR ") + r_->ToString() + ")";
}

Result<Value> IsNullExpr::EvaluateRow(const RowBatch& b, size_t row,
                                      const ExecContext& ctx) const {
  DASHDB_ASSIGN_OR_RETURN(Value v, child_->EvaluateRow(b, row, ctx));
  v = ApplyDialectStringSemantics(std::move(v), ctx);
  return Value::Boolean(negate_ ? !v.is_null() : v.is_null());
}

Result<Value> CastExpr::EvaluateRow(const RowBatch& b, size_t row,
                                    const ExecContext& ctx) const {
  DASHDB_ASSIGN_OR_RETURN(Value v, child_->EvaluateRow(b, row, ctx));
  return v.CastTo(out_type_);
}

bool LikeExpr::Match(const std::string& s, const std::string& p) {
  // Iterative wildcard match with backtracking on '%'.
  size_t si = 0, pi = 0, star_p = std::string::npos, star_s = 0;
  while (si < s.size()) {
    if (pi < p.size() && (p[pi] == '_' || p[pi] == s[si])) {
      ++si;
      ++pi;
    } else if (pi < p.size() && p[pi] == '%') {
      star_p = pi++;
      star_s = si;
    } else if (star_p != std::string::npos) {
      pi = star_p + 1;
      si = ++star_s;
    } else {
      return false;
    }
  }
  while (pi < p.size() && p[pi] == '%') ++pi;
  return pi == p.size();
}

Result<Value> LikeExpr::EvaluateRow(const RowBatch& b, size_t row,
                                    const ExecContext& ctx) const {
  DASHDB_ASSIGN_OR_RETURN(Value v, child_->EvaluateRow(b, row, ctx));
  v = ApplyDialectStringSemantics(std::move(v), ctx);
  if (v.is_null()) return Value::Null(TypeId::kBoolean);
  DASHDB_ASSIGN_OR_RETURN(Value s, v.CastTo(TypeId::kVarchar));
  bool m = Match(s.AsString(), pattern_);
  return Value::Boolean(negate_ ? !m : m);
}

Result<Value> InExpr::EvaluateRow(const RowBatch& b, size_t row,
                                  const ExecContext& ctx) const {
  DASHDB_ASSIGN_OR_RETURN(Value v, child_->EvaluateRow(b, row, ctx));
  if (v.is_null()) return Value::Null(TypeId::kBoolean);
  bool saw_null = false;
  for (const Value& item : list_) {
    if (item.is_null()) {
      saw_null = true;
      continue;
    }
    if (v.Compare(item) == 0) return Value::Boolean(!negate_);
  }
  if (saw_null) return Value::Null(TypeId::kBoolean);
  return Value::Boolean(negate_);
}

std::string InExpr::ToString() const {
  std::string out = child_->ToString() + (negate_ ? " NOT IN (" : " IN (");
  for (size_t i = 0; i < list_.size(); ++i) {
    if (i) out += ", ";
    out += list_[i].ToString();
  }
  return out + ")";
}

Result<Value> CaseExpr::EvaluateRow(const RowBatch& b, size_t row,
                                    const ExecContext& ctx) const {
  for (const auto& [cond, then] : whens_) {
    DASHDB_ASSIGN_OR_RETURN(Value c, cond->EvaluateRow(b, row, ctx));
    if (!c.is_null() && c.AsBool()) {
      DASHDB_ASSIGN_OR_RETURN(Value v, then->EvaluateRow(b, row, ctx));
      if (v.is_null()) return Value::Null(out_type_);
      return v.CastTo(out_type_);
    }
  }
  if (else_) {
    DASHDB_ASSIGN_OR_RETURN(Value v, else_->EvaluateRow(b, row, ctx));
    if (v.is_null()) return Value::Null(out_type_);
    return v.CastTo(out_type_);
  }
  return Value::Null(out_type_);
}

Result<Value> FuncExpr::EvaluateRow(const RowBatch& b, size_t row,
                                    const ExecContext& ctx) const {
  std::vector<Value> args;
  args.reserve(args_.size());
  for (const auto& a : args_) {
    DASHDB_ASSIGN_OR_RETURN(Value v, a->EvaluateRow(b, row, ctx));
    args.push_back(ApplyDialectStringSemantics(std::move(v), ctx));
  }
  DASHDB_ASSIGN_OR_RETURN(Value out, fn_(args, ctx));
  return ApplyDialectStringSemantics(std::move(out), ctx);
}

std::string FuncExpr::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i) out += ", ";
    out += args_[i]->ToString();
  }
  return out + ")";
}

Result<std::vector<uint32_t>> EvalFilter(const Expr& expr,
                                         const RowBatch& batch,
                                         const ExecContext& ctx) {
  std::vector<uint32_t> out;
  const size_t n = batch.num_rows();
  for (size_t i = 0; i < n; ++i) {
    DASHDB_ASSIGN_OR_RETURN(Value v, expr.EvaluateRow(batch, i, ctx));
    if (!v.is_null() && v.AsBool()) out.push_back(static_cast<uint32_t>(i));
  }
  return out;
}

}  // namespace dashdb
