#include "exec/expr.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <numeric>

#include "common/metrics.h"
#include "compression/dict_codes.h"

namespace dashdb {
namespace {

inline size_t RowAt(const uint32_t* sel, size_t i) { return sel ? sel[i] : i; }

/// Every compare/LIKE that ran on packed codes instead of decoded values.
void CountDictCodeFilter() {
  static Counter* c =
      MetricRegistry::Global().GetCounter("exec.dict_code_filters");
  c->Add(1);
}

/// Word-wise OR of two kernel inputs' null bitmaps (both dense over k rows;
/// a vector with nulls always has a bitmap covering all its rows).
BitVector CombineNulls(const ColumnVector& a, const ColumnVector& b) {
  if (!a.has_nulls()) return b.has_nulls() ? b.nulls() : BitVector{};
  BitVector out = a.nulls();
  if (b.has_nulls()) out.Or(b.nulls());
  return out;
}

/// Truthiness of non-null row i, matching Value::AsBool on the boxed value.
inline bool TruthyAt(const ColumnVector& v, size_t i) {
  if (v.type() == TypeId::kDouble) return v.doubles()[i] != 0;
  if (v.type() == TypeId::kVarchar) return v.GetValue(i).AsBool();
  return v.ints()[i] != 0;
}

inline bool ApplyCmp(CmpOp op, int c) {
  switch (op) {
    case CmpOp::kEq: return c == 0;
    case CmpOp::kNe: return c != 0;
    case CmpOp::kLt: return c < 0;
    case CmpOp::kLe: return c <= 0;
    case CmpOp::kGt: return c > 0;
    case CmpOp::kGe: return c >= 0;
  }
  return false;
}

inline CmpOp FlipCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return CmpOp::kGt;
    case CmpOp::kLe: return CmpOp::kGe;
    case CmpOp::kGt: return CmpOp::kLt;
    case CmpOp::kGe: return CmpOp::kLe;
    default: return op;
  }
}

/// Vector-level CastTo, mirroring Value::CastTo per element. Fast paths
/// cover the payload-copy families; everything else (varchar parses,
/// date/timestamp unit conversions) boxes per row, which also reproduces
/// the row path's error behavior exactly.
Result<ColumnVector> CastVector(const ColumnVector& in, size_t k, TypeId to) {
  const TypeId ft = in.type();
  if (ft == to) return in;
  BitVector nulls;
  if (in.has_nulls()) nulls = in.nulls();
  if (IsIntegerBacked(ft) && IsIntegerBacked(to)) {
    // Unit-converting pairs fall through to the boxed loop below.
    if (!((ft == TypeId::kTimestamp && to == TypeId::kDate) ||
          (ft == TypeId::kDate && to == TypeId::kTimestamp))) {
      std::vector<int64_t> res(in.ints().begin(), in.ints().begin() + k);
      if (to == TypeId::kBoolean) {
        for (auto& v : res) v = v != 0;
      } else if (to == TypeId::kDate) {
        for (auto& v : res) v = static_cast<int32_t>(v);
      }
      return ColumnVector::FromInts(to, std::move(res), std::move(nulls));
    }
  } else if (ft == TypeId::kDouble &&
             (to == TypeId::kInt32 || to == TypeId::kInt64 ||
              to == TypeId::kDecimal || to == TypeId::kBoolean)) {
    std::vector<int64_t> res(k);
    for (size_t i = 0; i < k; ++i) {
      res[i] = to == TypeId::kBoolean ? in.doubles()[i] != 0
                                      : llround(in.doubles()[i]);
    }
    return ColumnVector::FromInts(to, std::move(res), std::move(nulls));
  } else if (IsIntegerBacked(ft) && to == TypeId::kDouble) {
    std::vector<double> res(k);
    for (size_t i = 0; i < k; ++i) {
      res[i] = static_cast<double>(in.ints()[i]);
    }
    return ColumnVector::FromDoubles(std::move(res), std::move(nulls));
  }
  ColumnVector out(to);
  out.Reserve(k);
  for (size_t i = 0; i < k; ++i) {
    DASHDB_ASSIGN_OR_RETURN(Value v, in.GetValue(i).CastTo(to));
    out.AppendValue(v);
  }
  return out;
}

}  // namespace

Result<ColumnVector> EvaluateRowAtATime(const Expr& expr,
                                        const RowBatch& batch,
                                        const uint32_t* sel, size_t k,
                                        const ExecContext& ctx) {
  ColumnVector out(expr.out_type());
  out.Reserve(k);
  for (size_t i = 0; i < k; ++i) {
    DASHDB_ASSIGN_OR_RETURN(Value v,
                            expr.EvaluateRow(batch, RowAt(sel, i), ctx));
    if (!v.is_null() && v.type() != expr.out_type()) {
      DASHDB_ASSIGN_OR_RETURN(v, v.CastTo(expr.out_type()));
    }
    out.AppendValue(v);
  }
  return out;
}

Result<ColumnVector> Expr::EvaluateSel(const RowBatch& batch,
                                       const uint32_t* sel, size_t k,
                                       const ExecContext& ctx) const {
  return EvaluateRowAtATime(*this, batch, sel, k, ctx);
}

Result<Value> ColumnRefExpr::EvaluateRow(const RowBatch& b, size_t row,
                                         const ExecContext&) const {
  if (index_ < 0 || static_cast<size_t>(index_) >= b.columns.size()) {
    return Status::Internal("column ref out of range");
  }
  return b.columns[index_].GetValue(row);
}

Result<ColumnVector> ColumnRefExpr::EvaluateSel(const RowBatch& b,
                                                const uint32_t* sel, size_t k,
                                                const ExecContext&) const {
  if (index_ < 0 || static_cast<size_t>(index_) >= b.columns.size()) {
    return Status::Internal("column ref out of range");
  }
  const ColumnVector& src = b.columns[index_];
  if (!sel && k == src.size()) return src;  // keeps any attached dict codes
  ColumnVector out(src.type());
  if (!sel) {
    out.Reserve(k);
    for (size_t i = 0; i < k; ++i) out.AppendFrom(src, i);
  } else {
    out.Gather(src, sel, k);
  }
  return out;
}

Result<ColumnVector> LiteralExpr::EvaluateSel(const RowBatch&, const uint32_t*,
                                              size_t k,
                                              const ExecContext&) const {
  if (value_.is_null()) {
    ColumnVector out(out_type_);
    out.Reserve(k);
    for (size_t i = 0; i < k; ++i) out.AppendNull();
    return out;
  }
  if (out_type_ == TypeId::kDouble) {
    return ColumnVector::FromDoubles(std::vector<double>(k, value_.AsDouble()));
  }
  if (out_type_ == TypeId::kVarchar) {
    return ColumnVector::FromStrings(
        std::vector<std::string>(k, value_.AsString()));
  }
  return ColumnVector::FromInts(out_type_,
                                std::vector<int64_t>(k, value_.AsInt()));
}

Value ApplyDialectStringSemantics(Value v, const ExecContext& ctx) {
  if (ctx.EmptyStringIsNull() && !v.is_null() &&
      v.type() == TypeId::kVarchar && v.AsString().empty()) {
    return Value::Null(TypeId::kVarchar);
  }
  return v;
}

Result<Value> ArithExpr::EvaluateRow(const RowBatch& b, size_t row,
                                     const ExecContext& ctx) const {
  DASHDB_ASSIGN_OR_RETURN(Value l, l_->EvaluateRow(b, row, ctx));
  DASHDB_ASSIGN_OR_RETURN(Value r, r_->EvaluateRow(b, row, ctx));
  if (l.is_null() || r.is_null()) return Value::Null(out_type_);
  if (op_ == ArithOp::kConcat) {
    DASHDB_ASSIGN_OR_RETURN(Value ls, l.CastTo(TypeId::kVarchar));
    DASHDB_ASSIGN_OR_RETURN(Value rs, r.CastTo(TypeId::kVarchar));
    return ApplyDialectStringSemantics(
        Value::String(ls.AsString() + rs.AsString()), ctx);
  }
  // DATE +/- integer day arithmetic. Integer ops wrap (two's complement)
  // rather than invoking signed-overflow UB, matching the kernels.
  if (l.type() == TypeId::kDate && r.type() != TypeId::kDate &&
      (op_ == ArithOp::kAdd || op_ == ArithOp::kSub)) {
    uint64_t a = static_cast<uint64_t>(l.AsInt());
    uint64_t c = static_cast<uint64_t>(r.AsInt());
    int64_t days = static_cast<int64_t>(op_ == ArithOp::kAdd ? a + c : a - c);
    return Value::Date(static_cast<int32_t>(days));
  }
  if (l.type() == TypeId::kDate && r.type() == TypeId::kDate &&
      op_ == ArithOp::kSub) {
    return Value::Int64(static_cast<int64_t>(
        static_cast<uint64_t>(l.AsInt()) - static_cast<uint64_t>(r.AsInt())));
  }
  bool use_double = l.type() == TypeId::kDouble ||
                    r.type() == TypeId::kDouble || op_ == ArithOp::kDiv;
  if (use_double) {
    double a = l.AsDouble(), c = r.AsDouble();
    switch (op_) {
      case ArithOp::kAdd: return Value::Double(a + c);
      case ArithOp::kSub: return Value::Double(a - c);
      case ArithOp::kMul: return Value::Double(a * c);
      case ArithOp::kDiv:
        if (c == 0) return Status::InvalidArgument("division by zero");
        return Value::Double(a / c);
      case ArithOp::kMod:
        if (c == 0) return Status::InvalidArgument("division by zero");
        return Value::Double(std::fmod(a, c));
      default: break;
    }
  }
  uint64_t a = static_cast<uint64_t>(l.AsInt());
  uint64_t c = static_cast<uint64_t>(r.AsInt());
  switch (op_) {
    case ArithOp::kAdd: return Value::Int64(static_cast<int64_t>(a + c));
    case ArithOp::kSub: return Value::Int64(static_cast<int64_t>(a - c));
    case ArithOp::kMul: return Value::Int64(static_cast<int64_t>(a * c));
    case ArithOp::kMod: {
      int64_t d = static_cast<int64_t>(c);
      if (d == 0) return Status::InvalidArgument("division by zero");
      if (d == -1) return Value::Int64(0);  // avoid INT64_MIN % -1 trap
      return Value::Int64(static_cast<int64_t>(a) % d);
    }
    default: break;
  }
  return Status::Internal("unhandled arith op");
}

Result<ColumnVector> ArithExpr::EvaluateSel(const RowBatch& b,
                                            const uint32_t* sel, size_t k,
                                            const ExecContext& ctx) const {
  const TypeId lt = l_->out_type(), rt = r_->out_type();
  if (op_ == ArithOp::kConcat) {
    if (lt != TypeId::kVarchar || rt != TypeId::kVarchar) {
      return EvaluateRowAtATime(*this, b, sel, k, ctx);
    }
    DASHDB_ASSIGN_OR_RETURN(ColumnVector lv, l_->EvaluateSel(b, sel, k, ctx));
    DASHDB_ASSIGN_OR_RETURN(ColumnVector rv, r_->EvaluateSel(b, sel, k, ctx));
    const bool oracle = ctx.EmptyStringIsNull();
    ColumnVector out(TypeId::kVarchar);
    out.Reserve(k);
    for (size_t i = 0; i < k; ++i) {
      if (lv.IsNull(i) || rv.IsNull(i)) {
        out.AppendNull();
        continue;
      }
      std::string s = lv.strings()[i] + rv.strings()[i];
      if (oracle && s.empty()) {
        out.AppendNull();
      } else {
        out.AppendString(std::move(s));
      }
    }
    return out;
  }
  // Shapes whose row semantics the numeric kernels cannot mirror: varchar
  // operands (cast-and-parse) and DATE ± DOUBLE (AsInt on a double payload).
  if (lt == TypeId::kVarchar || rt == TypeId::kVarchar ||
      (lt == TypeId::kDate && rt == TypeId::kDouble &&
       (op_ == ArithOp::kAdd || op_ == ArithOp::kSub))) {
    return EvaluateRowAtATime(*this, b, sel, k, ctx);
  }
  const bool date_int = lt == TypeId::kDate && rt != TypeId::kDate &&
                        (op_ == ArithOp::kAdd || op_ == ArithOp::kSub);
  const bool use_double = !date_int && (lt == TypeId::kDouble ||
                                        rt == TypeId::kDouble ||
                                        op_ == ArithOp::kDiv);
  if (use_double ? out_type_ != TypeId::kDouble : !IsIntegerBacked(out_type_)) {
    return EvaluateRowAtATime(*this, b, sel, k, ctx);
  }
  if (date_int && out_type_ != TypeId::kDate) {
    return EvaluateRowAtATime(*this, b, sel, k, ctx);
  }
  DASHDB_ASSIGN_OR_RETURN(ColumnVector lv, l_->EvaluateSel(b, sel, k, ctx));
  DASHDB_ASSIGN_OR_RETURN(ColumnVector rv, r_->EvaluateSel(b, sel, k, ctx));
  BitVector nulls = CombineNulls(lv, rv);
  auto is_null = [&](size_t i) { return nulls.size() > 0 && nulls.Get(i); };
  if (use_double) {
    const bool ld = lv.type() == TypeId::kDouble;
    const bool rd = rv.type() == TypeId::kDouble;
    auto la = [&](size_t i) {
      return ld ? lv.doubles()[i] : static_cast<double>(lv.ints()[i]);
    };
    auto ra = [&](size_t i) {
      return rd ? rv.doubles()[i] : static_cast<double>(rv.ints()[i]);
    };
    std::vector<double> res(k, 0.0);
    switch (op_) {
      case ArithOp::kAdd:
        for (size_t i = 0; i < k; ++i) res[i] = la(i) + ra(i);
        break;
      case ArithOp::kSub:
        for (size_t i = 0; i < k; ++i) res[i] = la(i) - ra(i);
        break;
      case ArithOp::kMul:
        for (size_t i = 0; i < k; ++i) res[i] = la(i) * ra(i);
        break;
      case ArithOp::kDiv:
      case ArithOp::kMod:
        for (size_t i = 0; i < k; ++i) {
          if (is_null(i)) continue;
          double c = ra(i);
          if (c == 0) return Status::InvalidArgument("division by zero");
          res[i] = op_ == ArithOp::kDiv ? la(i) / c : std::fmod(la(i), c);
        }
        break;
      default: return Status::Internal("unhandled arith op");
    }
    return ColumnVector::FromDoubles(std::move(res), std::move(nulls));
  }
  const auto& la = lv.ints();
  const auto& ra = rv.ints();
  std::vector<int64_t> res(k, 0);
  switch (op_) {
    case ArithOp::kAdd:
      for (size_t i = 0; i < k; ++i) {
        res[i] = static_cast<int64_t>(static_cast<uint64_t>(la[i]) +
                                      static_cast<uint64_t>(ra[i]));
      }
      break;
    case ArithOp::kSub:
      for (size_t i = 0; i < k; ++i) {
        res[i] = static_cast<int64_t>(static_cast<uint64_t>(la[i]) -
                                      static_cast<uint64_t>(ra[i]));
      }
      break;
    case ArithOp::kMul:
      for (size_t i = 0; i < k; ++i) {
        res[i] = static_cast<int64_t>(static_cast<uint64_t>(la[i]) *
                                      static_cast<uint64_t>(ra[i]));
      }
      break;
    case ArithOp::kMod:
      for (size_t i = 0; i < k; ++i) {
        if (is_null(i)) continue;
        int64_t d = ra[i];
        if (d == 0) return Status::InvalidArgument("division by zero");
        res[i] = d == -1 ? 0 : la[i] % d;
      }
      break;
    default: return Status::Internal("unhandled arith op");
  }
  if (out_type_ == TypeId::kDate) {
    for (auto& v : res) v = static_cast<int32_t>(v);
  } else if (out_type_ == TypeId::kBoolean) {
    for (auto& v : res) v = v != 0;
  }
  return ColumnVector::FromInts(out_type_, std::move(res), std::move(nulls));
}

std::string ArithExpr::ToString() const {
  const char* ops[] = {"+", "-", "*", "/", "%", "||"};
  return "(" + l_->ToString() + " " + ops[static_cast<int>(op_)] + " " +
         r_->ToString() + ")";
}

Result<Value> CompareExpr::EvaluateRow(const RowBatch& b, size_t row,
                                       const ExecContext& ctx) const {
  DASHDB_ASSIGN_OR_RETURN(Value l, l_->EvaluateRow(b, row, ctx));
  DASHDB_ASSIGN_OR_RETURN(Value r, r_->EvaluateRow(b, row, ctx));
  l = ApplyDialectStringSemantics(std::move(l), ctx);
  r = ApplyDialectStringSemantics(std::move(r), ctx);
  if (l.is_null() || r.is_null()) return Value::Null(TypeId::kBoolean);
  return Value::Boolean(ApplyCmp(op_, l.Compare(r)));
}

CompareExpr::DictPlan CompareExpr::PlanFor(const DictCodes& dc) const {
  const void* key = dc.int_dict ? static_cast<const void*>(dc.int_dict.get())
                                : static_cast<const void*>(dc.str_dict.get());
  std::lock_guard<std::mutex> g(dict_mu_);
  for (const auto& p : dict_plans_) {
    if (p.dict == key) return p;
  }
  DictPlan p;
  p.dict = key;
  // Which side is the literal decides the effective operator direction.
  const auto* lit = dynamic_cast<const LiteralExpr*>(r_.get());
  CmpOp eff = op_;
  if (!lit) {
    lit = dynamic_cast<const LiteralExpr*>(l_.get());
    eff = FlipCmp(op_);
  }
  auto compile = [&](auto* dict, const auto& v) {
    if (!dict->is_single_partition()) return;
    p.usable = true;
    switch (eff) {
      case CmpOp::kEq:
      case CmpOp::kNe: {
        auto e = dict->Encode(v);
        if (e) {
          p.kind = DictPlan::Kind::kCmp;
          p.op = eff;
          p.code = e->code;
        } else {
          p.kind = eff == CmpOp::kEq ? DictPlan::Kind::kNone
                                     : DictPlan::Kind::kAll;
        }
        break;
      }
      case CmpOp::kLt:
      case CmpOp::kLe: {
        CodeRange r = dict->RangeFor(0, nullptr, true, &v, eff == CmpOp::kLe);
        if (r.empty()) {
          p.kind = DictPlan::Kind::kNone;
        } else {
          p.kind = DictPlan::Kind::kCmp;
          p.op = CmpOp::kLe;
          p.code = r.hi;
        }
        break;
      }
      case CmpOp::kGt:
      case CmpOp::kGe: {
        CodeRange r = dict->RangeFor(0, &v, eff == CmpOp::kGe, nullptr, true);
        if (r.empty()) {
          p.kind = DictPlan::Kind::kNone;
        } else {
          p.kind = DictPlan::Kind::kCmp;
          p.op = CmpOp::kGe;
          p.code = r.lo;
        }
        break;
      }
    }
  };
  if (lit && !lit->value().is_null()) {
    if (dc.int_dict && IsIntegerBacked(lit->value().type())) {
      int64_t v = lit->value().AsInt();
      compile(dc.int_dict.get(), v);
    } else if (dc.str_dict && lit->value().type() == TypeId::kVarchar) {
      p.str_has_empty = dc.str_dict->Encode(std::string()).has_value();
      const std::string& v = lit->value().AsString();
      compile(dc.str_dict.get(), v);
    }
  }
  dict_plans_.push_back(p);
  return p;
}

bool CompareExpr::DictMatch(const RowBatch& b, size_t n,
                            const ExecContext& ctx,
                            const ColumnVector** col_out,
                            BitVector* match) const {
  const auto* ref = dynamic_cast<const ColumnRefExpr*>(l_.get());
  const Expr* other = r_.get();
  if (!ref) {
    ref = dynamic_cast<const ColumnRefExpr*>(r_.get());
    other = l_.get();
  }
  if (!ref || !dynamic_cast<const LiteralExpr*>(other)) return false;
  const auto* lit = static_cast<const LiteralExpr*>(other);
  if (lit->value().is_null()) return false;
  if (ctx.EmptyStringIsNull() && lit->value().type() == TypeId::kVarchar &&
      lit->value().AsString().empty()) {
    return false;  // Oracle: empty literal is NULL → all-NULL result
  }
  if (ref->index() < 0 ||
      static_cast<size_t>(ref->index()) >= b.columns.size()) {
    return false;
  }
  const ColumnVector& col = b.columns[ref->index()];
  const DictCodes* dc = UsableDictCodes(col, n);
  if (!dc) return false;
  DictPlan plan = PlanFor(*dc);
  if (!plan.usable) return false;
  if (ctx.EmptyStringIsNull() && plan.str_has_empty) {
    return false;  // rows holding "" must evaluate as NULL under Oracle
  }
  match->Resize(n);
  switch (plan.kind) {
    case DictPlan::Kind::kNone: break;
    case DictPlan::Kind::kAll: match->SetAll(); break;
    case DictPlan::Kind::kCmp:
      SwarCompare(dc->codes, n, plan.op, plan.code, match);
      break;
  }
  CountDictCodeFilter();
  *col_out = &col;
  return true;
}

bool CompareExpr::TryFilterSel(const RowBatch& b, const uint32_t* sel,
                               size_t k, const ExecContext& ctx,
                               std::vector<uint32_t>* out) const {
  const ColumnVector* col = nullptr;
  BitVector match;
  if (!DictMatch(b, b.num_rows(), ctx, &col, &match)) return false;
  for (size_t i = 0; i < k; ++i) {
    size_t r = RowAt(sel, i);
    if (!col->IsNull(r) && match.Get(r)) {
      out->push_back(static_cast<uint32_t>(r));
    }
  }
  return true;
}

Result<ColumnVector> CompareExpr::EvaluateSel(const RowBatch& b,
                                              const uint32_t* sel, size_t k,
                                              const ExecContext& ctx) const {
  const ColumnVector* col = nullptr;
  BitVector match;
  if (DictMatch(b, b.num_rows(), ctx, &col, &match)) {
    std::vector<int64_t> res(k, 0);
    BitVector nulls;
    if (col->has_nulls()) nulls.Resize(k);
    for (size_t i = 0; i < k; ++i) {
      size_t r = RowAt(sel, i);
      if (col->IsNull(r)) {
        nulls.Set(i);
      } else {
        res[i] = match.Get(r);
      }
    }
    return ColumnVector::FromInts(TypeId::kBoolean, std::move(res),
                                  std::move(nulls));
  }
  DASHDB_ASSIGN_OR_RETURN(ColumnVector lv, l_->EvaluateSel(b, sel, k, ctx));
  DASHDB_ASSIGN_OR_RETURN(ColumnVector rv, r_->EvaluateSel(b, sel, k, ctx));
  const TypeId lt = lv.type(), rt = rv.type();
  std::vector<int64_t> res(k, 0);
  if (lt == TypeId::kVarchar && rt == TypeId::kVarchar) {
    const bool oracle = ctx.EmptyStringIsNull();
    BitVector nulls(k);
    bool any_null = false;
    for (size_t i = 0; i < k; ++i) {
      if (lv.IsNull(i) || rv.IsNull(i) ||
          (oracle && (lv.strings()[i].empty() || rv.strings()[i].empty()))) {
        nulls.Set(i);
        any_null = true;
        continue;
      }
      const std::string& a = lv.strings()[i];
      const std::string& c = rv.strings()[i];
      res[i] = ApplyCmp(op_, a < c ? -1 : (a == c ? 0 : 1));
    }
    return ColumnVector::FromInts(TypeId::kBoolean, std::move(res),
                                  any_null ? std::move(nulls) : BitVector{});
  }
  if (lt == TypeId::kVarchar || rt == TypeId::kVarchar) {
    // Cross-family display-string comparison: row fallback.
    return EvaluateRowAtATime(*this, b, sel, k, ctx);
  }
  BitVector nulls = CombineNulls(lv, rv);
  if (lt == TypeId::kDouble || rt == TypeId::kDouble) {
    const bool ld = lt == TypeId::kDouble, rd = rt == TypeId::kDouble;
    for (size_t i = 0; i < k; ++i) {
      double a = ld ? lv.doubles()[i] : static_cast<double>(lv.ints()[i]);
      double c = rd ? rv.doubles()[i] : static_cast<double>(rv.ints()[i]);
      res[i] = ApplyCmp(op_, a < c ? -1 : (a == c ? 0 : 1));
    }
  } else {
    const auto& a = lv.ints();
    const auto& c = rv.ints();
    for (size_t i = 0; i < k; ++i) {
      res[i] = ApplyCmp(op_, a[i] < c[i] ? -1 : (a[i] == c[i] ? 0 : 1));
    }
  }
  return ColumnVector::FromInts(TypeId::kBoolean, std::move(res),
                                std::move(nulls));
}

std::string CompareExpr::ToString() const {
  const char* ops[] = {"=", "<>", "<", "<=", ">", ">="};
  return "(" + l_->ToString() + " " + ops[static_cast<int>(op_)] + " " +
         r_->ToString() + ")";
}

Result<Value> LogicExpr::EvaluateRow(const RowBatch& b, size_t row,
                                     const ExecContext& ctx) const {
  DASHDB_ASSIGN_OR_RETURN(Value l, l_->EvaluateRow(b, row, ctx));
  if (op_ == LogicOp::kNot) {
    if (l.is_null()) return Value::Null(TypeId::kBoolean);
    return Value::Boolean(!l.AsBool());
  }
  // Three-valued logic with short circuit.
  bool l_null = l.is_null();
  bool l_true = !l_null && l.AsBool();
  if (op_ == LogicOp::kAnd && !l_null && !l_true) return Value::Boolean(false);
  if (op_ == LogicOp::kOr && l_true) return Value::Boolean(true);
  DASHDB_ASSIGN_OR_RETURN(Value r, r_->EvaluateRow(b, row, ctx));
  bool r_null = r.is_null();
  bool r_true = !r_null && r.AsBool();
  if (op_ == LogicOp::kAnd) {
    if (!r_null && !r_true) return Value::Boolean(false);
    if (l_null || r_null) return Value::Null(TypeId::kBoolean);
    return Value::Boolean(true);
  }
  if (r_true) return Value::Boolean(true);
  if (l_null || r_null) return Value::Null(TypeId::kBoolean);
  return Value::Boolean(false);
}

Result<ColumnVector> LogicExpr::EvaluateSel(const RowBatch& b,
                                            const uint32_t* sel, size_t k,
                                            const ExecContext& ctx) const {
  DASHDB_ASSIGN_OR_RETURN(ColumnVector lv, l_->EvaluateSel(b, sel, k, ctx));
  if (op_ == LogicOp::kNot) {
    std::vector<int64_t> res(k, 0);
    BitVector nulls;
    if (lv.has_nulls()) nulls = lv.nulls();
    for (size_t i = 0; i < k; ++i) {
      if (!lv.IsNull(i)) res[i] = !TruthyAt(lv, i);
    }
    return ColumnVector::FromInts(TypeId::kBoolean, std::move(res),
                                  std::move(nulls));
  }
  // Short-circuit AND/OR: the right side evaluates only on the sub-selection
  // of rows the left side leaves undecided, preserving the row path's
  // evaluate-r-only-when-needed semantics (and its error behavior).
  const bool is_and = op_ == LogicOp::kAnd;
  std::vector<uint32_t> need;
  for (size_t i = 0; i < k; ++i) {
    bool ln = lv.IsNull(i);
    bool lt = !ln && TruthyAt(lv, i);
    bool decided = is_and ? (!ln && !lt) : lt;
    if (!decided) need.push_back(static_cast<uint32_t>(RowAt(sel, i)));
  }
  ColumnVector rv(TypeId::kBoolean);
  if (!need.empty()) {
    DASHDB_ASSIGN_OR_RETURN(
        rv, r_->EvaluateSel(b, need.data(), need.size(), ctx));
  }
  std::vector<int64_t> res(k, 0);
  BitVector nulls(k);
  bool any_null = false;
  size_t j = 0;
  for (size_t i = 0; i < k; ++i) {
    bool ln = lv.IsNull(i);
    bool lt = !ln && TruthyAt(lv, i);
    if (is_and ? (!ln && !lt) : lt) {
      res[i] = !is_and;
      continue;
    }
    bool rn = rv.IsNull(j);
    bool rt = !rn && TruthyAt(rv, j);
    ++j;
    if (is_and) {
      if (!rn && !rt) {
        res[i] = 0;
      } else if (ln || rn) {
        nulls.Set(i);
        any_null = true;
      } else {
        res[i] = 1;
      }
    } else {
      if (rt) {
        res[i] = 1;
      } else if (ln || rn) {
        nulls.Set(i);
        any_null = true;
      } else {
        res[i] = 0;
      }
    }
  }
  return ColumnVector::FromInts(TypeId::kBoolean, std::move(res),
                                any_null ? std::move(nulls) : BitVector{});
}

std::string LogicExpr::ToString() const {
  if (op_ == LogicOp::kNot) return "NOT " + l_->ToString();
  return "(" + l_->ToString() +
         (op_ == LogicOp::kAnd ? " AND " : " OR ") + r_->ToString() + ")";
}

Result<Value> IsNullExpr::EvaluateRow(const RowBatch& b, size_t row,
                                      const ExecContext& ctx) const {
  DASHDB_ASSIGN_OR_RETURN(Value v, child_->EvaluateRow(b, row, ctx));
  v = ApplyDialectStringSemantics(std::move(v), ctx);
  return Value::Boolean(negate_ ? !v.is_null() : v.is_null());
}

Result<ColumnVector> IsNullExpr::EvaluateSel(const RowBatch& b,
                                             const uint32_t* sel, size_t k,
                                             const ExecContext& ctx) const {
  DASHDB_ASSIGN_OR_RETURN(ColumnVector cv, child_->EvaluateSel(b, sel, k, ctx));
  const bool empty_is_null =
      ctx.EmptyStringIsNull() && cv.type() == TypeId::kVarchar;
  std::vector<int64_t> res(k);
  for (size_t i = 0; i < k; ++i) {
    bool n = cv.IsNull(i) || (empty_is_null && cv.strings()[i].empty());
    res[i] = negate_ ? !n : n;
  }
  return ColumnVector::FromInts(TypeId::kBoolean, std::move(res));
}

Result<Value> CastExpr::EvaluateRow(const RowBatch& b, size_t row,
                                    const ExecContext& ctx) const {
  DASHDB_ASSIGN_OR_RETURN(Value v, child_->EvaluateRow(b, row, ctx));
  return v.CastTo(out_type_);
}

Result<ColumnVector> CastExpr::EvaluateSel(const RowBatch& b,
                                           const uint32_t* sel, size_t k,
                                           const ExecContext& ctx) const {
  DASHDB_ASSIGN_OR_RETURN(ColumnVector cv, child_->EvaluateSel(b, sel, k, ctx));
  return CastVector(cv, k, out_type_);
}

bool LikeExpr::Match(const std::string& s, const std::string& p) {
  // Iterative wildcard match with backtracking on '%'.
  size_t si = 0, pi = 0, star_p = std::string::npos, star_s = 0;
  while (si < s.size()) {
    if (pi < p.size() && (p[pi] == '_' || p[pi] == s[si])) {
      ++si;
      ++pi;
    } else if (pi < p.size() && p[pi] == '%') {
      star_p = pi++;
      star_s = si;
    } else if (star_p != std::string::npos) {
      pi = star_p + 1;
      si = ++star_s;
    } else {
      return false;
    }
  }
  while (pi < p.size() && p[pi] == '%') ++pi;
  return pi == p.size();
}

LikeExpr::LikeExpr(ExprPtr child, std::string pattern, bool negate)
    : Expr(TypeId::kBoolean),
      child_(std::move(child)),
      pattern_(std::move(pattern)),
      negate_(negate) {
  size_t wc = pattern_.find_first_of("%_");
  if (wc == std::string::npos) {
    pat_kind_ = PatKind::kExact;
    prefix_ = pattern_;
  } else if (wc + 1 == pattern_.size() && pattern_[wc] == '%') {
    pat_kind_ = PatKind::kPrefix;
    prefix_ = pattern_.substr(0, wc);
  }
}

bool LikeExpr::MatchOne(const std::string& s) const {
  switch (pat_kind_) {
    case PatKind::kExact: return s == prefix_;
    case PatKind::kPrefix:
      return s.size() >= prefix_.size() &&
             s.compare(0, prefix_.size(), prefix_) == 0;
    case PatKind::kGeneral: return Match(s, pattern_);
  }
  return false;
}

Result<Value> LikeExpr::EvaluateRow(const RowBatch& b, size_t row,
                                    const ExecContext& ctx) const {
  DASHDB_ASSIGN_OR_RETURN(Value v, child_->EvaluateRow(b, row, ctx));
  v = ApplyDialectStringSemantics(std::move(v), ctx);
  if (v.is_null()) return Value::Null(TypeId::kBoolean);
  DASHDB_ASSIGN_OR_RETURN(Value s, v.CastTo(TypeId::kVarchar));
  bool m = Match(s.AsString(), pattern_);
  return Value::Boolean(negate_ ? !m : m);
}

Result<ColumnVector> LikeExpr::EvaluateSel(const RowBatch& b,
                                           const uint32_t* sel, size_t k,
                                           const ExecContext& ctx) const {
  if (child_->out_type() != TypeId::kVarchar) {
    return EvaluateRowAtATime(*this, b, sel, k, ctx);
  }
  const size_t n = b.num_rows();
  const auto* ref = dynamic_cast<const ColumnRefExpr*>(child_.get());
  if (ref && pat_kind_ != PatKind::kGeneral && ref->index() >= 0 &&
      static_cast<size_t>(ref->index()) < b.columns.size()) {
    const ColumnVector& col = b.columns[ref->index()];
    const DictCodes* dc = UsableDictCodes(col, n);
    if (dc && dc->str_dict && dc->str_dict->is_single_partition() &&
        !(ctx.EmptyStringIsNull() &&
          dc->str_dict->Encode(std::string()).has_value())) {
      // Exact patterns encode to one code; prefixes to [prefix, next-prefix)
      // — both bands on the order-preserving single-partition dict.
      bool all = false;
      CodeRange r = CodeRange::Empty();
      if (pat_kind_ == PatKind::kExact) {
        auto e = dc->str_dict->Encode(prefix_);
        if (e) r = CodeRange{e->code, e->code};
      } else if (prefix_.empty()) {
        all = true;  // LIKE '%'
      } else {
        std::string hi = prefix_;
        while (!hi.empty() && static_cast<unsigned char>(hi.back()) == 0xFF) {
          hi.pop_back();
        }
        if (hi.empty()) {
          r = dc->str_dict->RangeFor(0, &prefix_, true, nullptr, true);
        } else {
          hi.back() = static_cast<char>(hi.back() + 1);
          r = dc->str_dict->RangeFor(0, &prefix_, true, &hi, false);
        }
      }
      BitVector m(n);
      if (all) {
        m.SetAll();
      } else if (!r.empty()) {
        SwarBetween(dc->codes, n, r.lo, r.hi, &m);
      }
      CountDictCodeFilter();
      std::vector<int64_t> res(k, 0);
      BitVector nulls;
      if (col.has_nulls()) nulls.Resize(k);
      for (size_t i = 0; i < k; ++i) {
        size_t row = RowAt(sel, i);
        if (col.IsNull(row)) {
          nulls.Set(i);
        } else {
          res[i] = m.Get(row) != negate_;
        }
      }
      return ColumnVector::FromInts(TypeId::kBoolean, std::move(res),
                                    std::move(nulls));
    }
  }
  DASHDB_ASSIGN_OR_RETURN(ColumnVector cv, child_->EvaluateSel(b, sel, k, ctx));
  const bool oracle = ctx.EmptyStringIsNull();
  std::vector<int64_t> res(k, 0);
  BitVector nulls(k);
  bool any_null = false;
  for (size_t i = 0; i < k; ++i) {
    if (cv.IsNull(i) || (oracle && cv.strings()[i].empty())) {
      nulls.Set(i);
      any_null = true;
      continue;
    }
    res[i] = MatchOne(cv.strings()[i]) != negate_;
  }
  return ColumnVector::FromInts(TypeId::kBoolean, std::move(res),
                                any_null ? std::move(nulls) : BitVector{});
}

InExpr::InExpr(ExprPtr child, std::vector<Value> list, bool negate)
    : Expr(TypeId::kBoolean),
      child_(std::move(child)),
      list_(std::move(list)),
      negate_(negate) {
  const TypeId ct = child_->out_type();
  vector_ok_ = true;
  for (const Value& item : list_) {
    if (item.is_null()) {
      saw_null_ = true;
      continue;
    }
    if (ct == TypeId::kVarchar) {
      // Value::Compare of varchar vs anything compares display strings.
      str_set_.push_back(item.type() == TypeId::kVarchar ? item.AsString()
                                                         : item.ToString());
    } else if (ct == TypeId::kDouble) {
      if (item.type() == TypeId::kVarchar) {
        vector_ok_ = false;
        break;
      }
      double d = item.AsDouble();
      if (!std::isnan(d)) dbl_set_.push_back(d);  // NaN never compares equal
    } else if (IsIntegerBacked(ct)) {
      if (!IsIntegerBacked(item.type())) {
        // Double items promote the comparison to double (precision-lossy
        // for big ints); only the row path mirrors that faithfully.
        vector_ok_ = false;
        break;
      }
      int_set_.push_back(item.AsInt());
    } else {
      vector_ok_ = false;
      break;
    }
  }
  auto finish = [](auto& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  finish(int_set_);
  finish(dbl_set_);
  finish(str_set_);
}

Result<Value> InExpr::EvaluateRow(const RowBatch& b, size_t row,
                                  const ExecContext& ctx) const {
  DASHDB_ASSIGN_OR_RETURN(Value v, child_->EvaluateRow(b, row, ctx));
  if (v.is_null()) return Value::Null(TypeId::kBoolean);
  bool saw_null = false;
  for (const Value& item : list_) {
    if (item.is_null()) {
      saw_null = true;
      continue;
    }
    if (v.Compare(item) == 0) return Value::Boolean(!negate_);
  }
  if (saw_null) return Value::Null(TypeId::kBoolean);
  return Value::Boolean(negate_);
}

Result<ColumnVector> InExpr::EvaluateSel(const RowBatch& b,
                                         const uint32_t* sel, size_t k,
                                         const ExecContext& ctx) const {
  if (!vector_ok_) return EvaluateRowAtATime(*this, b, sel, k, ctx);
  DASHDB_ASSIGN_OR_RETURN(ColumnVector cv, child_->EvaluateSel(b, sel, k, ctx));
  const TypeId ct = cv.type();
  std::vector<int64_t> res(k, 0);
  BitVector nulls(k);
  bool any_null = false;
  for (size_t i = 0; i < k; ++i) {
    if (cv.IsNull(i)) {
      nulls.Set(i);
      any_null = true;
      continue;
    }
    bool hit;
    if (ct == TypeId::kVarchar) {
      hit = std::binary_search(str_set_.begin(), str_set_.end(),
                               cv.strings()[i]);
    } else if (ct == TypeId::kDouble) {
      // A NaN probe breaks binary_search's ordering contract (every `<` is
      // false, so any element reads as equal); NaN never matches anything.
      const double d = cv.doubles()[i];
      hit = !std::isnan(d) &&
            std::binary_search(dbl_set_.begin(), dbl_set_.end(), d);
    } else {
      hit = std::binary_search(int_set_.begin(), int_set_.end(), cv.ints()[i]);
    }
    if (hit) {
      res[i] = !negate_;
    } else if (saw_null_) {
      nulls.Set(i);
      any_null = true;
    } else {
      res[i] = negate_;
    }
  }
  return ColumnVector::FromInts(TypeId::kBoolean, std::move(res),
                                any_null ? std::move(nulls) : BitVector{});
}

std::string InExpr::ToString() const {
  std::string out = child_->ToString() + (negate_ ? " NOT IN (" : " IN (");
  for (size_t i = 0; i < list_.size(); ++i) {
    if (i) out += ", ";
    out += list_[i].ToString();
  }
  return out + ")";
}

Result<Value> CaseExpr::EvaluateRow(const RowBatch& b, size_t row,
                                    const ExecContext& ctx) const {
  for (const auto& [cond, then] : whens_) {
    DASHDB_ASSIGN_OR_RETURN(Value c, cond->EvaluateRow(b, row, ctx));
    if (!c.is_null() && c.AsBool()) {
      DASHDB_ASSIGN_OR_RETURN(Value v, then->EvaluateRow(b, row, ctx));
      if (v.is_null()) return Value::Null(out_type_);
      return v.CastTo(out_type_);
    }
  }
  if (else_) {
    DASHDB_ASSIGN_OR_RETURN(Value v, else_->EvaluateRow(b, row, ctx));
    if (v.is_null()) return Value::Null(out_type_);
    return v.CastTo(out_type_);
  }
  return Value::Null(out_type_);
}

Result<ColumnVector> CaseExpr::EvaluateSel(const RowBatch& b,
                                           const uint32_t* sel, size_t k,
                                           const ExecContext& ctx) const {
  // Selection-driven arms: each condition runs only on rows no earlier arm
  // claimed; each THEN only on its condition's matches — exactly the rows
  // the row-at-a-time path would evaluate them on.
  constexpr uint32_t kNoBranch = UINT32_MAX;
  std::vector<uint32_t> branch_of(k, kNoBranch), slot_of(k, 0);
  std::vector<ColumnVector> branches;
  std::vector<uint32_t> rem_pos(k), rem_abs(k);
  std::iota(rem_pos.begin(), rem_pos.end(), 0);
  for (size_t i = 0; i < k; ++i) {
    rem_abs[i] = static_cast<uint32_t>(RowAt(sel, i));
  }
  auto take_branch = [&](const Expr& value_expr,
                         const std::vector<uint32_t>& abs,
                         const std::vector<uint32_t>& pos) -> Status {
    DASHDB_ASSIGN_OR_RETURN(
        ColumnVector raw, value_expr.EvaluateSel(b, abs.data(), abs.size(),
                                                 ctx));
    DASHDB_ASSIGN_OR_RETURN(ColumnVector cast,
                            CastVector(raw, abs.size(), out_type_));
    uint32_t bid = static_cast<uint32_t>(branches.size());
    branches.push_back(std::move(cast));
    for (size_t j = 0; j < pos.size(); ++j) {
      branch_of[pos[j]] = bid;
      slot_of[pos[j]] = static_cast<uint32_t>(j);
    }
    return Status::OK();
  };
  for (const auto& [cond, then] : whens_) {
    if (rem_pos.empty()) break;
    DASHDB_ASSIGN_OR_RETURN(
        ColumnVector cond_v,
        cond->EvaluateSel(b, rem_abs.data(), rem_abs.size(), ctx));
    std::vector<uint32_t> hit_pos, hit_abs, next_pos, next_abs;
    for (size_t j = 0; j < rem_pos.size(); ++j) {
      if (!cond_v.IsNull(j) && TruthyAt(cond_v, j)) {
        hit_pos.push_back(rem_pos[j]);
        hit_abs.push_back(rem_abs[j]);
      } else {
        next_pos.push_back(rem_pos[j]);
        next_abs.push_back(rem_abs[j]);
      }
    }
    if (!hit_pos.empty()) {
      DASHDB_RETURN_IF_ERROR(take_branch(*then, hit_abs, hit_pos));
    }
    rem_pos = std::move(next_pos);
    rem_abs = std::move(next_abs);
  }
  if (else_ && !rem_pos.empty()) {
    DASHDB_RETURN_IF_ERROR(take_branch(*else_, rem_abs, rem_pos));
  }
  ColumnVector out(out_type_);
  out.Reserve(k);
  for (size_t i = 0; i < k; ++i) {
    if (branch_of[i] == kNoBranch) {
      out.AppendNull();
    } else {
      out.AppendFrom(branches[branch_of[i]], slot_of[i]);
    }
  }
  return out;
}

Result<Value> FuncExpr::EvaluateRow(const RowBatch& b, size_t row,
                                    const ExecContext& ctx) const {
  std::vector<Value> args;
  args.reserve(args_.size());
  for (const auto& a : args_) {
    DASHDB_ASSIGN_OR_RETURN(Value v, a->EvaluateRow(b, row, ctx));
    args.push_back(ApplyDialectStringSemantics(std::move(v), ctx));
  }
  DASHDB_ASSIGN_OR_RETURN(Value out, fn_(args, ctx));
  return ApplyDialectStringSemantics(std::move(out), ctx);
}

Result<ColumnVector> FuncExpr::EvaluateSel(const RowBatch& b,
                                           const uint32_t* sel, size_t k,
                                           const ExecContext& ctx) const {
  std::vector<ColumnVector> argv;
  argv.reserve(args_.size());
  for (const auto& a : args_) {
    DASHDB_ASSIGN_OR_RETURN(ColumnVector v, a->EvaluateSel(b, sel, k, ctx));
    argv.push_back(std::move(v));
  }
  if (vec_fn_) {
    ColumnVector out(out_type_);
    DASHDB_ASSIGN_OR_RETURN(bool handled, vec_fn_(argv, k, ctx, &out));
    if (handled) return out;
  }
  // Row loop over the already-evaluated argument vectors: the function body
  // itself boxes, but argument subtrees stay vectorized, and zero-argument
  // stateful functions (sequences) fire once per row in row order.
  ColumnVector out(out_type_);
  out.Reserve(k);
  std::vector<Value> args(args_.size());
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < argv.size(); ++j) {
      args[j] = ApplyDialectStringSemantics(argv[j].GetValue(i), ctx);
    }
    DASHDB_ASSIGN_OR_RETURN(Value v, fn_(args, ctx));
    v = ApplyDialectStringSemantics(std::move(v), ctx);
    if (!v.is_null() && v.type() != out_type_) {
      DASHDB_ASSIGN_OR_RETURN(v, v.CastTo(out_type_));
    }
    out.AppendValue(v);
  }
  return out;
}

std::string FuncExpr::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i) out += ", ";
    out += args_[i]->ToString();
  }
  return out + ")";
}

Result<std::vector<uint32_t>> EvalFilterSel(const Expr& expr,
                                            const RowBatch& batch,
                                            const uint32_t* sel, size_t k,
                                            const ExecContext& ctx) {
  if (const auto* lg = dynamic_cast<const LogicExpr*>(&expr)) {
    if (lg->op() == LogicOp::kAnd) {
      // TRUE AND TRUE only: the left filter narrows the right's selection.
      DASHDB_ASSIGN_OR_RETURN(std::vector<uint32_t> s1,
                              EvalFilterSel(*lg->left(), batch, sel, k, ctx));
      if (s1.empty()) return s1;
      return EvalFilterSel(*lg->right(), batch, s1.data(), s1.size(), ctx);
    }
    if (lg->op() == LogicOp::kOr) {
      // TRUE rows of the left pass outright; the right side evaluates only
      // on the left's complement (FALSE or NULL rows), then the two
      // ascending index lists merge.
      DASHDB_ASSIGN_OR_RETURN(std::vector<uint32_t> s1,
                              EvalFilterSel(*lg->left(), batch, sel, k, ctx));
      if (s1.size() == k) return s1;
      std::vector<uint32_t> rest;
      rest.reserve(k - s1.size());
      size_t j = 0;
      for (size_t i = 0; i < k; ++i) {
        uint32_t r = static_cast<uint32_t>(RowAt(sel, i));
        if (j < s1.size() && s1[j] == r) {
          ++j;
        } else {
          rest.push_back(r);
        }
      }
      DASHDB_ASSIGN_OR_RETURN(
          std::vector<uint32_t> s2,
          EvalFilterSel(*lg->right(), batch, rest.data(), rest.size(), ctx));
      std::vector<uint32_t> out;
      out.reserve(s1.size() + s2.size());
      std::merge(s1.begin(), s1.end(), s2.begin(), s2.end(),
                 std::back_inserter(out));
      return out;
    }
  }
  if (const auto* cmp = dynamic_cast<const CompareExpr*>(&expr)) {
    std::vector<uint32_t> out;
    if (cmp->TryFilterSel(batch, sel, k, ctx, &out)) return out;
  }
  DASHDB_ASSIGN_OR_RETURN(ColumnVector v, expr.EvaluateSel(batch, sel, k, ctx));
  std::vector<uint32_t> out;
  for (size_t i = 0; i < k; ++i) {
    if (!v.IsNull(i) && TruthyAt(v, i)) {
      out.push_back(static_cast<uint32_t>(RowAt(sel, i)));
    }
  }
  return out;
}

Result<std::vector<uint32_t>> EvalFilter(const Expr& expr,
                                         const RowBatch& batch,
                                         const ExecContext& ctx) {
  if (batch.has_selection()) {
    return EvalFilterSel(expr, batch, batch.selection->data(),
                         batch.selection->size(), ctx);
  }
  return EvalFilterSel(expr, batch, nullptr, batch.num_rows(), ctx);
}

}  // namespace dashdb
