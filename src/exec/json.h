// Minimal JSON path extraction — the paper's Future Work item "Support for
// Big Data Analytics on JSON data" (Section VI). JSON documents live in
// VARCHAR columns; JSON_VALUE(doc, '$.a.b[2]') extracts scalars, and
// JSON_ARRAY_LENGTH / JSON_EXISTS support filtering. The parser covers
// objects, arrays, strings (with escapes), numbers, booleans and null —
// enough for analytics over event/log payloads.
#pragma once

#include <string>

#include "common/status.h"
#include "common/value.h"

namespace dashdb {
namespace json {

/// Extracts the value at `path` (syntax: $.key.key2[idx]...) from a JSON
/// document. Returns NULL (not an error) when the path does not exist.
/// Scalars map to VARCHAR/DOUBLE/BOOLEAN values; objects/arrays are
/// returned as their JSON text.
Result<Value> Extract(const std::string& doc, const std::string& path);

/// Number of elements in the array at `path` ("$" = the document root);
/// NULL when the path is absent or not an array.
Result<Value> ArrayLength(const std::string& doc, const std::string& path);

/// TRUE/FALSE: does `path` exist in the document?
Result<Value> Exists(const std::string& doc, const std::string& path);

}  // namespace json
}  // namespace dashdb
