// Cooperative shared scans (DESIGN.md "Shared work under concurrency").
//
// The paper's scan-friendly buffer caching (II.B.5) taken to its logical
// end: when many queries scan the same table concurrently, the pages each
// one touches are the same pages — so instead of every query marching from
// page 0 (guaranteeing that by the time query B wants page 0, query A's
// scan has pushed it out), concurrent scans of one (table, column-set)
// share a circular page clock. A late arrival attaches at the clock's
// current position — the page the in-flight scan just decoded, hottest in
// the buffer pool — and wraps around, covering every page exactly once
// before detaching. Predicates and Bloom filters stay per-consumer, and
// each consumer still materializes per-page result slots in page order, so
// results are byte-identical to a solo scan.
//
// The clock also persists between scans: the next query over a quiet table
// starts where the previous scan ended, which is exactly the region still
// resident. Groups are engine-owned and shared by every session.
//
// Thread model: Attach/Detach take one mutex; the per-page clock publish is
// a relaxed atomic store on the scan hot path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace dashdb {

class ScanShareManager;

/// One consumer's membership in a shared-scan group, RAII-detached.
/// Invalid (default) tickets are inert: start() == 0 and NotePage is a
/// no-op, so serial code paths need no branches.
class SharedScanTicket {
 public:
  SharedScanTicket() = default;
  SharedScanTicket(SharedScanTicket&& o) noexcept { *this = std::move(o); }
  SharedScanTicket& operator=(SharedScanTicket&& o) noexcept;
  SharedScanTicket(const SharedScanTicket&) = delete;
  SharedScanTicket& operator=(const SharedScanTicket&) = delete;
  ~SharedScanTicket();

  bool valid() const { return group_ != nullptr; }
  /// First page this consumer scans; it proceeds circularly from here.
  size_t start() const { return start_; }
  /// True when the group already had an in-flight consumer at attach time.
  bool joined_inflight() const { return joined_inflight_; }

  /// Publishes `page` as the group's clock position (called per morsel,
  /// from any worker thread). Counts a shared page when another consumer
  /// is attached at that moment.
  void NotePage(size_t page);

 private:
  friend class ScanShareManager;
  struct Group;
  ScanShareManager* mgr_ = nullptr;
  std::shared_ptr<Group> group_;
  size_t start_ = 0;
  bool joined_inflight_ = false;
};

/// Engine-owned registry of in-flight circular scans, keyed by
/// (table id, column-set signature).
class ScanShareManager {
 public:
  /// Joins (or starts) the shared scan over `num_pages` page units of
  /// table `table_id` with column-set signature `colset`. The returned
  /// ticket's start() is the group clock's current position.
  SharedScanTicket Attach(uint64_t table_id, uint64_t colset,
                          size_t num_pages);

  /// Cumulative counters (mirrored into exec.shared_scan_* metrics).
  uint64_t attaches() const { return attaches_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t pages_shared() const {
    return pages_shared_.load(std::memory_order_relaxed);
  }
  /// Consumers currently attached across all groups (tests).
  int64_t active_consumers() const {
    return active_.load(std::memory_order_relaxed);
  }

 private:
  friend class SharedScanTicket;
  struct Key {
    uint64_t table_id = 0;
    uint64_t colset = 0;
    bool operator==(const Key& o) const {
      return table_id == o.table_id && colset == o.colset;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = k.table_id * 0x9E3779B97F4A7C15ull;
      h ^= k.colset + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  void Detach(SharedScanTicket* t);
  void CountSharedPage() {
    pages_shared_.fetch_add(1, std::memory_order_relaxed);
  }

  std::mutex mu_;
  std::unordered_map<Key, std::shared_ptr<SharedScanTicket::Group>, KeyHash>
      groups_;
  std::atomic<uint64_t> attaches_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> pages_shared_{0};
  std::atomic<int64_t> active_{0};
};

/// Signature of a scan's column set (projection + predicate columns), the
/// second half of a shared-scan group key.
uint64_t ScanColumnSetSignature(const std::vector<int>& projection,
                                const std::vector<int>& predicate_cols);

}  // namespace dashdb
