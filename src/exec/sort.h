// Parallel sort & Top-N (paper II.B.6/II.B.7 applied to ORDER BY): the
// last serial operator made columnar and parallel.
//
// SortOp encodes all keys per row into one memcmp-able normalized string
// (common/sort_key.h), sorts contiguous runs across the pool with
// ThreadPool::ParallelFor, then merges the runs — splitter-partitioned so
// merge segments also run in parallel, each segment driven by a
// tournament tree — and gathers the output column-wise by order vector.
// Ties always break on the global row index, so the result is
// byte-identical to the retained serial stable_sort oracle at any DOP.
//
// TopNOp is the ORDER BY + LIMIT/OFFSET fusion the binder emits when the
// requested prefix is small: bounded (limit+offset)-entry max-heaps —
// per-thread on large batches — admit a row only when it beats the
// current boundary, with a global sequence number as tie-break so the
// kept prefix matches the stable full sort exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/sort_key.h"
#include "exec/operator.h"

namespace dashdb {

/// One sort key.
struct SortKey {
  ExprPtr expr;
  bool desc = false;
};

/// Full sort (materializing). `serial` forces the pre-existing
/// row-comparison stable_sort path (`SET SORT SERIAL`) — kept as the
/// byte-identity oracle and bench baseline.
class SortOp : public Operator {
 public:
  SortOp(OperatorPtr child, std::vector<SortKey> keys, const ExecContext* ctx,
         bool serial = false);
  Status OpenImpl() override;
  Result<bool> NextImpl(RowBatch* out) override;

  std::string label() const override {
    return "Sort(keys=" + std::to_string(keys_.size()) + ")";
  }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

 protected:
  std::string AnalyzeExtra() const override;

 private:
  Status Materialize();
  /// The pre-PR single-threaded stable_sort over typed cell comparisons.
  void SerialOrder(const RowBatch& all,
                   const std::vector<ColumnVector>& key_cols,
                   std::vector<uint32_t>* order) const;
  /// Normalized-key run sort + (parallel) tournament-tree merge.
  Status ParallelOrder(const RowBatch& all,
                       const std::vector<ColumnVector>& key_cols,
                       std::vector<uint32_t>* order);

  OperatorPtr child_;
  std::vector<SortKey> keys_;
  const ExecContext* ctx_;
  bool serial_;
  RowBatch result_;
  bool done_ = false;
  bool materialized_ = false;
  // EXPLAIN ANALYZE detail, filled by Materialize.
  size_t runs_used_ = 0;
  size_t merge_fanin_ = 0;
};

/// Bounded-heap ORDER BY + LIMIT/OFFSET fusion. Streams the child,
/// keeping only the best (limit+offset) rows; per-thread heaps on large
/// batches, merged at materialization. Emits rows [offset, offset+limit)
/// of the total order — byte-identical to Sort + Limit.
class TopNOp : public Operator {
 public:
  TopNOp(OperatorPtr child, std::vector<SortKey> keys, int64_t limit,
         int64_t offset, const ExecContext* ctx);
  Status OpenImpl() override;
  Result<bool> NextImpl(RowBatch* out) override;

  std::string label() const override {
    return "TopN(keys=" + std::to_string(keys_.size()) +
           " k=" + std::to_string(limit_) +
           " offset=" + std::to_string(offset_) + ")";
  }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

 protected:
  std::string AnalyzeExtra() const override;

 private:
  /// One bounded heap plus the pool of rows its entries point into.
  struct Heap {
    struct Entry {
      std::string key;    ///< normalized key bytes
      uint64_t seq = 0;   ///< global input row number (stability tie-break)
      uint32_t pool_row = 0;
    };
    std::vector<Entry> entries;  ///< max-heap on (key, seq)
    RowBatch pool;               ///< admitted rows (output schema)
    size_t pool_rows = 0;
  };

  Status Materialize();
  /// Feeds rows [lo, hi) of `in` (dense) with keys from `keys` (built over
  /// the same range, so local index = row - lo) into `h`. `seq_base` is
  /// the global sequence number of the batch's row 0.
  void Consume(Heap* h, const RowBatch& in, const NormalizedKeyColumn& keys,
               size_t lo, size_t hi, uint64_t seq_base);
  void CompactPool(Heap* h);

  OperatorPtr child_;
  std::vector<SortKey> keys_;
  int64_t limit_, offset_;
  size_t capacity_;  ///< limit + offset: rows every heap retains
  const ExecContext* ctx_;
  std::vector<Heap> heaps_;
  RowBatch result_;
  bool done_ = false;
  bool materialized_ = false;
  size_t heaps_used_ = 0;
};

/// Upper bound on limit+offset for binder Top-N fusion; above it the full
/// sort's O(n log n) beats maintaining giant heaps.
inline constexpr int64_t kTopNMaxCapacity = 65536;

}  // namespace dashdb
