// Prefix (front) compression for sorted string runs (paper II.B.1:
// "Prefix compression methods are also used to eliminate storage for
// commonly occurring string prefixes"). Used to store the sorted value list
// of each string frequency partition.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dashdb {

/// A front-coded block of strings. Input must be sorted ascending; each
/// entry stores the byte length shared with its predecessor plus the suffix.
class PrefixCodedBlock {
 public:
  /// Encodes `sorted` (must be ascending). Keeps every `restart_interval`-th
  /// string uncompressed so random access costs at most one short run.
  static PrefixCodedBlock Encode(const std::vector<std::string>& sorted,
                                 int restart_interval = 16);

  size_t size() const { return count_; }

  /// Decodes entry i (0-based).
  std::string Get(size_t i) const;

  /// Decodes the whole block back to the original vector.
  std::vector<std::string> DecodeAll() const;

  /// Encoded byte footprint (what the compression bench measures).
  size_t ByteSize() const {
    return bytes_.size() + restarts_.size() * sizeof(uint32_t);
  }

 private:
  struct Entry {
    uint32_t shared;
    uint32_t suffix_len;
    uint32_t offset;  ///< into bytes_
  };
  size_t count_ = 0;
  int restart_interval_ = 16;
  std::vector<Entry> entries_;
  std::vector<char> bytes_;
  std::vector<uint32_t> restarts_;  ///< entry indices with shared == 0
};

}  // namespace dashdb
