// DictCodes: the dictionary-code sidecar a scan attaches to a decoded
// ColumnVector so mid-query predicates can run on codes instead of values
// (paper II.B.2 "operate on compressed" extended past the storage scan).
//
// Codes are row-aligned with the carrying vector: attachment requires a
// full-page dictionary decode with no exception rows, so row i's code is
// codes.Get(i). NULL rows alias code 0 and must be masked via the vector's
// null bitmap. The dictionaries are the table's single-partition
// order-preserving dicts, so range predicates translate to code bands.
#pragma once

#include <memory>

#include "common/bitutil.h"
#include "common/column_vector.h"
#include "compression/frequency_dict.h"

namespace dashdb {

struct DictCodes {
  BitPackedArray codes;
  // Exactly one of these is set, matching the column's SQL type family.
  std::shared_ptr<const IntFrequencyDict> int_dict;
  std::shared_ptr<const StringFrequencyDict> str_dict;
};

/// Codes usable for predicate evaluation over all `n` rows of `col`?
inline const DictCodes* UsableDictCodes(const ColumnVector& col, size_t n) {
  const DictCodes* dc = col.dict_codes().get();
  if (!dc || dc->codes.size() < n) return nullptr;
  return dc;
}

}  // namespace dashdb
