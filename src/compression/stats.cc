#include "compression/stats.h"

#include <algorithm>
#include <unordered_map>

namespace dashdb {

IntColumnStats ComputeIntStats(const int64_t* values, size_t n,
                               const BitVector* nulls, size_t ndv_limit) {
  IntColumnStats s;
  s.count = n;
  std::unordered_map<int64_t, size_t> freq;
  bool first = true;
  for (size_t i = 0; i < n; ++i) {
    if (nulls && nulls->Get(i)) {
      ++s.null_count;
      continue;
    }
    int64_t v = values[i];
    if (first) {
      s.min = s.max = v;
      first = false;
    } else {
      s.min = std::min(s.min, v);
      s.max = std::max(s.max, v);
    }
    if (s.ndv_exact) {
      auto [it, inserted] = freq.try_emplace(v, 0);
      ++it->second;
      if (inserted && freq.size() > ndv_limit) {
        s.ndv_exact = false;
        freq.clear();
      }
    }
  }
  if (s.ndv_exact) {
    s.ndv = freq.size();
    s.freq_desc.assign(freq.begin(), freq.end());
    std::sort(s.freq_desc.begin(), s.freq_desc.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;  // deterministic tie-break
              });
  } else {
    s.ndv = ndv_limit + 1;
  }
  return s;
}

StringColumnStats ComputeStringStats(const std::string* values, size_t n,
                                     const BitVector* nulls,
                                     size_t ndv_limit) {
  StringColumnStats s;
  s.count = n;
  std::unordered_map<std::string, size_t> freq;
  for (size_t i = 0; i < n; ++i) {
    if (nulls && nulls->Get(i)) {
      ++s.null_count;
      continue;
    }
    if (s.ndv_exact) {
      auto [it, inserted] = freq.try_emplace(values[i], 0);
      ++it->second;
      if (inserted && freq.size() > ndv_limit) {
        s.ndv_exact = false;
        freq.clear();
      }
    }
  }
  if (s.ndv_exact) {
    s.ndv = freq.size();
    s.freq_desc.reserve(freq.size());
    for (auto& [k, v] : freq) s.freq_desc.emplace_back(k, v);
    std::sort(s.freq_desc.begin(), s.freq_desc.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
  } else {
    s.ndv = ndv_limit + 1;
  }
  return s;
}

}  // namespace dashdb
