// Frequency encoding with order-preserving codes (paper II.B.1/2).
//
// Distinct column values are assigned to *frequency partitions*: the most
// frequent values land in the partition with the shortest codes (1 bit),
// the next tier in a 2-bit partition, and so on. Within each partition the
// codes are assigned in value order, so codes are binary-comparable for
// equality AND range predicates without decoding ("order preserving codes
// ... within any frequency partition values are binary wise comparable").
//
// The dictionary is global per column; pages store per-partition cells of
// bit-packed codes (src/storage/column_page.h).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bitutil.h"
#include "compression/prefix.h"
#include "compression/stats.h"

namespace dashdb {

/// Partition code-width schedule: partition p holds up to 2^kPartitionWidths[p]
/// values. The most frequent two values of a column therefore compress to a
/// single bit each ("compress data as small as one bit", paper II.B.1).
inline constexpr int kPartitionWidths[] = {1, 2, 4, 8, 16, 24, 31};
inline constexpr int kNumPartitionWidths = 7;

/// Sentinel partition id for values absent from the dictionary (stored in a
/// page's exception cell as raw values).
inline constexpr uint8_t kExceptionPartition = 0xFF;

/// (partition, code) pair produced by encoding one value.
struct PartitionCode {
  uint8_t partition;
  uint32_t code;
};

/// Inclusive code range within one partition that satisfies a predicate;
/// empty() when no code in the partition qualifies.
struct CodeRange {
  uint32_t lo = 1;
  uint32_t hi = 0;
  bool empty() const { return lo > hi; }
  static CodeRange Empty() { return CodeRange{1, 0}; }
  static CodeRange All(uint32_t n) {
    return n == 0 ? Empty() : CodeRange{0, n - 1};
  }
};

namespace detail {
inline size_t DictPayloadBytes(const std::vector<int64_t>& sorted_values) {
  // Integer partitions store delta-from-min values bit-packed.
  if (sorted_values.empty()) return 0;
  uint64_t range =
      static_cast<uint64_t>(sorted_values.back() - sorted_values.front());
  int w = BitWidthFor(range);
  return 8 + (sorted_values.size() * w + 7) / 8;
}
inline size_t DictPayloadBytes(const std::vector<std::string>& sorted_values) {
  // String partitions store the sorted list front-coded (prefix compression).
  return PrefixCodedBlock::Encode(sorted_values).ByteSize();
}

template <typename T>
struct ValueHash {
  size_t operator()(const T& v) const { return std::hash<T>{}(v); }
};
}  // namespace detail

/// Order-preserving frequency-partitioned dictionary over values of type T
/// (int64_t for all integer-backed SQL types, std::string for VARCHAR).
template <typename T>
class FrequencyDict {
 public:
  FrequencyDict() = default;

  /// Builds a single-partition, fully order-preserving dictionary: every
  /// distinct value in one partition of width ceil(log2 ndv). Codes are
  /// globally comparable and pages can store them in row order without a
  /// tuple map — the page-level "global optimization" alternative to
  /// frequency partitioning (paper II.B.1).
  static FrequencyDict BuildSinglePartition(
      const std::vector<std::pair<T, size_t>>& freq_desc) {
    FrequencyDict d;
    Partition part;
    part.values.reserve(freq_desc.size());
    for (const auto& [v, f] : freq_desc) part.values.push_back(v);
    std::sort(part.values.begin(), part.values.end());
    d.partitions_.push_back(std::move(part));
    d.single_partition_ = true;
    const auto& vals = d.partitions_[0].values;
    for (size_t c = 0; c < vals.size(); ++c) {
      d.encode_map_.emplace(vals[c],
                            PartitionCode{0, static_cast<uint32_t>(c)});
    }
    return d;
  }

  /// Code width of the single partition (BuildSinglePartition dicts).
  int single_width() const {
    return BitWidthFor(partitions_[0].values.empty()
                           ? 0
                           : partitions_[0].values.size() - 1);
  }
  bool is_single_partition() const { return single_partition_; }

  /// Builds from (value, count) pairs sorted most-frequent-first, as
  /// produced by ComputeIntStats / ComputeStringStats.
  static FrequencyDict Build(const std::vector<std::pair<T, size_t>>& freq_desc) {
    FrequencyDict d;
    size_t taken = 0;
    for (int p = 0; p < kNumPartitionWidths && taken < freq_desc.size(); ++p) {
      size_t cap = size_t{1} << kPartitionWidths[p];
      size_t n = std::min(cap, freq_desc.size() - taken);
      Partition part;
      part.values.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        part.values.push_back(freq_desc[taken + i].first);
      }
      std::sort(part.values.begin(), part.values.end());
      taken += n;
      d.partitions_.push_back(std::move(part));
    }
    // Encode map.
    for (size_t p = 0; p < d.partitions_.size(); ++p) {
      const auto& vals = d.partitions_[p].values;
      for (size_t c = 0; c < vals.size(); ++c) {
        d.encode_map_.emplace(
            vals[c], PartitionCode{static_cast<uint8_t>(p),
                                   static_cast<uint32_t>(c)});
      }
    }
    return d;
  }

  int num_partitions() const { return static_cast<int>(partitions_.size()); }

  /// Bit width of codes in partition p.
  int partition_width(int p) const {
    return single_partition_ ? single_width() : kPartitionWidths[p];
  }

  /// Number of distinct values assigned to partition p.
  size_t partition_size(int p) const { return partitions_[p].values.size(); }

  size_t total_values() const { return encode_map_.size(); }

  /// Encodes `v`; nullopt when `v` is not in the dictionary (caller routes
  /// it to the page's exception cell).
  std::optional<PartitionCode> Encode(const T& v) const {
    auto it = encode_map_.find(v);
    if (it == encode_map_.end()) return std::nullopt;
    return it->second;
  }

  /// Decodes (partition, code) back to the value.
  const T& Decode(uint8_t partition, uint32_t code) const {
    return partitions_[partition].values[code];
  }

  /// Codes in partition p whose values fall in [lo, hi] (either bound may be
  /// null = unbounded; `*_incl` selects <=/< semantics). This is how range
  /// predicates execute directly on compressed data.
  CodeRange RangeFor(int p, const T* lo, bool lo_incl, const T* hi,
                     bool hi_incl) const {
    const auto& vals = partitions_[p].values;
    if (vals.empty()) return CodeRange::Empty();
    size_t b = 0, e = vals.size();  // [b, e)
    if (lo) {
      b = lo_incl ? std::lower_bound(vals.begin(), vals.end(), *lo) - vals.begin()
                  : std::upper_bound(vals.begin(), vals.end(), *lo) - vals.begin();
    }
    if (hi) {
      e = hi_incl ? std::upper_bound(vals.begin(), vals.end(), *hi) - vals.begin()
                  : std::lower_bound(vals.begin(), vals.end(), *hi) - vals.begin();
    }
    if (b >= e) return CodeRange::Empty();
    return CodeRange{static_cast<uint32_t>(b), static_cast<uint32_t>(e - 1)};
  }

  /// Dictionary storage footprint (integer partitions bit-packed, string
  /// partitions front-coded).
  size_t ByteSize() const {
    size_t total = 0;
    for (const auto& p : partitions_) total += detail::DictPayloadBytes(p.values);
    return total;
  }

 private:
  struct Partition {
    std::vector<T> values;  ///< sorted ascending; code == index
  };
  std::vector<Partition> partitions_;
  std::unordered_map<T, PartitionCode, detail::ValueHash<T>> encode_map_;
  bool single_partition_ = false;
};

using IntFrequencyDict = FrequencyDict<int64_t>;
using StringFrequencyDict = FrequencyDict<std::string>;

}  // namespace dashdb
