// Minus encoding (frame-of-reference) for high-cardinality numerics
// (paper II.B.1: "minus encoding methods for high cardinality numeric").
//
// Each page stores codes = value - page_min, bit-packed at the width of the
// page's value range. Trivially order preserving, so comparison predicates
// translate into the code domain and run on packed words (src/simd).
#pragma once

#include <cstdint>
#include <optional>

#include "common/bitutil.h"

namespace dashdb {

/// One FOR-encoded run of values (page- or stride-local).
struct ForEncoded {
  int64_t base = 0;       ///< page minimum ("minus" term)
  int bit_width = 1;      ///< code width; codes in [0, 2^width)
  BitPackedArray codes;   ///< row order preserved

  size_t size() const { return codes.size(); }
  int64_t Get(size_t i) const {
    return base + static_cast<int64_t>(codes.Get(i));
  }
  size_t ByteSize() const { return codes.ByteSize() + sizeof(int64_t) + 1; }
};

/// Encodes values[0..n). Null positions (if `nulls` given) are stored as
/// code 0 and must be masked by the caller's null bitmap on decode.
ForEncoded ForEncode(const int64_t* values, size_t n, const BitVector* nulls);

/// Translates "value OP bound" into the code domain of `e`.
/// Returns the inclusive [lo, hi] code range that satisfies
/// lo_bound <= value <= hi_bound (either bound optional); nullopt when no
/// code can qualify (predicate selects nothing on this page).
struct ForCodeRange {
  uint64_t lo;
  uint64_t hi;
};
std::optional<ForCodeRange> ForRangeFor(const ForEncoded& e,
                                        const int64_t* lo_bound, bool lo_incl,
                                        const int64_t* hi_bound, bool hi_incl);

}  // namespace dashdb
