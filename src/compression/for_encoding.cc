#include "compression/for_encoding.h"

#include <algorithm>

namespace dashdb {

ForEncoded ForEncode(const int64_t* values, size_t n, const BitVector* nulls) {
  ForEncoded e;
  // Find min/max over non-null values.
  bool first = true;
  int64_t mn = 0, mx = 0;
  for (size_t i = 0; i < n; ++i) {
    if (nulls && nulls->Get(i)) continue;
    if (first) {
      mn = mx = values[i];
      first = false;
    } else {
      mn = std::min(mn, values[i]);
      mx = std::max(mx, values[i]);
    }
  }
  e.base = first ? 0 : mn;
  uint64_t range = first ? 0 : static_cast<uint64_t>(mx) - static_cast<uint64_t>(mn);
  e.bit_width = BitWidthFor(range);
  e.codes.ResetWidth(e.bit_width);
  e.codes.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (nulls && nulls->Get(i)) {
      e.codes.Append(0);
    } else {
      e.codes.Append(static_cast<uint64_t>(values[i]) -
                     static_cast<uint64_t>(e.base));
    }
  }
  return e;
}

std::optional<ForCodeRange> ForRangeFor(const ForEncoded& e,
                                        const int64_t* lo_bound, bool lo_incl,
                                        const int64_t* hi_bound, bool hi_incl) {
  // Max representable code on this page.
  uint64_t code_max =
      e.bit_width >= 64 ? ~uint64_t{0} : (uint64_t{1} << e.bit_width) - 1;
  // Work in the value domain first, then subtract base with saturation.
  int64_t lo_code = 0;
  uint64_t hi_code = code_max;
  if (lo_bound) {
    int64_t lb = *lo_bound;
    if (!lo_incl) {
      if (lb == INT64_MAX) return std::nullopt;
      lb += 1;
    }
    if (lb > e.base) {
      uint64_t delta = static_cast<uint64_t>(lb) - static_cast<uint64_t>(e.base);
      if (delta > code_max) return std::nullopt;  // everything on page < lb
      lo_code = static_cast<int64_t>(delta);
    }
  }
  if (hi_bound) {
    int64_t hb = *hi_bound;
    if (!hi_incl) {
      if (hb == INT64_MIN) return std::nullopt;
      hb -= 1;
    }
    if (hb < e.base) return std::nullopt;  // everything on page > hb
    uint64_t delta = static_cast<uint64_t>(hb) - static_cast<uint64_t>(e.base);
    hi_code = std::min(hi_code, delta);
  }
  if (static_cast<uint64_t>(lo_code) > hi_code) return std::nullopt;
  return ForCodeRange{static_cast<uint64_t>(lo_code), hi_code};
}

}  // namespace dashdb
