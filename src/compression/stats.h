// Column statistics driving compression-scheme selection (paper II.B.1:
// "Compression is then optimized globally per column as well as locally per
// storage page").
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bitutil.h"

namespace dashdb {

/// Statistics over the integer domain (INT/DATE/TIMESTAMP/DECIMAL/BOOLEAN
/// columns all map to int64 for encoding purposes).
struct IntColumnStats {
  size_t count = 0;
  size_t null_count = 0;
  int64_t min = 0;
  int64_t max = 0;
  /// Number of distinct non-null values (exact up to ndv_limit, then capped).
  size_t ndv = 0;
  bool ndv_exact = true;
  /// Distinct values with occurrence counts, most frequent first. Present
  /// only when ndv_exact (the frequency-dictionary build input).
  std::vector<std::pair<int64_t, size_t>> freq_desc;
};

/// Computes stats; tracks exact distinct values up to `ndv_limit`.
IntColumnStats ComputeIntStats(const int64_t* values, size_t n,
                               const BitVector* nulls,
                               size_t ndv_limit = size_t{1} << 20);

/// Same over strings.
struct StringColumnStats {
  size_t count = 0;
  size_t null_count = 0;
  size_t ndv = 0;
  bool ndv_exact = true;
  std::vector<std::pair<std::string, size_t>> freq_desc;
};

StringColumnStats ComputeStringStats(const std::string* values, size_t n,
                                     const BitVector* nulls,
                                     size_t ndv_limit = size_t{1} << 20);

}  // namespace dashdb
