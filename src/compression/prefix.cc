#include "compression/prefix.h"

#include <algorithm>
#include <cassert>

namespace dashdb {

PrefixCodedBlock PrefixCodedBlock::Encode(
    const std::vector<std::string>& sorted, int restart_interval) {
  PrefixCodedBlock b;
  b.count_ = sorted.size();
  b.restart_interval_ = restart_interval;
  b.entries_.reserve(sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    uint32_t shared = 0;
    if (i % restart_interval != 0 && i > 0) {
      const std::string& prev = sorted[i - 1];
      const std::string& cur = sorted[i];
      size_t lim = std::min(prev.size(), cur.size());
      while (shared < lim && prev[shared] == cur[shared]) ++shared;
    } else {
      b.restarts_.push_back(static_cast<uint32_t>(i));
    }
    Entry e;
    e.shared = shared;
    e.suffix_len = static_cast<uint32_t>(sorted[i].size() - shared);
    e.offset = static_cast<uint32_t>(b.bytes_.size());
    b.bytes_.insert(b.bytes_.end(), sorted[i].begin() + shared, sorted[i].end());
    b.entries_.push_back(e);
  }
  return b;
}

std::string PrefixCodedBlock::Get(size_t i) const {
  assert(i < count_);
  // Walk back to the nearest restart point, then roll forward.
  size_t start = (i / restart_interval_) * restart_interval_;
  std::string out;
  for (size_t j = start; j <= i; ++j) {
    const Entry& e = entries_[j];
    out.resize(e.shared);
    out.append(bytes_.data() + e.offset, e.suffix_len);
  }
  return out;
}

std::vector<std::string> PrefixCodedBlock::DecodeAll() const {
  std::vector<std::string> out;
  out.reserve(count_);
  std::string cur;
  for (size_t i = 0; i < count_; ++i) {
    const Entry& e = entries_[i];
    cur.resize(e.shared);
    cur.append(bytes_.data() + e.offset, e.suffix_len);
    out.push_back(cur);
  }
  return out;
}

}  // namespace dashdb
