// "Previous generation" compression baseline for the paper's 2-3x claim
// (II.B.1: "compress data 2-3x smaller than previous generations of
// compression techniques used in IBM products").
//
// Models classic value-level dictionary compression: a per-page dictionary
// of whole values with BYTE-aligned codes (1 or 2 bytes), no frequency
// partitioning, no bit packing, no global/column-level optimization, raw
// byte-aligned storage when the page dictionary overflows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dashdb {

/// Result of compressing one page with the legacy scheme.
struct LegacyCompressedPage {
  size_t encoded_bytes = 0;  ///< codes + dictionary payload
  size_t raw_bytes = 0;      ///< uncompressed footprint of the same page
  bool dictionary_used = false;
};

/// Compresses a page of int64 values (legacy value dictionary, byte codes).
LegacyCompressedPage LegacyCompressInts(const int64_t* values, size_t n);

/// Compresses a page of strings (legacy value dictionary, byte codes, no
/// prefix compression inside the dictionary).
LegacyCompressedPage LegacyCompressStrings(const std::string* values, size_t n);

}  // namespace dashdb
