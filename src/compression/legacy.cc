#include "compression/legacy.h"

#include <unordered_set>

namespace dashdb {

namespace {
constexpr size_t kMaxLegacyDict = 65536;  // 2-byte codes at most
}

LegacyCompressedPage LegacyCompressInts(const int64_t* values, size_t n) {
  LegacyCompressedPage out;
  out.raw_bytes = n * sizeof(int64_t);
  std::unordered_set<int64_t> distinct;
  for (size_t i = 0; i < n; ++i) {
    distinct.insert(values[i]);
    if (distinct.size() > kMaxLegacyDict) break;
  }
  if (distinct.size() > kMaxLegacyDict) {
    out.encoded_bytes = out.raw_bytes;  // dictionary overflow -> store raw
    return out;
  }
  out.dictionary_used = true;
  size_t code_bytes = distinct.size() <= 256 ? 1 : 2;
  out.encoded_bytes = n * code_bytes + distinct.size() * sizeof(int64_t);
  return out;
}

LegacyCompressedPage LegacyCompressStrings(const std::string* values,
                                           size_t n) {
  LegacyCompressedPage out;
  size_t raw = 0;
  std::unordered_set<std::string> distinct;
  for (size_t i = 0; i < n; ++i) {
    raw += values[i].size() + 2;  // 2-byte length prefix
    if (distinct.size() <= kMaxLegacyDict) distinct.insert(values[i]);
  }
  out.raw_bytes = raw;
  if (distinct.size() > kMaxLegacyDict) {
    out.encoded_bytes = raw;
    return out;
  }
  out.dictionary_used = true;
  size_t dict_payload = 0;
  for (const auto& s : distinct) dict_payload += s.size() + 2;
  size_t code_bytes = distinct.size() <= 256 ? 1 : 2;
  out.encoded_bytes = n * code_bytes + dict_payload;
  return out;
}

}  // namespace dashdb
