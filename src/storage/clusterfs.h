// Simulated POSIX-compliant clustered filesystem (paper II.A/II.E): the
// user-provided shared storage mounted at /mnt/clusterfs that every node
// sees. Shard file sets live here, which is what makes shard reassociation
// (HA, elasticity, full-cluster portability) a pure metadata operation.
//
// In-memory path->blob store with prefix listing; all nodes of the
// simulated cluster share one instance.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/column_vector.h"
#include "common/status.h"
#include "storage/column_table.h"

namespace dashdb {

class ClusterFileSystem {
 public:
  Status WriteFile(const std::string& path, std::vector<uint8_t> bytes);
  /// Pointer valid until the file is removed/overwritten.
  Result<const std::vector<uint8_t>*> ReadFile(const std::string& path) const;
  bool Exists(const std::string& path) const;
  Status Remove(const std::string& path);
  /// Paths beginning with `prefix`, sorted.
  std::vector<std::string> List(const std::string& prefix) const;
  size_t TotalBytes() const;
  size_t FileCount() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<uint8_t>> files_;
};

/// Binary row-batch serialization (shard file-set payload format).
void SerializeBatch(const TableSchema& schema, const RowBatch& batch,
                    std::vector<uint8_t>* out);
Result<RowBatch> DeserializeBatch(const TableSchema& schema,
                                  const uint8_t* data, size_t len);

/// Persists a column table's live rows as one file set under `prefix`.
Status SaveColumnTable(const ColumnTable& table, ClusterFileSystem* fs,
                       const std::string& prefix);

/// Rebuilds a column table (re-analyzing and re-encoding) from a file set.
Result<std::shared_ptr<ColumnTable>> LoadColumnTable(const TableSchema& schema,
                                                     uint64_t table_id,
                                                     const ClusterFileSystem& fs,
                                                     const std::string& prefix);

}  // namespace dashdb
