// Column-organized table: the dashDB storage engine's primary object.
//
// A table holds, per column: a global compression decision (frequency
// dictionary or minus/FOR), the encoded pages, and the data-skipping
// synopsis. Bulk loads analyze the data and build dictionaries; trickle
// INSERTs land in an uncompressed tail region that is encoded page-by-page
// as it fills (unseen values become page exceptions). DELETE marks a
// per-table deleted bitmap; UPDATE is delete + re-insert (executor-driven).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "bufferpool/bufferpool.h"
#include "storage/io_model.h"
#include "catalog/catalog.h"
#include "catalog/schema.h"
#include "common/column_vector.h"
#include "common/status.h"
#include "storage/column_page.h"
#include "synopsis/synopsis.h"

namespace dashdb {

/// A conjunctive range predicate on one column, already translated to the
/// storage domain by the planner.
struct ColumnPredicate {
  int column = 0;
  /// Integer-domain range (integer-backed columns).
  IntRangePred int_range;
  /// String-domain range (VARCHAR columns).
  StrRangePred str_range;
  /// Double-domain range (DOUBLE columns).
  std::optional<double> dlo, dhi;
  bool dlo_incl = true, dhi_incl = true;
};

class ThreadPool;
class ScanShareManager;

/// Feature switches for a scan — the paper's architectural levers, each
/// independently toggleable for the ablation bench and the Test-4
/// "naive column store competitor" mode.
struct ScanOptions {
  bool use_synopsis = true;       ///< data skipping (II.B.4)
  bool use_swar = true;           ///< software SIMD (II.B.6)
  bool operate_on_compressed = true;  ///< predicates on codes (II.B.2)
  BufferPool* pool = nullptr;     ///< charge page accesses when set
  /// Intra-query parallelism (II.B.6): pages fan out across `exec_pool`
  /// workers at degree `dop`. Serial when exec_pool is null or dop <= 1;
  /// both are independently settable for the ablation bench.
  ThreadPool* exec_pool = nullptr;
  int dop = 1;
  /// Cooperative shared scans (src/exec/shared_scan.h): when `shared_scan`
  /// is on and `share` points at the engine's manager, concurrent scans of
  /// the same (table, column-set) follow one circular page clock. The
  /// manager pointer is always armed by the engine; the bool is the
  /// session's SET SHARED_SCAN knob.
  ScanShareManager* share = nullptr;
  bool shared_scan = false;
};

/// Per-scan observability counters.
struct ScanStats {
  size_t pages_visited = 0;
  size_t pages_skipped = 0;     ///< all strides of the page were skippable
  size_t strides_skipped = 0;
  size_t rows_matched = 0;
};

/// Optimizer-facing statistics for one column, derived from data the
/// storage layer already maintains: the per-stride synopsis (min/max +
/// null counts) and the frequency dictionary (distinct-value count).
/// Everything is an estimate — the tail region is covered only by its
/// row/null counts, not by range or distinct information.
struct ColumnStatsView {
  size_t rows = 0;        ///< live rows in the table
  size_t null_count = 0;  ///< NULLs (synopsis strides + tail)
  size_t distinct = 0;    ///< dictionary NDV; 0 = unknown
  bool has_int_range = false;
  int64_t int_min = 0, int_max = 0;
  bool has_str_range = false;
  std::string str_min, str_max;
};

/// Column-organized table.
class ColumnTable : public StorageObject {
 public:
  ColumnTable(TableSchema schema, uint64_t table_id);

  const TableSchema& schema() const { return schema_; }
  uint64_t table_id() const { return table_id_; }

  /// Total rows ever stored (including deleted); live = minus deletions.
  size_t row_count() const { return row_count_; }
  size_t live_row_count() const { return row_count_ - deleted_count_; }

  /// Bulk load: replaces the table content, analyzes `data`, builds the
  /// per-column dictionaries, encodes pages and synopsis.
  Status Load(const RowBatch& data);

  /// Appends rows through the tail region (dictionary exceptions allowed).
  Status Append(const RowBatch& data);
  Status AppendRow(const std::vector<Value>& row);

  /// Marks rows deleted (row ids are the scan-reported global ids).
  Status DeleteRows(const std::vector<uint64_t>& row_ids);
  bool IsDeleted(uint64_t row_id) const;

  /// Removes all rows (TRUNCATE TABLE).
  void Truncate();

  /// Random access to one cell (decodes the owning page run). Used by
  /// UPDATE's key-release path and by tests.
  Value GetCell(uint64_t row_id, int col) const;

  /// Streaming scan: evaluates the conjunction of `preds`, emits one
  /// RowBatch per page (plus one for the tail) containing `projection`
  /// columns and, if `row_ids` non-null per batch, the global row ids.
  /// Thread-compatible (no mutation during scan).
  Status Scan(const std::vector<ColumnPredicate>& preds,
              const std::vector<int>& projection, const ScanOptions& opts,
              const std::function<void(RowBatch&, const std::vector<uint64_t>&)>&
                  emit,
              ScanStats* stats = nullptr) const;

  /// Page-at-a-time scan step for pull-based executors: evaluates `preds`
  /// on page `page_no` (pass num_pages() for the tail region) and appends
  /// matching rows to *out / *ids. *out must carry one ColumnVector per
  /// projected column.
  Status ScanPage(size_t page_no, const std::vector<ColumnPredicate>& preds,
                  const std::vector<int>& projection, const ScanOptions& opts,
                  RowBatch* out, std::vector<uint64_t>* ids,
                  ScanStats* stats = nullptr) const;

  /// Fast COUNT(*) with predicates: zero predicates count from page-row
  /// metadata; a single predicate on an integer-backed column counts
  /// straight off the packed codes via SwarCount (no bitmap, no decode)
  /// when the scan options allow SWAR-on-compressed and the page holds no
  /// deleted rows. Everything else falls back to an empty-projection scan.
  Result<size_t> CountRows(const std::vector<ColumnPredicate>& preds,
                           const ScanOptions& opts,
                           ScanStats* stats = nullptr) const;

  /// Compressed footprint of all pages + dictionaries (bytes).
  size_t CompressedBytes() const;
  /// Uncompressed footprint of the same data (bytes).
  size_t RawBytes() const;
  /// Synopsis footprint in the compressed representation (bytes).
  size_t SynopsisBytes() const;

  size_t num_pages() const { return num_pages_; }

  /// Encoding chosen for a column (after Load).
  PageEncoding column_encoding(int col) const;

  /// Statistics snapshot for one column (cardinality estimation input).
  ColumnStatsView ColumnStats(int col) const;

  /// Attaches the storage I/O model: buffer-pool misses on this table's
  /// pages charge modeled read time into *sink (see storage/io_model.h).
  void ConfigureIo(IoModel model, IoSink* sink, BufferPool* pool) {
    io_model_ = model;
    io_sink_ = sink;
    io_pool_ = pool;
  }

 private:
  struct ColumnData {
    std::shared_ptr<IntFrequencyDict> int_dict;
    std::shared_ptr<StringFrequencyDict> str_dict;
    PageEncoding encoding = PageEncoding::kRawInt;
    std::vector<std::unique_ptr<ColumnPage>> pages;
    IntSynopsis int_synopsis;
    StringSynopsis str_synopsis;
  };

  /// Chooses the encoding for a column from its stats and builds dicts.
  void ChooseEncoding(int col, const RowBatch& data);

  /// Encodes rows [begin, begin+n) of `data` into one page per column and
  /// appends synopsis strides.
  void EncodePageRun(const RowBatch& data, size_t begin, size_t n);

  /// Flushes full pages out of the tail region.
  void MaybeFlushTail();

  Status CheckUnique(const RowBatch& data) const;
  void IndexUnique(const RowBatch& data);

  /// Page-level predicate evaluation; returns match bitmap over page rows.
  void EvalPredsOnPage(const std::vector<ColumnPredicate>& preds,
                       size_t page_no, const ScanOptions& opts,
                       BitVector* match) const;

  /// Applies synopsis skipping for one page; returns false when the whole
  /// page is skippable.
  bool ApplySynopsis(const std::vector<ColumnPredicate>& preds, size_t page_no,
                     BitVector* match, ScanStats* stats) const;

  /// `attach_codes` keeps the dictionary-code sidecar on fully-selected
  /// kDict* pages so downstream filters can operate on compressed.
  void DecodeProjection(const std::vector<int>& projection, size_t page_no,
                        const BitVector& sel, bool attach_codes,
                        RowBatch* out) const;

  void ChargePool(BufferPool* pool, int col, size_t page_no) const;

  Value GetCellLocked(uint64_t row_id, int col) const;

  TableSchema schema_;
  uint64_t table_id_;
  std::vector<ColumnData> columns_;
  size_t num_pages_ = 0;
  size_t row_count_ = 0;
  size_t deleted_count_ = 0;
  BitVector deleted_;  ///< sized row_count_ (grown on append)

  /// Global row id of each page's first row / page row counts / first
  /// synopsis-stride index of each page.
  std::vector<size_t> page_start_;
  std::vector<uint32_t> page_rows_;
  std::vector<size_t> page_first_stride_;
  size_t num_strides_ = 0;
  size_t raw_bytes_ = 0;  ///< uncompressed footprint of stored data

  IoModel io_model_;
  IoSink* io_sink_ = nullptr;
  BufferPool* io_pool_ = nullptr;

  /// Uncompressed tail region awaiting encoding.
  RowBatch tail_;

  /// Unique-constraint enforcement sets (column -> value set).
  std::vector<std::unordered_set<int64_t>> unique_ints_;
  std::vector<std::unordered_set<std::string>> unique_strs_;

  mutable std::mutex mu_;  ///< guards mutation paths
};

}  // namespace dashdb
