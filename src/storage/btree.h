// In-memory B+Tree secondary index (int64 key -> row id, duplicates
// allowed). This is the indexing machinery of the row-organized appliance
// baseline — the paper's columnar engine deliberately has no secondary
// indexes ("no indexes other than those enforcing uniqueness", II.B.7), so
// this lives here purely to make the 10-50x row-vs-column comparison fair:
// the row engine gets the best access path the appliance generation had.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace dashdb {

class BPlusTree {
 public:
  BPlusTree();
  ~BPlusTree();

  /// Inserts (key, row_id). Duplicate keys allowed.
  void Insert(int64_t key, uint64_t row_id);

  /// Visits every (key, row_id) with lo <= key <= hi in key order.
  void SeekRange(int64_t lo, int64_t hi,
                 const std::function<void(int64_t, uint64_t)>& fn) const;

  /// All row ids with exactly `key`.
  std::vector<uint64_t> Lookup(int64_t key) const;

  size_t size() const { return size_; }
  int height() const { return height_; }

 private:
  struct Node;
  struct SplitResult;

  SplitResult InsertRec(Node* node, int64_t key, uint64_t row_id);

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  int height_ = 1;
};

}  // namespace dashdb
