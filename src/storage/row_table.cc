#include "storage/row_table.h"

#include <cassert>
#include <cstring>

namespace dashdb {

namespace {
constexpr size_t kCellWidth = 9;  // 1 null byte + 8 payload bytes

/// Value-domain match against one ColumnPredicate.
bool CellMatches(const ColumnPredicate& pred, TypeId t, const Value& v) {
  if (v.is_null()) return false;
  if (t == TypeId::kVarchar) {
    const std::string& s = v.AsString();
    const auto& p = pred.str_range;
    if (p.lo && (p.lo_incl ? s < *p.lo : s <= *p.lo)) return false;
    if (p.hi && (p.hi_incl ? s > *p.hi : s >= *p.hi)) return false;
    return true;
  }
  if (t == TypeId::kDouble) {
    double d = v.AsDouble();
    if (pred.dlo && (pred.dlo_incl ? d < *pred.dlo : d <= *pred.dlo))
      return false;
    if (pred.dhi && (pred.dhi_incl ? d > *pred.dhi : d >= *pred.dhi))
      return false;
    return true;
  }
  int64_t i = v.AsInt();
  const auto& p = pred.int_range;
  if (p.lo && (p.lo_incl ? i < *p.lo : i <= *p.lo)) return false;
  if (p.hi && (p.hi_incl ? i > *p.hi : i >= *p.hi)) return false;
  return true;
}

}  // namespace

RowTable::RowTable(TableSchema schema, uint64_t table_id)
    : schema_(std::move(schema)),
      table_id_(table_id),
      fixed_row_width_(kCellWidth * schema_.num_columns()) {}

uint8_t* RowTable::CellPtr(Page& p, size_t row_in_page, int col) {
  return p.fixed.data() + row_in_page * fixed_row_width_ + col * kCellWidth;
}

const uint8_t* RowTable::CellPtr(const Page& p, size_t row_in_page,
                                 int col) const {
  return p.fixed.data() + row_in_page * fixed_row_width_ + col * kCellWidth;
}

void RowTable::WriteCell(Page* p, size_t row_in_page, int col,
                         const Value& v) {
  uint8_t* cell = CellPtr(*p, row_in_page, col);
  if (v.is_null()) {
    cell[0] = 1;
    std::memset(cell + 1, 0, 8);
    return;
  }
  cell[0] = 0;
  TypeId t = schema_.column(col).type;
  if (t == TypeId::kDouble) {
    double d = v.AsDouble();
    std::memcpy(cell + 1, &d, 8);
  } else if (t == TypeId::kVarchar) {
    uint64_t idx = p->heap.size();
    p->heap.push_back(v.AsString());
    heap_bytes_ += v.AsString().size();
    std::memcpy(cell + 1, &idx, 8);
  } else {
    int64_t i = v.AsInt();
    std::memcpy(cell + 1, &i, 8);
  }
}

Value RowTable::ReadCell(const Page& p, size_t row_in_page, int col) const {
  const uint8_t* cell = CellPtr(p, row_in_page, col);
  TypeId t = schema_.column(col).type;
  if (cell[0]) return Value::Null(t);
  if (t == TypeId::kDouble) {
    double d;
    std::memcpy(&d, cell + 1, 8);
    return Value::Double(d);
  }
  if (t == TypeId::kVarchar) {
    uint64_t idx;
    std::memcpy(&idx, cell + 1, 8);
    return Value::String(p.heap[idx]);
  }
  int64_t i;
  std::memcpy(&i, cell + 1, 8);
  switch (t) {
    case TypeId::kBoolean: return Value::Boolean(i != 0);
    case TypeId::kInt32: return Value::Int32(static_cast<int32_t>(i));
    case TypeId::kDate: return Value::Date(static_cast<int32_t>(i));
    case TypeId::kTimestamp: return Value::Timestamp(i);
    case TypeId::kDecimal: return Value::Decimal(i);
    default: return Value::Int64(i);
  }
}

void RowTable::MaintainIndexes(uint64_t row_id, const std::vector<Value>& row) {
  for (auto& [col, idx] : indexes_) {
    if (!row[col].is_null()) idx->Insert(row[col].AsInt(), row_id);
  }
}

Status RowTable::Append(const RowBatch& data) {
  if (static_cast<int>(data.columns.size()) != schema_.num_columns()) {
    return Status::InvalidArgument("Append: column count mismatch");
  }
  std::lock_guard<std::mutex> lk(mu_);
  const size_t n = data.num_rows();
  for (size_t i = 0; i < n; ++i) {
    if (pages_.empty() || pages_.back()->nrows == kRowsPerRowPage) {
      auto p = std::make_unique<Page>();
      p->fixed.resize(kRowsPerRowPage * fixed_row_width_);
      pages_.push_back(std::move(p));
    }
    Page* p = pages_.back().get();
    // Cell-at-a-time straight from the columns: no per-row Value vector.
    for (int c = 0; c < schema_.num_columns(); ++c) {
      WriteCell(p, p->nrows, c, data.columns[c].GetValue(i));
    }
    ++p->nrows;
    for (auto& [col, idx] : indexes_) {
      const ColumnVector& cv = data.columns[col];
      if (!cv.IsNull(i)) idx->Insert(cv.GetValue(i).AsInt(), row_count_);
    }
    ++row_count_;
  }
  deleted_.GrowTo(row_count_);
  return Status::OK();
}

Status RowTable::AppendRow(const std::vector<Value>& row) {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::InvalidArgument("AppendRow: column count mismatch");
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (pages_.empty() || pages_.back()->nrows == kRowsPerRowPage) {
    auto p = std::make_unique<Page>();
    p->fixed.resize(kRowsPerRowPage * fixed_row_width_);
    pages_.push_back(std::move(p));
  }
  Page* p = pages_.back().get();
  for (int c = 0; c < schema_.num_columns(); ++c) {
    WriteCell(p, p->nrows, c, row[c]);
  }
  ++p->nrows;
  MaintainIndexes(row_count_, row);
  ++row_count_;
  deleted_.GrowTo(row_count_);
  return Status::OK();
}

Status RowTable::DeleteRows(const std::vector<uint64_t>& row_ids) {
  std::lock_guard<std::mutex> lk(mu_);
  for (uint64_t id : row_ids) {
    if (id >= row_count_) return Status::OutOfRange("row id out of range");
    if (!deleted_.Get(id)) {
      deleted_.Set(id);
      ++deleted_count_;
    }
  }
  return Status::OK();
}

bool RowTable::IsDeleted(uint64_t row_id) const {
  return row_id < deleted_.size() && deleted_.Get(row_id);
}

void RowTable::Truncate() {
  std::lock_guard<std::mutex> lk(mu_);
  pages_.clear();
  row_count_ = 0;
  deleted_count_ = 0;
  deleted_.Resize(0);
  heap_bytes_ = 0;
  for (auto& [col, idx] : indexes_) idx = std::make_unique<BPlusTree>();
}

Status RowTable::UpdateRow(uint64_t row_id, const std::vector<Value>& values) {
  if (static_cast<int>(values.size()) != schema_.num_columns()) {
    return Status::InvalidArgument("UpdateRow: column count mismatch");
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (row_id >= row_count_) return Status::OutOfRange("row id out of range");
  Page* p = pages_[row_id / kRowsPerRowPage].get();
  size_t r = row_id % kRowsPerRowPage;
  for (int c = 0; c < schema_.num_columns(); ++c) {
    WriteCell(p, r, c, values[c]);
  }
  // Index maintenance: add new key entries (old ones stay as stale entries
  // filtered by re-check on scan, like a non-compacted index).
  MaintainIndexes(row_id, values);
  return Status::OK();
}

Value RowTable::GetCell(uint64_t row_id, int col) const {
  assert(row_id < row_count_);
  const Page& p = *pages_[row_id / kRowsPerRowPage];
  return ReadCell(p, row_id % kRowsPerRowPage, col);
}

std::vector<Value> RowTable::GetRow(uint64_t row_id) const {
  std::vector<Value> out;
  out.reserve(schema_.num_columns());
  for (int c = 0; c < schema_.num_columns(); ++c) {
    out.push_back(GetCell(row_id, c));
  }
  return out;
}

Status RowTable::CreateIndex(int col) {
  if (col < 0 || col >= schema_.num_columns()) {
    return Status::InvalidArgument("index column out of range");
  }
  TypeId t = schema_.column(col).type;
  if (t == TypeId::kVarchar || t == TypeId::kDouble) {
    return Status::Unimplemented("indexes supported on integer-backed columns");
  }
  std::lock_guard<std::mutex> lk(mu_);
  auto idx = std::make_unique<BPlusTree>();
  for (uint64_t id = 0; id < row_count_; ++id) {
    const Page& p = *pages_[id / kRowsPerRowPage];
    Value v = ReadCell(p, id % kRowsPerRowPage, col);
    if (!v.is_null()) idx->Insert(v.AsInt(), id);
  }
  indexes_[col] = std::move(idx);
  return Status::OK();
}

bool RowTable::HasIndex(int col) const { return indexes_.count(col) > 0; }

bool RowTable::RowMatchesPreds(const std::vector<ColumnPredicate>& preds,
                               uint64_t row_id) const {
  const Page& p = *pages_[row_id / kRowsPerRowPage];
  size_t r = row_id % kRowsPerRowPage;
  for (const auto& pred : preds) {
    Value v = ReadCell(p, r, pred.column);
    if (!CellMatches(pred, schema_.column(pred.column).type, v)) return false;
  }
  return true;
}

void RowTable::ChargePageIo(uint64_t page_no, bool random) const {
  if (!io_sink_ || !io_model_.enabled) return;
  size_t bytes = kRowsPerRowPage * fixed_row_width_;
  PageId id{table_id_, 0, static_cast<uint32_t>(page_no)};
  bool hit = io_pool_ && io_pool_->Access(id, bytes);
  if (!hit) {
    io_sink_->fetch_add(io_model_.CostNanos(bytes, random ? 1 : 0));
  }
}

Status RowTable::ScanRange(uint64_t begin, uint64_t end,
                           const std::vector<ColumnPredicate>& preds,
                           const std::vector<int>& projection, RowBatch* out,
                           std::vector<uint64_t>* ids) const {
  end = std::min<uint64_t>(end, row_count_);
  // Full row pages stream from storage regardless of the projection — the
  // row organization's fundamental cost (paper II.B.3).
  if (end > begin) {
    for (uint64_t p = begin / kRowsPerRowPage;
         p <= (end - 1) / kRowsPerRowPage && p < pages_.size(); ++p) {
      ChargePageIo(p, /*random=*/false);
    }
  }
  for (uint64_t id = begin; id < end; ++id) {
    if (deleted_.Get(id)) continue;
    if (!RowMatchesPreds(preds, id)) continue;
    const Page& p = *pages_[id / kRowsPerRowPage];
    size_t r = id % kRowsPerRowPage;
    for (size_t k = 0; k < projection.size(); ++k) {
      out->columns[k].AppendValue(ReadCell(p, r, projection[k]));
    }
    if (ids) ids->push_back(id);
  }
  return Status::OK();
}

Status RowTable::Scan(
    const std::vector<ColumnPredicate>& preds,
    const std::vector<int>& projection,
    const std::function<void(RowBatch&, const std::vector<uint64_t>&)>& emit)
    const {
  RowBatch out;
  out.columns.reserve(projection.size());
  for (int c : projection) out.columns.emplace_back(schema_.column(c).type);
  std::vector<uint64_t> ids;
  for (uint64_t p = 0; p < pages_.size(); ++p) {
    ChargePageIo(p, /*random=*/false);
  }
  for (uint64_t id = 0; id < row_count_; ++id) {
    if (deleted_.Get(id)) continue;
    if (!RowMatchesPreds(preds, id)) continue;
    const Page& p = *pages_[id / kRowsPerRowPage];
    size_t r = id % kRowsPerRowPage;
    for (size_t k = 0; k < projection.size(); ++k) {
      out.columns[k].AppendValue(ReadCell(p, r, projection[k]));
    }
    ids.push_back(id);
    if (ids.size() == 4096) {
      emit(out, ids);
      for (auto& c : out.columns) c.Clear();
      ids.clear();
    }
  }
  if (!ids.empty()) emit(out, ids);
  return Status::OK();
}

Status RowTable::IndexScan(
    int col, int64_t lo, int64_t hi,
    const std::vector<ColumnPredicate>& residual,
    const std::vector<int>& projection,
    const std::function<void(RowBatch&, const std::vector<uint64_t>&)>& emit)
    const {
  auto it = indexes_.find(col);
  if (it == indexes_.end()) return Status::NotFound("no index on column");
  RowBatch out;
  out.columns.reserve(projection.size());
  for (int c : projection) out.columns.emplace_back(schema_.column(c).type);
  std::vector<uint64_t> ids;
  std::vector<bool> emitted(row_count_, false);  // stale-entry dedup
  // Access-path costing: when the key range covers a large slice of the
  // table, a real optimizer streams the pages sequentially instead of
  // paying one random seek per page. Count matches index-only first (the
  // index is memory-resident), then charge I/O accordingly.
  size_t match_estimate = 0;
  it->second->SeekRange(lo, hi,
                        [&](int64_t, uint64_t) { ++match_estimate; });
  bool wide_range = match_estimate > live_row_count() / 8;
  if (wide_range) {
    for (uint64_t p = 0; p < pages_.size(); ++p) {
      ChargePageIo(p, /*random=*/false);
    }
  }
  uint64_t last_page = UINT64_MAX;
  it->second->SeekRange(lo, hi, [&](int64_t key, uint64_t id) {
    if (deleted_.Get(id) || emitted[id]) return;
    uint64_t page = id / kRowsPerRowPage;
    if (!wide_range && page != last_page) {
      ChargePageIo(page, /*random=*/true);
      last_page = page;
    }
    // Re-check: stale index entries (from in-place updates) must still
    // match the current cell value.
    Value cur = GetCell(id, col);
    if (cur.is_null() || cur.AsInt() != key) return;
    if (cur.AsInt() < lo || cur.AsInt() > hi) return;
    if (!RowMatchesPreds(residual, id)) return;
    emitted[id] = true;
    const Page& p = *pages_[id / kRowsPerRowPage];
    size_t r = id % kRowsPerRowPage;
    for (size_t k = 0; k < projection.size(); ++k) {
      out.columns[k].AppendValue(ReadCell(p, r, projection[k]));
    }
    ids.push_back(id);
  });
  if (!ids.empty()) emit(out, ids);
  return Status::OK();
}

size_t RowTable::RawBytes() const {
  return pages_.size() * kRowsPerRowPage * fixed_row_width_ + heap_bytes_;
}

}  // namespace dashdb
