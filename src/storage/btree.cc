#include "storage/btree.h"

#include <algorithm>
#include <cassert>

namespace dashdb {

namespace {
constexpr size_t kMaxKeys = 64;  // fanout
}

struct BPlusTree::Node {
  bool leaf = true;
  std::vector<int64_t> keys;
  // Leaf payload.
  std::vector<uint64_t> vals;
  Node* next = nullptr;  // leaf chain for range scans
  // Internal payload: children.size() == keys.size() + 1.
  std::vector<std::unique_ptr<Node>> children;
};

struct BPlusTree::SplitResult {
  bool split = false;
  int64_t sep_key = 0;
  std::unique_ptr<Node> right;
};

BPlusTree::BPlusTree() : root_(std::make_unique<Node>()) {}
BPlusTree::~BPlusTree() = default;

BPlusTree::SplitResult BPlusTree::InsertRec(Node* node, int64_t key,
                                            uint64_t row_id) {
  if (node->leaf) {
    auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key);
    size_t pos = it - node->keys.begin();
    node->keys.insert(it, key);
    node->vals.insert(node->vals.begin() + pos, row_id);
    if (node->keys.size() <= kMaxKeys) return {};
    // Split leaf in half; separator = first key of right node.
    auto right = std::make_unique<Node>();
    right->leaf = true;
    size_t mid = node->keys.size() / 2;
    right->keys.assign(node->keys.begin() + mid, node->keys.end());
    right->vals.assign(node->vals.begin() + mid, node->vals.end());
    node->keys.resize(mid);
    node->vals.resize(mid);
    right->next = node->next;
    node->next = right.get();
    SplitResult r;
    r.split = true;
    r.sep_key = right->keys.front();
    r.right = std::move(right);
    return r;
  }
  // Internal: descend into child i where key < keys[i] picks children[i].
  size_t i = std::upper_bound(node->keys.begin(), node->keys.end(), key) -
             node->keys.begin();
  SplitResult child_split = InsertRec(node->children[i].get(), key, row_id);
  if (!child_split.split) return {};
  node->keys.insert(node->keys.begin() + i, child_split.sep_key);
  node->children.insert(node->children.begin() + i + 1,
                        std::move(child_split.right));
  if (node->keys.size() <= kMaxKeys) return {};
  // Split internal: middle key moves up.
  auto right = std::make_unique<Node>();
  right->leaf = false;
  size_t mid = node->keys.size() / 2;
  int64_t up = node->keys[mid];
  right->keys.assign(node->keys.begin() + mid + 1, node->keys.end());
  for (size_t k = mid + 1; k < node->children.size(); ++k) {
    right->children.push_back(std::move(node->children[k]));
  }
  node->keys.resize(mid);
  node->children.resize(mid + 1);
  SplitResult r;
  r.split = true;
  r.sep_key = up;
  r.right = std::move(right);
  return r;
}

void BPlusTree::Insert(int64_t key, uint64_t row_id) {
  SplitResult r = InsertRec(root_.get(), key, row_id);
  if (r.split) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->keys.push_back(r.sep_key);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(r.right));
    root_ = std::move(new_root);
    ++height_;
  }
  ++size_;
}

void BPlusTree::SeekRange(
    int64_t lo, int64_t hi,
    const std::function<void(int64_t, uint64_t)>& fn) const {
  if (lo > hi) return;
  // Descend to the leftmost leaf that could contain lo. lower_bound (not
  // upper_bound) so that a separator equal to lo sends us LEFT — duplicates
  // of lo may span the split point.
  const Node* node = root_.get();
  while (!node->leaf) {
    size_t i = std::lower_bound(node->keys.begin(), node->keys.end(), lo) -
               node->keys.begin();
    node = node->children[i].get();
  }
  // Walk the leaf chain.
  while (node) {
    auto it = std::lower_bound(node->keys.begin(), node->keys.end(), lo);
    for (size_t i = it - node->keys.begin(); i < node->keys.size(); ++i) {
      if (node->keys[i] > hi) return;
      fn(node->keys[i], node->vals[i]);
    }
    node = node->next;
  }
}

std::vector<uint64_t> BPlusTree::Lookup(int64_t key) const {
  std::vector<uint64_t> out;
  SeekRange(key, key, [&](int64_t, uint64_t v) { out.push_back(v); });
  return out;
}

}  // namespace dashdb
