#include "storage/column_table.h"

#include <algorithm>
#include <array>
#include <cassert>

#include "compression/dict_codes.h"
#include "compression/stats.h"

namespace dashdb {

namespace {

/// Code width a value of frequency rank `rank` would get (partition
/// schedule from compression/frequency_dict.h).
int WidthForRank(size_t rank) {
  size_t cap = 0;
  for (int p = 0; p < kNumPartitionWidths; ++p) {
    cap += size_t{1} << kPartitionWidths[p];
    if (rank < cap) return kPartitionWidths[p];
  }
  return kPartitionWidths[kNumPartitionWidths - 1];
}

size_t StridesInPage(size_t page_rows) {
  return (page_rows + kStrideRows - 1) / kStrideRows;
}

/// Uncompressed footprint of a batch under this schema.
size_t BatchRawBytes(const TableSchema& schema, const RowBatch& data) {
  size_t total = 0;
  for (int c = 0; c < schema.num_columns(); ++c) {
    TypeId t = schema.column(c).type;
    if (t == TypeId::kVarchar) {
      for (const auto& s : data.columns[c].strings()) total += s.size() + 2;
    } else {
      total += FixedWidth(t) * data.columns[c].size();
    }
  }
  return total;
}

}  // namespace

ColumnTable::ColumnTable(TableSchema schema, uint64_t table_id)
    : schema_(std::move(schema)), table_id_(table_id) {
  columns_.resize(schema_.num_columns());
  unique_ints_.resize(schema_.num_columns());
  unique_strs_.resize(schema_.num_columns());
  tail_.columns.reserve(schema_.num_columns());
  for (int i = 0; i < schema_.num_columns(); ++i) {
    tail_.columns.emplace_back(schema_.column(i).type);
  }
}

void ColumnTable::Truncate() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& c : columns_) {
    c.int_dict.reset();
    c.str_dict.reset();
    c.pages.clear();
    c.int_synopsis = IntSynopsis();
    c.str_synopsis = StringSynopsis();
    c.encoding = PageEncoding::kRawInt;
  }
  num_pages_ = 0;
  row_count_ = 0;
  deleted_count_ = 0;
  deleted_.Resize(0);
  page_start_.clear();
  page_rows_.clear();
  page_first_stride_.clear();
  num_strides_ = 0;
  raw_bytes_ = 0;
  for (auto& c : tail_.columns) c.Clear();
  for (auto& s : unique_ints_) s.clear();
  for (auto& s : unique_strs_) s.clear();
}

Status ColumnTable::CheckUnique(const RowBatch& data) const {
  for (int c = 0; c < schema_.num_columns(); ++c) {
    if (!schema_.column(c).unique) continue;
    const ColumnVector& cv = data.columns[c];
    if (schema_.column(c).type == TypeId::kVarchar) {
      std::unordered_set<std::string> batch_seen;
      for (size_t i = 0; i < cv.size(); ++i) {
        if (cv.IsNull(i)) continue;
        const std::string& v = cv.GetString(i);
        if (unique_strs_[c].count(v) || !batch_seen.insert(v).second) {
          return Status::AlreadyExists("unique violation on column " +
                                       schema_.column(c).name);
        }
      }
    } else {
      std::unordered_set<int64_t> batch_seen;
      for (size_t i = 0; i < cv.size(); ++i) {
        if (cv.IsNull(i)) continue;
        int64_t v = schema_.column(c).type == TypeId::kDouble
                        ? static_cast<int64_t>(cv.GetDouble(i) * 1e6)
                        : cv.GetInt(i);
        if (unique_ints_[c].count(v) || !batch_seen.insert(v).second) {
          return Status::AlreadyExists("unique violation on column " +
                                       schema_.column(c).name);
        }
      }
    }
  }
  return Status::OK();
}

void ColumnTable::IndexUnique(const RowBatch& data) {
  for (int c = 0; c < schema_.num_columns(); ++c) {
    if (!schema_.column(c).unique) continue;
    const ColumnVector& cv = data.columns[c];
    for (size_t i = 0; i < cv.size(); ++i) {
      if (cv.IsNull(i)) continue;
      if (schema_.column(c).type == TypeId::kVarchar) {
        unique_strs_[c].insert(cv.GetString(i));
      } else if (schema_.column(c).type == TypeId::kDouble) {
        unique_ints_[c].insert(static_cast<int64_t>(cv.GetDouble(i) * 1e6));
      } else {
        unique_ints_[c].insert(cv.GetInt(i));
      }
    }
  }
}

void ColumnTable::ChooseEncoding(int col, const RowBatch& data) {
  ColumnData& cd = columns_[col];
  const ColumnVector& cv = data.columns[col];
  TypeId t = schema_.column(col).type;
  const BitVector* nulls = cv.has_nulls() ? &cv.nulls() : nullptr;
  if (t == TypeId::kDouble) {
    cd.encoding = PageEncoding::kRawDouble;
    return;
  }
  if (t == TypeId::kVarchar) {
    StringColumnStats st =
        ComputeStringStats(cv.strings().data(), cv.size(), nulls);
    if (!st.ndv_exact || st.ndv == 0) {
      cd.encoding = PageEncoding::kRawString;
      return;
    }
    // Candidate encodings (paper II.B.1 "optimized globally per column"):
    // single order-preserving dictionary (row-order codes) vs frequency
    // partitioned cells (short codes for hot values + tuple map).
    size_t non_null = st.count - st.null_count;
    double dict_per_value =
        BitWidthFor(st.ndv > 1 ? st.ndv - 1 : 1);
    double freq_bits = 0;
    for (size_t r = 0; r < st.freq_desc.size(); ++r) {
      freq_bits +=
          static_cast<double>(st.freq_desc[r].second) * WidthForRank(r);
    }
    double freq_per_value =
        non_null == 0 ? 1e30
                      : freq_bits / non_null + BitWidthFor(kPageRows - 1);
    if (freq_per_value < dict_per_value) {
      cd.str_dict = std::make_shared<StringFrequencyDict>(
          StringFrequencyDict::Build(st.freq_desc));
      cd.encoding = PageEncoding::kFrequencyString;
    } else {
      cd.str_dict = std::make_shared<StringFrequencyDict>(
          StringFrequencyDict::BuildSinglePartition(st.freq_desc));
      cd.encoding = PageEncoding::kDictString;
    }
    return;
  }
  IntColumnStats st = ComputeIntStats(cv.ints().data(), cv.size(), nulls);
  size_t non_null = st.count - st.null_count;
  if (!st.ndv_exact || non_null == 0) {
    cd.encoding = PageEncoding::kFor;
    return;
  }
  // Global optimization (paper II.B.1): three candidates, lowest predicted
  // bits/value wins (dictionary amortized over the column):
  //   FOR        width(max - min), no dictionary
  //   kDictInt   width(ndv), single order-preserving dictionary, row order
  //   kFrequency skew-weighted short codes + per-cell tuple map
  double for_per_value = BitWidthFor(static_cast<uint64_t>(st.max) -
                                     static_cast<uint64_t>(st.min));
  double dict_amortized = 16.0 * 8.0 * static_cast<double>(st.ndv) / non_null;
  double dict_per_value =
      BitWidthFor(st.ndv > 1 ? st.ndv - 1 : 1) + dict_amortized;
  double freq_bits = 0;
  for (size_t r = 0; r < st.freq_desc.size(); ++r) {
    freq_bits += static_cast<double>(st.freq_desc[r].second) * WidthForRank(r);
  }
  double freq_per_value = freq_bits / non_null + BitWidthFor(kPageRows - 1) +
                          dict_amortized;
  if (for_per_value <= dict_per_value && for_per_value <= freq_per_value) {
    cd.encoding = PageEncoding::kFor;
  } else if (dict_per_value <= freq_per_value) {
    cd.int_dict = std::make_shared<IntFrequencyDict>(
        IntFrequencyDict::BuildSinglePartition(st.freq_desc));
    cd.encoding = PageEncoding::kDictInt;
  } else {
    cd.int_dict = std::make_shared<IntFrequencyDict>(
        IntFrequencyDict::Build(st.freq_desc));
    cd.encoding = PageEncoding::kFrequencyInt;
  }
}

void ColumnTable::EncodePageRun(const RowBatch& data, size_t begin, size_t n) {
  page_start_.push_back(row_count_);
  page_rows_.push_back(static_cast<uint32_t>(n));
  page_first_stride_.push_back(num_strides_);
  for (int c = 0; c < schema_.num_columns(); ++c) {
    ColumnData& cd = columns_[c];
    const ColumnVector& cv = data.columns[c];
    TypeId t = schema_.column(c).type;
    const BitVector* nulls = cv.has_nulls() ? &cv.nulls() : nullptr;
    std::unique_ptr<ColumnPage> page;
    if (t == TypeId::kDouble) {
      page = BuildDoublePage(cv.doubles().data() + begin, n, nulls, begin);
    } else if (t == TypeId::kVarchar) {
      page = BuildStringPage(cv.strings().data() + begin, n, nulls, begin,
                             cd.str_dict.get());
      for (size_t s = begin; s < begin + n; s += kStrideRows) {
        size_t sn = std::min(kStrideRows, begin + n - s);
        cd.str_synopsis.AddStride(cv.strings().data() + s, sn, nulls, s);
      }
    } else {
      page = BuildIntPage(cv.ints().data() + begin, n, nulls, begin,
                          cd.int_dict.get());
    }
    if (t != TypeId::kVarchar && t != TypeId::kDouble) {
      for (size_t s = begin; s < begin + n; s += kStrideRows) {
        size_t sn = std::min(kStrideRows, begin + n - s);
        cd.int_synopsis.AddStride(cv.ints().data() + s, sn, nulls, s);
      }
    }
    cd.pages.push_back(std::move(page));
  }
  num_strides_ += StridesInPage(n);
  ++num_pages_;
  row_count_ += n;
  deleted_.GrowTo(row_count_);
}

Status ColumnTable::Load(const RowBatch& data) {
  if (static_cast<int>(data.columns.size()) != schema_.num_columns()) {
    return Status::InvalidArgument("Load: column count mismatch");
  }
  Truncate();
  std::lock_guard<std::mutex> lk(mu_);
  DASHDB_RETURN_IF_ERROR(CheckUnique(data));
  IndexUnique(data);
  raw_bytes_ += BatchRawBytes(schema_, data);
  const size_t n = data.num_rows();
  for (int c = 0; c < schema_.num_columns(); ++c) ChooseEncoding(c, data);
  for (size_t begin = 0; begin < n; begin += kPageRows) {
    EncodePageRun(data, begin, std::min(kPageRows, n - begin));
  }
  return Status::OK();
}

Status ColumnTable::Append(const RowBatch& data) {
  if (static_cast<int>(data.columns.size()) != schema_.num_columns()) {
    return Status::InvalidArgument("Append: column count mismatch");
  }
  std::lock_guard<std::mutex> lk(mu_);
  DASHDB_RETURN_IF_ERROR(CheckUnique(data));
  IndexUnique(data);
  raw_bytes_ += BatchRawBytes(schema_, data);
  const size_t n = data.num_rows();
  for (int c = 0; c < schema_.num_columns(); ++c) {
    for (size_t i = 0; i < n; ++i) {
      tail_.columns[c].AppendFrom(data.columns[c], i);
    }
  }
  row_count_ += n;
  deleted_.GrowTo(row_count_);
  MaybeFlushTail();
  return Status::OK();
}

Status ColumnTable::AppendRow(const std::vector<Value>& row) {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::InvalidArgument("AppendRow: column count mismatch");
  }
  RowBatch b;
  b.columns.reserve(row.size());
  for (int c = 0; c < schema_.num_columns(); ++c) {
    ColumnVector cv(schema_.column(c).type);
    cv.AppendValue(row[c]);
    b.columns.push_back(std::move(cv));
  }
  return Append(b);
}

void ColumnTable::MaybeFlushTail() {
  while (tail_.num_rows() >= kPageRows) {
    // Lazily build dictionaries from the first full page when the table was
    // never bulk-loaded.
    bool need_choice = num_pages_ == 0 && !columns_.empty() &&
                       columns_[0].pages.empty() && !columns_[0].int_dict &&
                       !columns_[0].str_dict;
    if (need_choice) {
      for (int c = 0; c < schema_.num_columns(); ++c) {
        ChooseEncoding(c, tail_);
      }
    }
    // EncodePageRun bumps row_count_, but tail rows were already counted at
    // Append time; compensate.
    size_t saved = row_count_;
    row_count_ = page_start_.empty()
                     ? 0
                     : page_start_.back() + page_rows_.back();
    EncodePageRun(tail_, 0, kPageRows);
    row_count_ = saved;
    deleted_.GrowTo(row_count_);
    // Shift the remainder to the front of the tail.
    RowBatch rest;
    for (int c = 0; c < schema_.num_columns(); ++c) {
      ColumnVector cv(schema_.column(c).type);
      for (size_t i = kPageRows; i < tail_.columns[c].size(); ++i) {
        cv.AppendFrom(tail_.columns[c], i);
      }
      rest.columns.push_back(std::move(cv));
    }
    tail_ = std::move(rest);
  }
}

Status ColumnTable::DeleteRows(const std::vector<uint64_t>& row_ids) {
  std::lock_guard<std::mutex> lk(mu_);
  for (uint64_t id : row_ids) {
    if (id >= row_count_) {
      return Status::OutOfRange("row id out of range");
    }
    if (deleted_.Get(id)) continue;
    // Release unique keys so the executor's delete+insert UPDATE works.
    for (int c = 0; c < schema_.num_columns(); ++c) {
      if (!schema_.column(c).unique) continue;
      Value v = GetCellLocked(id, c);
      if (v.is_null()) continue;
      if (schema_.column(c).type == TypeId::kVarchar) {
        unique_strs_[c].erase(v.AsString());
      } else if (schema_.column(c).type == TypeId::kDouble) {
        unique_ints_[c].erase(static_cast<int64_t>(v.AsDouble() * 1e6));
      } else {
        unique_ints_[c].erase(v.AsInt());
      }
    }
    deleted_.Set(id);
    ++deleted_count_;
  }
  return Status::OK();
}

bool ColumnTable::IsDeleted(uint64_t row_id) const {
  return row_id < deleted_.size() && deleted_.Get(row_id);
}

Value ColumnTable::GetCell(uint64_t row_id, int col) const {
  std::lock_guard<std::mutex> lk(mu_);
  return GetCellLocked(row_id, col);
}

Value ColumnTable::GetCellLocked(uint64_t row_id, int col) const {
  TypeId t = schema_.column(col).type;
  // Tail region?
  size_t tail_start = page_start_.empty()
                          ? 0
                          : page_start_.back() + page_rows_.back();
  if (row_id >= tail_start) {
    return tail_.columns[col].GetValue(row_id - tail_start);
  }
  // Find owning page.
  size_t p = std::upper_bound(page_start_.begin(), page_start_.end(), row_id) -
             page_start_.begin() - 1;
  size_t off = row_id - page_start_[p];
  const ColumnData& cd = columns_[col];
  const ColumnPage& page = *cd.pages[p];
  BitVector sel(page.num_rows);
  sel.Set(off);
  ColumnVector out(t);
  if (t == TypeId::kDouble) {
    DecodeDoublePage(page, &sel, &out);
  } else if (t == TypeId::kVarchar) {
    DecodeStringPage(page, cd.str_dict.get(), &sel, &out);
  } else {
    DecodeIntPage(page, cd.int_dict.get(), &sel, &out);
  }
  return out.GetValue(0);
}

void ColumnTable::ChargePool(BufferPool* pool, int col, size_t page_no) const {
  PageId id{table_id_, static_cast<uint32_t>(col),
            static_cast<uint32_t>(page_no)};
  size_t bytes = columns_[col].pages[page_no]->ByteSize();
  // ChargePool is reached only from sequential scan paths (page scans,
  // COUNT fast path); random point access (GetCell) decodes without
  // charging. Tag the access so LRU pools admit it scan-resistantly.
  if (pool) pool->Access(id, bytes, /*sequential_scan=*/true);
  if (io_sink_ && io_model_.enabled) {
    // Modeled storage read on a cache miss (hits are free).
    bool hit = io_pool_ && io_pool_->Access(id, bytes, /*sequential_scan=*/true);
    if (!hit) {
      io_sink_->fetch_add(io_model_.CostNanos(bytes, /*seeks=*/1));
    }
  }
}

bool ColumnTable::ApplySynopsis(const std::vector<ColumnPredicate>& preds,
                                size_t page_no, BitVector* match,
                                ScanStats* stats) const {
  const size_t n_rows = page_rows_[page_no];
  const size_t first = page_first_stride_[page_no];
  const size_t n_strides = StridesInPage(n_rows);
  for (const auto& pred : preds) {
    TypeId t = schema_.column(pred.column).type;
    const ColumnData& cd = columns_[pred.column];
    // First pass: decide per-stride skippability (metadata only).
    bool page_alive = false;
    bool any_skipped = false;
    std::array<bool, 8> skip{};  // pages hold at most 4 strides; headroom
    for (size_t s = 0; s < n_strides; ++s) {
      bool may = true;
      if (t == TypeId::kVarchar) {
        if (first + s < cd.str_synopsis.num_strides() &&
            (pred.str_range.lo || pred.str_range.hi)) {
          const std::string* lo =
              pred.str_range.lo ? &*pred.str_range.lo : nullptr;
          const std::string* hi =
              pred.str_range.hi ? &*pred.str_range.hi : nullptr;
          may = cd.str_synopsis.MayContain(
              first + s, lo, pred.str_range.lo_incl, hi,
              pred.str_range.hi_incl);
        }
      } else if (t != TypeId::kDouble) {
        if (first + s < cd.int_synopsis.num_strides() &&
            (pred.int_range.lo || pred.int_range.hi)) {
          const int64_t* lo = pred.int_range.lo ? &*pred.int_range.lo : nullptr;
          const int64_t* hi = pred.int_range.hi ? &*pred.int_range.hi : nullptr;
          may = cd.int_synopsis.MayContain(
              first + s, lo, pred.int_range.lo_incl, hi, pred.int_range.hi_incl);
        }
      }
      skip[s] = !may;
      page_alive |= may;
      any_skipped |= !may;
      if (stats && !may) ++stats->strides_skipped;
    }
    if (!page_alive) return false;  // entire page skippable, no bit work
    if (any_skipped) {
      for (size_t s = 0; s < n_strides; ++s) {
        if (!skip[s]) continue;
        size_t sb = s * kStrideRows;
        match->ClearRange(sb, std::min(n_rows, sb + kStrideRows));
      }
    }
  }
  return true;
}

void ColumnTable::EvalPredsOnPage(const std::vector<ColumnPredicate>& preds,
                                  size_t page_no, const ScanOptions& opts,
                                  BitVector* match) const {
  const size_t n_rows = page_rows_[page_no];
  for (const auto& pred : preds) {
    if (!match->AnySet()) return;
    const ColumnData& cd = columns_[pred.column];
    const ColumnPage& page = *cd.pages[page_no];
    ChargePool(opts.pool, pred.column, page_no);
    TypeId t = schema_.column(pred.column).type;
    BitVector m(n_rows);
    if (t == TypeId::kVarchar) {
      EvalStringRange(page, cd.str_dict.get(), pred.str_range, opts.use_swar,
                      opts.operate_on_compressed, &m);
    } else if (t == TypeId::kDouble) {
      EvalDoubleRange(page, pred.dlo.value_or(0), pred.dlo.has_value(),
                      pred.dlo_incl, pred.dhi.value_or(0),
                      pred.dhi.has_value(), pred.dhi_incl, &m);
    } else {
      EvalIntRange(page, cd.int_dict.get(), pred.int_range, opts.use_swar,
                   opts.operate_on_compressed, &m);
    }
    match->And(m);
  }
}

void ColumnTable::DecodeProjection(const std::vector<int>& projection,
                                   size_t page_no, const BitVector& sel,
                                   bool attach_codes, RowBatch* out) const {
  for (size_t k = 0; k < projection.size(); ++k) {
    int c = projection[k];
    const ColumnData& cd = columns_[c];
    const ColumnPage& page = *cd.pages[page_no];
    TypeId t = schema_.column(c).type;
    ColumnVector* cv = &out->columns[k];
    const bool was_empty = cv->size() == 0;
    if (t == TypeId::kDouble) {
      DecodeDoublePage(page, &sel, cv);
    } else if (t == TypeId::kVarchar) {
      DecodeStringPage(page, cd.str_dict.get(), &sel, cv);
    } else {
      DecodeIntPage(page, cd.int_dict.get(), &sel, cv);
    }
    // Keep the dictionary codes alongside the decoded values when they stay
    // row-aligned: every page row selected, single-partition row-order
    // codes, no exception rows. Appends reset the sidecar, so set it last.
    if (attach_codes && was_empty && page.exc_offsets.empty() &&
        page.ordered_codes.size() >= cv->size() && cv->size() == page.num_rows) {
      if (page.encoding == PageEncoding::kDictInt && cd.int_dict &&
          cd.int_dict->is_single_partition()) {
        auto dc = std::make_shared<DictCodes>();
        dc->codes = page.ordered_codes;
        dc->int_dict = cd.int_dict;
        cv->set_dict_codes(std::move(dc));
      } else if (page.encoding == PageEncoding::kDictString && cd.str_dict &&
                 cd.str_dict->is_single_partition()) {
        auto dc = std::make_shared<DictCodes>();
        dc->codes = page.ordered_codes;
        dc->str_dict = cd.str_dict;
        cv->set_dict_codes(std::move(dc));
      }
    }
  }
}

namespace {
/// True when a tail/value-domain row satisfies one predicate.
bool RowMatches(const ColumnPredicate& pred, TypeId t, const ColumnVector& cv,
                size_t i) {
  if (cv.IsNull(i)) return false;
  if (t == TypeId::kVarchar) {
    const std::string& v = cv.GetString(i);
    const auto& p = pred.str_range;
    if (p.lo && (p.lo_incl ? v < *p.lo : v <= *p.lo)) return false;
    if (p.hi && (p.hi_incl ? v > *p.hi : v >= *p.hi)) return false;
    return true;
  }
  if (t == TypeId::kDouble) {
    double v = cv.GetDouble(i);
    if (pred.dlo && (pred.dlo_incl ? v < *pred.dlo : v <= *pred.dlo))
      return false;
    if (pred.dhi && (pred.dhi_incl ? v > *pred.dhi : v >= *pred.dhi))
      return false;
    return true;
  }
  int64_t v = cv.GetInt(i);
  const auto& p = pred.int_range;
  if (p.lo && (p.lo_incl ? v < *p.lo : v <= *p.lo)) return false;
  if (p.hi && (p.hi_incl ? v > *p.hi : v >= *p.hi)) return false;
  return true;
}
}  // namespace

Status ColumnTable::ScanPage(size_t page_no,
                             const std::vector<ColumnPredicate>& preds,
                             const std::vector<int>& projection,
                             const ScanOptions& opts, RowBatch* out,
                             std::vector<uint64_t>* ids,
                             ScanStats* stats) const {
  for (const auto& p : preds) {
    if (p.column < 0 || p.column >= schema_.num_columns()) {
      return Status::InvalidArgument("predicate column out of range");
    }
  }
  for (int c : projection) {
    if (c < 0 || c >= schema_.num_columns()) {
      return Status::InvalidArgument("projection column out of range");
    }
  }
  if (page_no > num_pages_) return Status::OutOfRange("page out of range");
  if (page_no == num_pages_) {
    // Tail region (uncompressed, value-domain predicates).
    const size_t tail_n = tail_.num_rows();
    if (tail_n == 0) return Status::OK();
    if (io_sink_ && io_model_.enabled) {
      io_sink_->fetch_add(io_model_.CostNanos(
          tail_n * 8 * (preds.size() + projection.size() + 1)));
    }
    const size_t tail_start = row_count_ - tail_n;
    size_t matched = 0;
    for (size_t i = 0; i < tail_n; ++i) {
      if (deleted_.Get(tail_start + i)) continue;
      bool ok = true;
      for (const auto& pred : preds) {
        if (!RowMatches(pred, schema_.column(pred.column).type,
                        tail_.columns[pred.column], i)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      for (size_t k = 0; k < projection.size(); ++k) {
        out->columns[k].AppendFrom(tail_.columns[projection[k]], i);
      }
      if (ids) ids->push_back(tail_start + i);
      ++matched;
    }
    if (stats) stats->rows_matched += matched;
    return Status::OK();
  }
  const size_t p = page_no;
  const size_t n_rows = page_rows_[p];
  BitVector match(n_rows, true);
  if (opts.use_synopsis) {
    if (!ApplySynopsis(preds, p, &match, stats)) {
      if (stats) ++stats->pages_skipped;
      return Status::OK();
    }
  }
  if (stats) ++stats->pages_visited;
  EvalPredsOnPage(preds, p, opts, &match);
  const size_t base = page_start_[p];
  if (deleted_count_ > 0) {
    for (size_t i = 0; i < n_rows; ++i) {
      if (match.Get(i) && deleted_.Get(base + i)) match.Clear(i);
    }
  }
  size_t hits = match.CountSet();
  if (hits == 0) return Status::OK();
  if (stats) stats->rows_matched += hits;
  for (int c : projection) ChargePool(opts.pool, c, p);
  DecodeProjection(projection, p, match,
                   opts.operate_on_compressed && hits == n_rows, out);
  if (ids) {
    ids->reserve(ids->size() + hits);
    match.ForEachSet([&](size_t i) { ids->push_back(base + i); });
  }
  return Status::OK();
}

Status ColumnTable::Scan(
    const std::vector<ColumnPredicate>& preds,
    const std::vector<int>& projection, const ScanOptions& opts,
    const std::function<void(RowBatch&, const std::vector<uint64_t>&)>& emit,
    ScanStats* stats) const {
  for (size_t p = 0; p <= num_pages_; ++p) {
    RowBatch out;
    out.columns.reserve(projection.size());
    for (int c : projection) out.columns.emplace_back(schema_.column(c).type);
    std::vector<uint64_t> ids;
    DASHDB_RETURN_IF_ERROR(
        ScanPage(p, preds, projection, opts, &out, &ids, stats));
    if (!ids.empty() || out.num_rows() > 0) emit(out, ids);
  }
  return Status::OK();
}

Result<size_t> ColumnTable::CountRows(const std::vector<ColumnPredicate>& preds,
                                      const ScanOptions& opts,
                                      ScanStats* stats) const {
  for (const auto& p : preds) {
    if (p.column < 0 || p.column >= schema_.num_columns()) {
      return Status::InvalidArgument("predicate column out of range");
    }
  }
  // SWAR count eligibility: one predicate over an integer-backed column,
  // with compressed-domain SWAR enabled. Eligible pages are counted
  // straight off the packed codes — no match bitmap, no decode.
  const bool swar_eligible =
      opts.use_swar && opts.operate_on_compressed && preds.size() == 1 &&
      schema_.column(preds[0].column).type != TypeId::kVarchar &&
      schema_.column(preds[0].column).type != TypeId::kDouble;
  size_t count = 0;
  // Bitmap fallback for pages the fast path cannot handle (multi-predicate,
  // string/double predicates, deleted rows, the uncompressed tail).
  auto fallback_page = [&](size_t p) -> Status {
    RowBatch scratch;
    ScanStats ps;
    DASHDB_RETURN_IF_ERROR(
        ScanPage(p, preds, {}, opts, &scratch, nullptr, &ps));
    count += ps.rows_matched;
    if (stats) {
      stats->pages_visited += ps.pages_visited;
      stats->pages_skipped += ps.pages_skipped;
      stats->strides_skipped += ps.strides_skipped;
      stats->rows_matched += ps.rows_matched;
    }
    return Status::OK();
  };
  for (size_t p = 0; p < num_pages_; ++p) {
    const size_t base = page_start_[p];
    const size_t n_rows = page_rows_[p];
    const size_t del_in_page =
        deleted_count_ > 0 ? deleted_.CountSetRange(base, base + n_rows) : 0;
    if (preds.empty()) {
      // Pure row count: page metadata minus deletes; no page data touched.
      const size_t live = n_rows - del_in_page;
      count += live;
      if (stats) {
        ++stats->pages_visited;
        stats->rows_matched += live;
      }
      continue;
    }
    const ColumnPredicate& pred = preds[0];
    const ColumnPage* page =
        swar_eligible ? columns_[pred.column].pages[p].get() : nullptr;
    const bool enc_ok =
        page && (page->encoding == PageEncoding::kFrequencyInt ||
                 page->encoding == PageEncoding::kDictInt ||
                 page->encoding == PageEncoding::kFor ||
                 page->encoding == PageEncoding::kRawInt);
    if (!enc_ok || del_in_page > 0) {
      DASHDB_RETURN_IF_ERROR(fallback_page(p));
      continue;
    }
    const ColumnData& cd = columns_[pred.column];
    if (opts.use_synopsis && (pred.int_range.lo || pred.int_range.hi)) {
      // Metadata-only page skip, mirroring ApplySynopsis. A partial skip
      // changes nothing: skipped strides contain no matches, so the
      // whole-page code count already yields the right answer.
      const size_t first = page_first_stride_[p];
      const size_t n_strides = StridesInPage(n_rows);
      const int64_t* lo = pred.int_range.lo ? &*pred.int_range.lo : nullptr;
      const int64_t* hi = pred.int_range.hi ? &*pred.int_range.hi : nullptr;
      bool page_alive = false;
      size_t skipped = 0;
      for (size_t s = 0; s < n_strides; ++s) {
        bool may = true;
        if (first + s < cd.int_synopsis.num_strides()) {
          may = cd.int_synopsis.MayContain(first + s, lo,
                                           pred.int_range.lo_incl, hi,
                                           pred.int_range.hi_incl);
        }
        page_alive |= may;
        if (!may) ++skipped;
      }
      if (stats) stats->strides_skipped += skipped;
      if (!page_alive) {
        if (stats) ++stats->pages_skipped;
        continue;
      }
    }
    ChargePool(opts.pool, pred.column, p);
    size_t hits = CountIntRange(*page, cd.int_dict.get(), pred.int_range);
    count += hits;
    if (stats) {
      ++stats->pages_visited;
      stats->rows_matched += hits;
    }
  }
  // Tail rows always go through the value-domain row check.
  DASHDB_RETURN_IF_ERROR(fallback_page(num_pages_));
  return count;
}

size_t ColumnTable::CompressedBytes() const {
  size_t total = 0;
  for (const auto& cd : columns_) {
    for (const auto& p : cd.pages) total += p->ByteSize();
    if (cd.int_dict) total += cd.int_dict->ByteSize();
    if (cd.str_dict) total += cd.str_dict->ByteSize();
  }
  return total;
}

size_t ColumnTable::RawBytes() const { return raw_bytes_; }

size_t ColumnTable::SynopsisBytes() const {
  size_t total = 0;
  for (const auto& cd : columns_) {
    total += cd.int_synopsis.CompressedByteSize();
  }
  return total;
}

PageEncoding ColumnTable::column_encoding(int col) const {
  return columns_[col].encoding;
}

ColumnStatsView ColumnTable::ColumnStats(int col) const {
  std::lock_guard<std::mutex> lk(mu_);
  ColumnStatsView out;
  out.rows = row_count_ - deleted_count_;
  const ColumnData& cd = columns_[col];
  if (cd.int_dict) out.distinct = cd.int_dict->total_values();
  if (cd.str_dict) out.distinct = cd.str_dict->total_values();
  if (schema_.column(col).type == TypeId::kVarchar) {
    out.has_str_range = cd.str_synopsis.GlobalRange(&out.str_min, &out.str_max);
    out.null_count = cd.str_synopsis.TotalNulls();
  } else {
    out.has_int_range = cd.int_synopsis.GlobalRange(&out.int_min, &out.int_max);
    out.null_count = cd.int_synopsis.TotalNulls();
  }
  // The tail region has no synopsis strides yet; fold in its null count so
  // non-null fractions stay honest on trickle-insert-heavy tables.
  const ColumnVector& tail_col = tail_.columns[col];
  for (size_t i = 0; i < tail_col.size(); ++i) {
    if (tail_col.IsNull(i)) ++out.null_count;
  }
  return out;
}

}  // namespace dashdb
