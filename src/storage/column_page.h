// Column-organized storage pages (paper II.B.3).
//
// Each page holds kPageRows values of ONE column. Frequency-encoded pages
// group tuples into per-partition *cells*: all values belonging to
// frequency partition p are bit-packed together at p's code width, along
// with a bit-packed tuple map (original row offsets), so predicates run on
// whole packed words per cell (SWAR) and entire cells are skipped when the
// partition's dictionary slice cannot satisfy the predicate. High-cardinality
// numeric pages use minus/FOR encoding in row order. Exceptions (values
// absent from the column dictionary, e.g. post-load inserts) live in a raw
// exception cell.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bitutil.h"
#include "common/column_vector.h"
#include "compression/for_encoding.h"
#include "compression/frequency_dict.h"

namespace dashdb {

/// Rows per column page (4 synopsis strides of 1024).
inline constexpr size_t kPageRows = 4096;

enum class PageEncoding : uint8_t {
  kFrequencyInt = 0,   ///< per-partition cells + tuple map
  kFrequencyString,
  kDictInt,            ///< single-partition dict codes in row order
  kDictString,
  kFor,
  kRawInt,
  kRawDouble,
  kRawString,
};

/// Inclusive/exclusive range predicate over the integer domain; either
/// bound optional. Equality is lo == hi (both inclusive).
struct IntRangePred {
  std::optional<int64_t> lo;
  bool lo_incl = true;
  std::optional<int64_t> hi;
  bool hi_incl = true;
};

/// Same over strings.
struct StrRangePred {
  std::optional<std::string> lo;
  bool lo_incl = true;
  std::optional<std::string> hi;
  bool hi_incl = true;
};

/// One column page. A tagged struct rather than a class hierarchy: pages
/// are bulk data, and the executor switches on the encoding once per page.
struct ColumnPage {
  PageEncoding encoding = PageEncoding::kRawInt;
  uint32_t num_rows = 0;

  bool has_nulls = false;
  BitVector nulls;  ///< sized num_rows when has_nulls

  /// Frequency encoding: one cell per populated partition.
  struct Cell {
    uint8_t partition = 0;
    BitPackedArray codes;    ///< partition-width codes, cell order
    BitPackedArray offsets;  ///< original row offsets, width log2(num_rows)
  };
  std::vector<Cell> cells;

  /// Exception cell: values not in the column dictionary.
  std::vector<int64_t> exc_ints;
  std::vector<std::string> exc_strs;
  std::vector<uint32_t> exc_offsets;

  /// kDict* payload: single-partition dictionary codes in row order
  /// (NULL and exception rows hold code 0, masked on eval/decode).
  BitPackedArray ordered_codes;

  /// kFor payload.
  ForEncoded fo;

  /// Raw payloads.
  std::vector<int64_t> raw_ints;
  std::vector<double> raw_doubles;
  std::vector<std::string> raw_strings;

  /// Compressed footprint in bytes (buffer-pool charge and compression
  /// accounting). Excludes the column-level dictionary, which is shared.
  size_t ByteSize() const;
};

/// Builds a page over integer-domain values[0..n). When `dict` is non-null
/// the page is frequency-encoded (values missing from the dictionary go to
/// the exception cell); otherwise FOR-encoded. `nulls`/`null_offset`
/// describe which of these rows are NULL (may be null).
std::unique_ptr<ColumnPage> BuildIntPage(const int64_t* values, size_t n,
                                         const BitVector* nulls,
                                         size_t null_offset,
                                         const IntFrequencyDict* dict);

/// Builds a VARCHAR page: frequency-encoded when `dict` given, else raw.
std::unique_ptr<ColumnPage> BuildStringPage(const std::string* values,
                                            size_t n, const BitVector* nulls,
                                            size_t null_offset,
                                            const StringFrequencyDict* dict);

/// Builds a raw DOUBLE page.
std::unique_ptr<ColumnPage> BuildDoublePage(const double* values, size_t n,
                                            const BitVector* nulls,
                                            size_t null_offset);

/// Evaluates an integer range predicate over a page, OR-setting match bits
/// (rows are page-local). NULL rows never match. `use_swar` selects the
/// SWAR kernels vs scalar code comparison; `on_compressed` false forces the
/// naive-competitor path (decode every value, compare in the value domain).
void EvalIntRange(const ColumnPage& page, const IntFrequencyDict* dict,
                  const IntRangePred& pred, bool use_swar, bool on_compressed,
                  BitVector* out);

/// Counts the rows of an integer-domain page matching `pred` without
/// materializing a match bitmap: code-domain bands are counted with
/// SwarCount and code-0 aliasing (NULLs, dict exceptions) is corrected
/// arithmetically. Supports kFrequencyInt/kDictInt/kFor/kRawInt pages;
/// deleted rows are NOT accounted for (the caller must ensure the page has
/// none or fall back to a bitmap scan).
size_t CountIntRange(const ColumnPage& page, const IntFrequencyDict* dict,
                     const IntRangePred& pred);

/// Same for VARCHAR pages.
void EvalStringRange(const ColumnPage& page, const StringFrequencyDict* dict,
                     const StrRangePred& pred, bool use_swar,
                     bool on_compressed, BitVector* out);

/// Evaluates a DOUBLE range (raw pages only).
void EvalDoubleRange(const ColumnPage& page, double lo, bool has_lo,
                     bool lo_incl, double hi, bool has_hi, bool hi_incl,
                     BitVector* out);

/// Decodes rows of an integer-domain page into *out (appending). When `sel`
/// given, only selected rows are appended, in row order.
void DecodeIntPage(const ColumnPage& page, const IntFrequencyDict* dict,
                   const BitVector* sel, ColumnVector* out);

void DecodeStringPage(const ColumnPage& page, const StringFrequencyDict* dict,
                      const BitVector* sel, ColumnVector* out);

void DecodeDoublePage(const ColumnPage& page, const BitVector* sel,
                      ColumnVector* out);

}  // namespace dashdb
