#include "storage/clusterfs.h"

#include <cstring>

namespace dashdb {

Status ClusterFileSystem::WriteFile(const std::string& path,
                                    std::vector<uint8_t> bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  files_[path] = std::move(bytes);
  return Status::OK();
}

Result<const std::vector<uint8_t>*> ClusterFileSystem::ReadFile(
    const std::string& path) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("file " + path);
  return &it->second;
}

bool ClusterFileSystem::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lk(mu_);
  return files_.count(path) > 0;
}

Status ClusterFileSystem::Remove(const std::string& path) {
  std::lock_guard<std::mutex> lk(mu_);
  if (files_.erase(path) == 0) return Status::NotFound("file " + path);
  return Status::OK();
}

std::vector<std::string> ClusterFileSystem::List(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix);
       it != files_.end() && it->first.rfind(prefix, 0) == 0; ++it) {
    out.push_back(it->first);
  }
  return out;
}

size_t ClusterFileSystem::TotalBytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  size_t total = 0;
  for (const auto& [p, b] : files_) total += b.size();
  return total;
}

size_t ClusterFileSystem::FileCount() const {
  std::lock_guard<std::mutex> lk(mu_);
  return files_.size();
}

namespace {

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back((v >> (i * 8)) & 0xFF);
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= uint64_t{p[i]} << (i * 8);
  return v;
}

}  // namespace

void SerializeBatch(const TableSchema& schema, const RowBatch& batch,
                    std::vector<uint8_t>* out) {
  const size_t n = batch.num_rows();
  PutU64(out, n);
  for (int c = 0; c < schema.num_columns(); ++c) {
    const ColumnVector& cv = batch.columns[c];
    TypeId t = schema.column(c).type;
    // Null bitmap.
    for (size_t i = 0; i < n; ++i) out->push_back(cv.IsNull(i) ? 1 : 0);
    if (t == TypeId::kVarchar) {
      for (size_t i = 0; i < n; ++i) {
        const std::string& s = cv.IsNull(i) ? std::string() : cv.GetString(i);
        PutU64(out, s.size());
        out->insert(out->end(), s.begin(), s.end());
      }
    } else if (t == TypeId::kDouble) {
      for (size_t i = 0; i < n; ++i) {
        double d = cv.IsNull(i) ? 0 : cv.GetDouble(i);
        uint64_t bits;
        std::memcpy(&bits, &d, 8);
        PutU64(out, bits);
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        PutU64(out, static_cast<uint64_t>(cv.IsNull(i) ? 0 : cv.GetInt(i)));
      }
    }
  }
}

Result<RowBatch> DeserializeBatch(const TableSchema& schema,
                                  const uint8_t* data, size_t len) {
  size_t pos = 0;
  auto need = [&](size_t k) -> Status {
    if (pos + k > len) return Status::IOError("truncated batch file");
    return Status::OK();
  };
  DASHDB_RETURN_IF_ERROR(need(8));
  const size_t n = GetU64(data + pos);
  pos += 8;
  RowBatch batch;
  batch.columns.reserve(schema.num_columns());
  for (int c = 0; c < schema.num_columns(); ++c) {
    TypeId t = schema.column(c).type;
    ColumnVector cv(t);
    cv.Reserve(n);
    DASHDB_RETURN_IF_ERROR(need(n));
    const uint8_t* nulls = data + pos;
    pos += n;
    if (t == TypeId::kVarchar) {
      for (size_t i = 0; i < n; ++i) {
        DASHDB_RETURN_IF_ERROR(need(8));
        size_t sl = GetU64(data + pos);
        pos += 8;
        DASHDB_RETURN_IF_ERROR(need(sl));
        if (nulls[i]) {
          cv.AppendNull();
        } else {
          cv.AppendString(
              std::string(reinterpret_cast<const char*>(data + pos), sl));
        }
        pos += sl;
      }
    } else if (t == TypeId::kDouble) {
      DASHDB_RETURN_IF_ERROR(need(8 * n));
      for (size_t i = 0; i < n; ++i) {
        if (nulls[i]) {
          cv.AppendNull();
        } else {
          uint64_t bits = GetU64(data + pos + i * 8);
          double d;
          std::memcpy(&d, &bits, 8);
          cv.AppendDouble(d);
        }
      }
      pos += 8 * n;
    } else {
      DASHDB_RETURN_IF_ERROR(need(8 * n));
      for (size_t i = 0; i < n; ++i) {
        if (nulls[i]) {
          cv.AppendNull();
        } else {
          cv.AppendInt(static_cast<int64_t>(GetU64(data + pos + i * 8)));
        }
      }
      pos += 8 * n;
    }
    batch.columns.push_back(std::move(cv));
  }
  return batch;
}

Status SaveColumnTable(const ColumnTable& table, ClusterFileSystem* fs,
                       const std::string& prefix) {
  // Gather live rows in one batch (file sets at our scales are modest).
  RowBatch all;
  const TableSchema& schema = table.schema();
  all.columns.reserve(schema.num_columns());
  std::vector<int> projection;
  for (int c = 0; c < schema.num_columns(); ++c) {
    all.columns.emplace_back(schema.column(c).type);
    projection.push_back(c);
  }
  ScanOptions opts;
  DASHDB_RETURN_IF_ERROR(table.Scan(
      {}, projection, opts,
      [&](RowBatch& b, const std::vector<uint64_t>&) {
        for (int c = 0; c < schema.num_columns(); ++c) {
          for (size_t i = 0; i < b.num_rows(); ++i) {
            all.columns[c].AppendFrom(b.columns[c], i);
          }
        }
      }));
  std::vector<uint8_t> bytes;
  SerializeBatch(schema, all, &bytes);
  return fs->WriteFile(prefix + "/data.bin", std::move(bytes));
}

Result<std::shared_ptr<ColumnTable>> LoadColumnTable(
    const TableSchema& schema, uint64_t table_id, const ClusterFileSystem& fs,
    const std::string& prefix) {
  DASHDB_ASSIGN_OR_RETURN(const std::vector<uint8_t>* bytes,
                          fs.ReadFile(prefix + "/data.bin"));
  DASHDB_ASSIGN_OR_RETURN(RowBatch batch,
                          DeserializeBatch(schema, bytes->data(), bytes->size()));
  auto table = std::make_shared<ColumnTable>(schema, table_id);
  DASHDB_RETURN_IF_ERROR(table->Load(batch));
  return table;
}

}  // namespace dashdb
