// Row-organized table with B+Tree secondary indexes: the "previous
// generation warehouse appliance" baseline for the paper's comparisons
// (Table 1 Tests 1-3 and the 10-50x row-vs-column claim in II.B.7).
//
// Layout: slotted pages with a fixed-width region per row (1 null byte +
// 8-byte payload per column; VARCHAR payloads index a per-page string
// heap). Rows update in place (the row store's classic advantage on
// OLTP-ish statements, which the customer workload bench exercises).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/schema.h"
#include "common/column_vector.h"
#include "common/status.h"
#include "bufferpool/bufferpool.h"
#include "storage/btree.h"
#include "storage/io_model.h"
#include "storage/column_table.h"  // ColumnPredicate

namespace dashdb {

class RowTable : public StorageObject {
 public:
  RowTable(TableSchema schema, uint64_t table_id);

  const TableSchema& schema() const { return schema_; }
  uint64_t table_id() const { return table_id_; }
  size_t row_count() const { return row_count_; }
  size_t live_row_count() const { return row_count_ - deleted_count_; }

  Status Append(const RowBatch& data);
  Status AppendRow(const std::vector<Value>& row);

  Status DeleteRows(const std::vector<uint64_t>& row_ids);
  bool IsDeleted(uint64_t row_id) const;
  void Truncate();

  /// In-place update of one row (values.size() == num_columns; pass the
  /// current value for untouched columns). Indexes on changed key columns
  /// accumulate stale entries that scans filter via re-check.
  Status UpdateRow(uint64_t row_id, const std::vector<Value>& values);

  Value GetCell(uint64_t row_id, int col) const;
  std::vector<Value> GetRow(uint64_t row_id) const;

  /// Builds a secondary B+Tree index over an integer-backed column;
  /// maintained by subsequent appends.
  Status CreateIndex(int col);
  bool HasIndex(int col) const;

  /// Full scan: row-at-a-time predicate evaluation and materialization
  /// (the row engine has no compressed-domain tricks). Emits batches.
  Status Scan(const std::vector<ColumnPredicate>& preds,
              const std::vector<int>& projection,
              const std::function<void(RowBatch&, const std::vector<uint64_t>&)>&
                  emit) const;

  /// Pull-based scan step over row ids [begin, end): appends matching rows
  /// to *out (one ColumnVector per projected column) and their ids to *ids.
  Status ScanRange(uint64_t begin, uint64_t end,
                   const std::vector<ColumnPredicate>& preds,
                   const std::vector<int>& projection, RowBatch* out,
                   std::vector<uint64_t>* ids) const;

  /// Index range scan over an indexed column; residual predicates applied
  /// row-at-a-time. Emits in index-key order.
  Status IndexScan(int col, int64_t lo, int64_t hi,
                   const std::vector<ColumnPredicate>& residual,
                   const std::vector<int>& projection,
                   const std::function<void(RowBatch&,
                                            const std::vector<uint64_t>&)>&
                       emit) const;

  /// Uncompressed footprint (bytes).
  size_t RawBytes() const;

  /// Attaches the storage I/O model (buffer-pool misses charge modeled
  /// read time; full scans read whole row pages, index scans pay a seek
  /// per page touched).
  void ConfigureIo(IoModel model, IoSink* sink, BufferPool* pool) {
    io_model_ = model;
    io_sink_ = sink;
    io_pool_ = pool;
  }

 private:
  static constexpr size_t kRowsPerRowPage = 1024;

  struct Page {
    std::vector<uint8_t> fixed;       ///< nrows * fixed_row_width_
    std::vector<std::string> heap;    ///< VARCHAR payloads
    size_t nrows = 0;
  };

  uint8_t* CellPtr(Page& p, size_t row_in_page, int col);
  const uint8_t* CellPtr(const Page& p, size_t row_in_page, int col) const;
  void WriteCell(Page* p, size_t row_in_page, int col, const Value& v);
  Value ReadCell(const Page& p, size_t row_in_page, int col) const;

  bool RowMatchesPreds(const std::vector<ColumnPredicate>& preds,
                       uint64_t row_id) const;
  void MaintainIndexes(uint64_t row_id, const std::vector<Value>& row);

  TableSchema schema_;
  uint64_t table_id_;
  size_t fixed_row_width_;
  std::vector<std::unique_ptr<Page>> pages_;
  size_t row_count_ = 0;
  size_t deleted_count_ = 0;
  BitVector deleted_;
  std::map<int, std::unique_ptr<BPlusTree>> indexes_;
  size_t heap_bytes_ = 0;
  mutable std::mutex mu_;

  void ChargePageIo(uint64_t page_no, bool random) const;
  IoModel io_model_;
  IoSink* io_sink_ = nullptr;
  BufferPool* io_pool_ = nullptr;
};

}  // namespace dashdb
