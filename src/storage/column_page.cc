#include "storage/column_page.h"

#include <algorithm>
#include <cassert>

#include "simd/swar.h"

namespace dashdb {

namespace {

/// Copies nulls[null_offset .. null_offset+n) into a page-local bitmap.
/// Returns true when any bit is set.
bool SliceNulls(const BitVector* nulls, size_t null_offset, size_t n,
                BitVector* out) {
  if (!nulls || nulls->size() == 0) return false;
  out->Resize(n);
  bool any = false;
  for (size_t i = 0; i < n; ++i) {
    if (null_offset + i < nulls->size() && nulls->Get(null_offset + i)) {
      out->Set(i);
      any = true;
    }
  }
  return any;
}

int OffsetWidth(size_t n) { return BitWidthFor(n > 1 ? n - 1 : 1); }

/// Value-domain range check shared by exception cells and naive paths.
inline bool InIntRange(int64_t v, const IntRangePred& p) {
  if (p.lo) {
    if (p.lo_incl ? v < *p.lo : v <= *p.lo) return false;
  }
  if (p.hi) {
    if (p.hi_incl ? v > *p.hi : v >= *p.hi) return false;
  }
  return true;
}

inline bool InStrRange(const std::string& v, const StrRangePred& p) {
  if (p.lo) {
    if (p.lo_incl ? v < *p.lo : v <= *p.lo) return false;
  }
  if (p.hi) {
    if (p.hi_incl ? v > *p.hi : v >= *p.hi) return false;
  }
  return true;
}

}  // namespace

size_t ColumnPage::ByteSize() const {
  size_t b = sizeof(uint32_t) + 2;  // header
  if (has_nulls) b += (num_rows + 7) / 8;
  for (const auto& c : cells) {
    b += c.codes.ByteSize() + c.offsets.ByteSize() + 2;
  }
  b += exc_ints.size() * sizeof(int64_t);
  for (const auto& s : exc_strs) b += s.size() + 2;
  b += exc_offsets.size() * sizeof(uint32_t);
  if (encoding == PageEncoding::kFor) b += fo.ByteSize();
  b += ordered_codes.ByteSize();
  b += raw_ints.size() * sizeof(int64_t);
  b += raw_doubles.size() * sizeof(double);
  for (const auto& s : raw_strings) b += s.size() + 2;
  return b;
}

std::unique_ptr<ColumnPage> BuildIntPage(const int64_t* values, size_t n,
                                         const BitVector* nulls,
                                         size_t null_offset,
                                         const IntFrequencyDict* dict) {
  auto page = std::make_unique<ColumnPage>();
  page->num_rows = static_cast<uint32_t>(n);
  page->has_nulls = SliceNulls(nulls, null_offset, n, &page->nulls);

  if (!dict) {
    page->encoding = PageEncoding::kFor;
    page->fo = ForEncode(values, n,
                         page->has_nulls ? &page->nulls : nullptr);
    return page;
  }

  if (dict->is_single_partition()) {
    // Row-order single-dictionary page: globally order-preserving codes,
    // no tuple map needed.
    page->encoding = PageEncoding::kDictInt;
    page->ordered_codes.ResetWidth(dict->single_width());
    page->ordered_codes.Reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (page->has_nulls && page->nulls.Get(i)) {
        page->ordered_codes.Append(0);
        continue;
      }
      auto pc = dict->Encode(values[i]);
      if (pc) {
        page->ordered_codes.Append(pc->code);
      } else {
        page->ordered_codes.Append(0);
        page->exc_ints.push_back(values[i]);
        page->exc_offsets.push_back(static_cast<uint32_t>(i));
      }
    }
    return page;
  }
  page->encoding = PageEncoding::kFrequencyInt;
  // Bucket rows into per-partition cells (the BLU "cell" layout).
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> buckets(
      dict->num_partitions());  // (code, offset)
  for (size_t i = 0; i < n; ++i) {
    if (page->has_nulls && page->nulls.Get(i)) continue;
    auto pc = dict->Encode(values[i]);
    if (pc) {
      buckets[pc->partition].emplace_back(pc->code, static_cast<uint32_t>(i));
    } else {
      page->exc_ints.push_back(values[i]);
      page->exc_offsets.push_back(static_cast<uint32_t>(i));
    }
  }
  const int off_w = OffsetWidth(n);
  for (int p = 0; p < dict->num_partitions(); ++p) {
    if (buckets[p].empty()) continue;
    ColumnPage::Cell cell;
    cell.partition = static_cast<uint8_t>(p);
    cell.codes.ResetWidth(dict->partition_width(p));
    cell.offsets.ResetWidth(off_w);
    cell.codes.Reserve(buckets[p].size());
    cell.offsets.Reserve(buckets[p].size());
    for (auto [code, off] : buckets[p]) {
      cell.codes.Append(code);
      cell.offsets.Append(off);
    }
    page->cells.push_back(std::move(cell));
  }
  return page;
}

std::unique_ptr<ColumnPage> BuildStringPage(const std::string* values,
                                            size_t n, const BitVector* nulls,
                                            size_t null_offset,
                                            const StringFrequencyDict* dict) {
  auto page = std::make_unique<ColumnPage>();
  page->num_rows = static_cast<uint32_t>(n);
  page->has_nulls = SliceNulls(nulls, null_offset, n, &page->nulls);

  if (!dict) {
    page->encoding = PageEncoding::kRawString;
    page->raw_strings.assign(values, values + n);
    return page;
  }
  if (dict->is_single_partition()) {
    page->encoding = PageEncoding::kDictString;
    page->ordered_codes.ResetWidth(dict->single_width());
    page->ordered_codes.Reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (page->has_nulls && page->nulls.Get(i)) {
        page->ordered_codes.Append(0);
        continue;
      }
      auto pc = dict->Encode(values[i]);
      if (pc) {
        page->ordered_codes.Append(pc->code);
      } else {
        page->ordered_codes.Append(0);
        page->exc_strs.push_back(values[i]);
        page->exc_offsets.push_back(static_cast<uint32_t>(i));
      }
    }
    return page;
  }
  page->encoding = PageEncoding::kFrequencyString;
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> buckets(
      dict->num_partitions());
  for (size_t i = 0; i < n; ++i) {
    if (page->has_nulls && page->nulls.Get(i)) continue;
    auto pc = dict->Encode(values[i]);
    if (pc) {
      buckets[pc->partition].emplace_back(pc->code, static_cast<uint32_t>(i));
    } else {
      page->exc_strs.push_back(values[i]);
      page->exc_offsets.push_back(static_cast<uint32_t>(i));
    }
  }
  const int off_w = OffsetWidth(n);
  for (int p = 0; p < dict->num_partitions(); ++p) {
    if (buckets[p].empty()) continue;
    ColumnPage::Cell cell;
    cell.partition = static_cast<uint8_t>(p);
    cell.codes.ResetWidth(dict->partition_width(p));
    cell.offsets.ResetWidth(off_w);
    for (auto [code, off] : buckets[p]) {
      cell.codes.Append(code);
      cell.offsets.Append(off);
    }
    page->cells.push_back(std::move(cell));
  }
  return page;
}

std::unique_ptr<ColumnPage> BuildDoublePage(const double* values, size_t n,
                                            const BitVector* nulls,
                                            size_t null_offset) {
  auto page = std::make_unique<ColumnPage>();
  page->encoding = PageEncoding::kRawDouble;
  page->num_rows = static_cast<uint32_t>(n);
  page->has_nulls = SliceNulls(nulls, null_offset, n, &page->nulls);
  page->raw_doubles.assign(values, values + n);
  return page;
}

namespace {

/// Applies a code range over one cell, mapping matching cell positions back
/// through the tuple map into page-row match bits.
void ApplyCellRange(const ColumnPage::Cell& cell, const CodeRange& r,
                    size_t partition_size, bool use_swar, BitVector* out) {
  const size_t cn = cell.codes.size();
  if (r.lo == 0 && r.hi + 1 >= partition_size) {
    // Whole partition qualifies: every row of this cell matches without
    // looking at a single code (pure metadata decision).
    for (size_t i = 0; i < cn; ++i) {
      out->Set(cell.offsets.Get(i));
    }
    return;
  }
  if (use_swar) {
    BitVector cell_match(cn);
    SwarBetween(cell.codes, cn, r.lo, r.hi, &cell_match);
    cell_match.ForEachSet(
        [&](size_t pos) { out->Set(cell.offsets.Get(pos)); });
  } else {
    for (size_t i = 0; i < cn; ++i) {
      uint64_t c = cell.codes.Get(i);
      if (c >= r.lo && c <= r.hi) out->Set(cell.offsets.Get(i));
    }
  }
}

}  // namespace

void EvalIntRange(const ColumnPage& page, const IntFrequencyDict* dict,
                  const IntRangePred& pred, bool use_swar, bool on_compressed,
                  BitVector* out) {
  assert(out->size() >= page.num_rows);
  if (!on_compressed) {
    // Naive competitor: decode everything, compare in the value domain.
    ColumnVector tmp(TypeId::kInt64);
    tmp.Reserve(page.num_rows);
    DecodeIntPage(page, dict, nullptr, &tmp);
    for (size_t i = 0; i < tmp.size(); ++i) {
      if (!tmp.IsNull(i) && InIntRange(tmp.GetInt(i), pred)) out->Set(i);
    }
    return;
  }
  switch (page.encoding) {
    case PageEncoding::kFrequencyInt: {
      const int64_t* lo = pred.lo ? &*pred.lo : nullptr;
      const int64_t* hi = pred.hi ? &*pred.hi : nullptr;
      for (const auto& cell : page.cells) {
        CodeRange r = dict->RangeFor(cell.partition, lo, pred.lo_incl, hi,
                                     pred.hi_incl);
        if (r.empty()) continue;  // cell skipped entirely
        ApplyCellRange(cell, r, dict->partition_size(cell.partition), use_swar,
                       out);
      }
      for (size_t i = 0; i < page.exc_ints.size(); ++i) {
        if (InIntRange(page.exc_ints[i], pred)) out->Set(page.exc_offsets[i]);
      }
      break;
    }
    case PageEncoding::kDictInt: {
      const int64_t* lo = pred.lo ? &*pred.lo : nullptr;
      const int64_t* hi = pred.hi ? &*pred.hi : nullptr;
      CodeRange r = dict->RangeFor(0, lo, pred.lo_incl, hi, pred.hi_incl);
      if (!r.empty()) {
        if (use_swar) {
          SwarBetween(page.ordered_codes, page.num_rows, r.lo, r.hi, out);
        } else {
          for (size_t i = 0; i < page.num_rows; ++i) {
            uint64_t c = page.ordered_codes.Get(i);
            if (c >= r.lo && c <= r.hi) out->Set(i);
          }
        }
        // NULLs and exceptions were stored as code 0 and may have matched.
        if (page.has_nulls) {
          page.nulls.ForEachSet([&](size_t i) { out->Clear(i); });
        }
        for (uint32_t off : page.exc_offsets) out->Clear(off);
      }
      for (size_t i = 0; i < page.exc_ints.size(); ++i) {
        if (InIntRange(page.exc_ints[i], pred)) out->Set(page.exc_offsets[i]);
      }
      break;
    }
    case PageEncoding::kFor: {
      const int64_t* lo = pred.lo ? &*pred.lo : nullptr;
      const int64_t* hi = pred.hi ? &*pred.hi : nullptr;
      auto r = ForRangeFor(page.fo, lo, pred.lo_incl, hi, pred.hi_incl);
      if (!r) break;
      if (use_swar) {
        SwarBetween(page.fo.codes, page.num_rows, r->lo, r->hi, out);
      } else {
        for (size_t i = 0; i < page.num_rows; ++i) {
          uint64_t c = page.fo.codes.Get(i);
          if (c >= r->lo && c <= r->hi) out->Set(i);
        }
      }
      if (page.has_nulls) {
        // NULLs were stored as code 0 and may have matched.
        page.nulls.ForEachSet([&](size_t i) { out->Clear(i); });
      }
      break;
    }
    case PageEncoding::kRawInt: {
      for (size_t i = 0; i < page.num_rows; ++i) {
        if (page.has_nulls && page.nulls.Get(i)) continue;
        if (InIntRange(page.raw_ints[i], pred)) out->Set(i);
      }
      break;
    }
    default:
      assert(false && "EvalIntRange on non-integer page");
  }
}

namespace {

/// Rows of `arr[0..n)` whose code lies in the inclusive band [lo, hi].
size_t CountBand(const BitPackedArray& arr, size_t n, uint64_t lo,
                 uint64_t hi) {
  size_t le_hi = SwarCount(arr, n, CmpOp::kLe, hi);
  size_t lt_lo = lo == 0 ? 0 : SwarCount(arr, n, CmpOp::kLt, lo);
  return le_hi - lt_lo;
}

}  // namespace

size_t CountIntRange(const ColumnPage& page, const IntFrequencyDict* dict,
                     const IntRangePred& pred) {
  const int64_t* lo = pred.lo ? &*pred.lo : nullptr;
  const int64_t* hi = pred.hi ? &*pred.hi : nullptr;
  size_t count = 0;
  switch (page.encoding) {
    case PageEncoding::kFrequencyInt: {
      // Cells contain neither NULLs nor exceptions, so band counts need no
      // code-0 correction here.
      for (const auto& cell : page.cells) {
        CodeRange r = dict->RangeFor(cell.partition, lo, pred.lo_incl, hi,
                                     pred.hi_incl);
        if (r.empty()) continue;
        const size_t cn = cell.codes.size();
        if (r.lo == 0 && r.hi + 1 >= dict->partition_size(cell.partition)) {
          count += cn;  // whole partition qualifies: metadata-only count
        } else {
          count += CountBand(cell.codes, cn, r.lo, r.hi);
        }
      }
      for (size_t i = 0; i < page.exc_ints.size(); ++i) {
        if (InIntRange(page.exc_ints[i], pred)) ++count;
      }
      break;
    }
    case PageEncoding::kDictInt: {
      CodeRange r = dict->RangeFor(0, lo, pred.lo_incl, hi, pred.hi_incl);
      if (!r.empty()) {
        count += CountBand(page.ordered_codes, page.num_rows, r.lo, r.hi);
        if (r.lo == 0) {
          // NULLs and exceptions were stored as code 0 and got counted.
          if (page.has_nulls) count -= page.nulls.CountSet();
          count -= page.exc_offsets.size();
        }
      }
      for (size_t i = 0; i < page.exc_ints.size(); ++i) {
        if (InIntRange(page.exc_ints[i], pred)) ++count;
      }
      break;
    }
    case PageEncoding::kFor: {
      auto r = ForRangeFor(page.fo, lo, pred.lo_incl, hi, pred.hi_incl);
      if (!r) break;
      count += CountBand(page.fo.codes, page.num_rows, r->lo, r->hi);
      if (r->lo == 0 && page.has_nulls) {
        count -= page.nulls.CountSet();  // NULLs were stored as code 0
      }
      break;
    }
    case PageEncoding::kRawInt: {
      for (size_t i = 0; i < page.num_rows; ++i) {
        if (page.has_nulls && page.nulls.Get(i)) continue;
        if (InIntRange(page.raw_ints[i], pred)) ++count;
      }
      break;
    }
    default:
      assert(false && "CountIntRange on non-integer page");
  }
  return count;
}

void EvalStringRange(const ColumnPage& page, const StringFrequencyDict* dict,
                     const StrRangePred& pred, bool use_swar,
                     bool on_compressed, BitVector* out) {
  assert(out->size() >= page.num_rows);
  if (page.encoding == PageEncoding::kRawString || !on_compressed) {
    if (page.encoding == PageEncoding::kRawString) {
      for (size_t i = 0; i < page.num_rows; ++i) {
        if (page.has_nulls && page.nulls.Get(i)) continue;
        if (InStrRange(page.raw_strings[i], pred)) out->Set(i);
      }
    } else {
      ColumnVector tmp(TypeId::kVarchar);
      DecodeStringPage(page, dict, nullptr, &tmp);
      for (size_t i = 0; i < tmp.size(); ++i) {
        if (!tmp.IsNull(i) && InStrRange(tmp.GetString(i), pred)) out->Set(i);
      }
    }
    return;
  }
  if (page.encoding == PageEncoding::kDictString) {
    const std::string* lo = pred.lo ? &*pred.lo : nullptr;
    const std::string* hi = pred.hi ? &*pred.hi : nullptr;
    CodeRange r = dict->RangeFor(0, lo, pred.lo_incl, hi, pred.hi_incl);
    if (!r.empty()) {
      if (use_swar) {
        SwarBetween(page.ordered_codes, page.num_rows, r.lo, r.hi, out);
      } else {
        for (size_t i = 0; i < page.num_rows; ++i) {
          uint64_t c = page.ordered_codes.Get(i);
          if (c >= r.lo && c <= r.hi) out->Set(i);
        }
      }
      if (page.has_nulls) {
        page.nulls.ForEachSet([&](size_t i) { out->Clear(i); });
      }
      for (uint32_t off : page.exc_offsets) out->Clear(off);
    }
    for (size_t i = 0; i < page.exc_strs.size(); ++i) {
      if (InStrRange(page.exc_strs[i], pred)) out->Set(page.exc_offsets[i]);
    }
    return;
  }
  assert(page.encoding == PageEncoding::kFrequencyString);
  const std::string* lo = pred.lo ? &*pred.lo : nullptr;
  const std::string* hi = pred.hi ? &*pred.hi : nullptr;
  for (const auto& cell : page.cells) {
    CodeRange r =
        dict->RangeFor(cell.partition, lo, pred.lo_incl, hi, pred.hi_incl);
    if (r.empty()) continue;
    ApplyCellRange(cell, r, dict->partition_size(cell.partition), use_swar,
                   out);
  }
  for (size_t i = 0; i < page.exc_strs.size(); ++i) {
    if (InStrRange(page.exc_strs[i], pred)) out->Set(page.exc_offsets[i]);
  }
}

void EvalDoubleRange(const ColumnPage& page, double lo, bool has_lo,
                     bool lo_incl, double hi, bool has_hi, bool hi_incl,
                     BitVector* out) {
  assert(page.encoding == PageEncoding::kRawDouble);
  for (size_t i = 0; i < page.num_rows; ++i) {
    if (page.has_nulls && page.nulls.Get(i)) continue;
    double v = page.raw_doubles[i];
    if (has_lo && (lo_incl ? v < lo : v <= lo)) continue;
    if (has_hi && (hi_incl ? v > hi : v >= hi)) continue;
    out->Set(i);
  }
}

void DecodeIntPage(const ColumnPage& page, const IntFrequencyDict* dict,
                   const BitVector* sel, ColumnVector* out) {
  const size_t n = page.num_rows;
  auto emit = [&](auto value_at) {
    for (size_t i = 0; i < n; ++i) {
      if (sel && !sel->Get(i)) continue;
      if (page.has_nulls && page.nulls.Get(i)) {
        out->AppendNull();
      } else {
        out->AppendInt(value_at(i));
      }
    }
  };
  switch (page.encoding) {
    case PageEncoding::kFrequencyInt: {
      std::vector<int64_t> vals(n, 0);
      for (const auto& cell : page.cells) {
        const size_t cn = cell.codes.size();
        for (size_t i = 0; i < cn; ++i) {
          vals[cell.offsets.Get(i)] =
              dict->Decode(cell.partition,
                           static_cast<uint32_t>(cell.codes.Get(i)));
        }
      }
      for (size_t i = 0; i < page.exc_ints.size(); ++i) {
        vals[page.exc_offsets[i]] = page.exc_ints[i];
      }
      emit([&](size_t i) { return vals[i]; });
      break;
    }
    case PageEncoding::kDictInt: {
      // Exception overrides first (rows with code 0 that are not NULL).
      std::vector<std::pair<uint32_t, int64_t>> exc;
      exc.reserve(page.exc_ints.size());
      for (size_t i = 0; i < page.exc_ints.size(); ++i) {
        exc.emplace_back(page.exc_offsets[i], page.exc_ints[i]);
      }
      size_t next_exc = 0;
      emit([&](size_t i) {
        while (next_exc < exc.size() && exc[next_exc].first < i) ++next_exc;
        if (next_exc < exc.size() && exc[next_exc].first == i) {
          return exc[next_exc].second;
        }
        return dict->Decode(
            0, static_cast<uint32_t>(page.ordered_codes.Get(i)));
      });
      break;
    }
    case PageEncoding::kFor:
      emit([&](size_t i) { return page.fo.Get(i); });
      break;
    case PageEncoding::kRawInt:
      emit([&](size_t i) { return page.raw_ints[i]; });
      break;
    default:
      assert(false && "DecodeIntPage on non-integer page");
  }
}

void DecodeStringPage(const ColumnPage& page, const StringFrequencyDict* dict,
                      const BitVector* sel, ColumnVector* out) {
  const size_t n = page.num_rows;
  if (page.encoding == PageEncoding::kRawString) {
    for (size_t i = 0; i < n; ++i) {
      if (sel && !sel->Get(i)) continue;
      if (page.has_nulls && page.nulls.Get(i)) {
        out->AppendNull();
      } else {
        out->AppendString(page.raw_strings[i]);
      }
    }
    return;
  }
  if (page.encoding == PageEncoding::kDictString) {
    std::vector<std::pair<uint32_t, uint32_t>> exc;  // offset -> exc index
    exc.reserve(page.exc_strs.size());
    for (size_t i = 0; i < page.exc_strs.size(); ++i) {
      exc.emplace_back(page.exc_offsets[i], static_cast<uint32_t>(i));
    }
    size_t next_exc = 0;
    for (size_t i = 0; i < n; ++i) {
      if (sel && !sel->Get(i)) continue;
      while (next_exc < exc.size() && exc[next_exc].first < i) ++next_exc;
      if (page.has_nulls && page.nulls.Get(i)) {
        out->AppendNull();
      } else if (next_exc < exc.size() && exc[next_exc].first == i) {
        out->AppendString(page.exc_strs[exc[next_exc].second]);
      } else {
        out->AppendString(dict->Decode(
            0, static_cast<uint32_t>(page.ordered_codes.Get(i))));
      }
    }
    return;
  }
  assert(page.encoding == PageEncoding::kFrequencyString);
  // Decode codes to a temp map, then materialize strings only for selected
  // rows (string construction is the expensive part).
  std::vector<PartitionCode> pcs(n, {kExceptionPartition, 0});
  for (const auto& cell : page.cells) {
    const size_t cn = cell.codes.size();
    for (size_t i = 0; i < cn; ++i) {
      pcs[cell.offsets.Get(i)] = {cell.partition,
                                  static_cast<uint32_t>(cell.codes.Get(i))};
    }
  }
  std::vector<uint32_t> exc_index(n, 0);
  for (size_t i = 0; i < page.exc_strs.size(); ++i) {
    exc_index[page.exc_offsets[i]] = static_cast<uint32_t>(i);
  }
  for (size_t i = 0; i < n; ++i) {
    if (sel && !sel->Get(i)) continue;
    if (page.has_nulls && page.nulls.Get(i)) {
      out->AppendNull();
    } else if (pcs[i].partition == kExceptionPartition) {
      out->AppendString(page.exc_strs[exc_index[i]]);
    } else {
      out->AppendString(dict->Decode(pcs[i].partition, pcs[i].code));
    }
  }
}

void DecodeDoublePage(const ColumnPage& page, const BitVector* sel,
                      ColumnVector* out) {
  assert(page.encoding == PageEncoding::kRawDouble);
  for (size_t i = 0; i < page.num_rows; ++i) {
    if (sel && !sel->Get(i)) continue;
    if (page.has_nulls && page.nulls.Get(i)) {
      out->AppendNull();
    } else {
      out->AppendDouble(page.raw_doubles[i]);
    }
  }
}

}  // namespace dashdb
