// Storage I/O cost model (see DESIGN.md substitutions).
//
// The paper's comparisons ran against physical storage: the appliance
// baseline scanned row pages from 23TB of HDD while dashDB read compressed
// column pages from SSD. This in-process reproduction holds everything in
// RAM, so scans charge *modeled* I/O time instead: every buffer-pool MISS
// on a page costs (seek + bytes/rate); hits are free. The charge
// accumulates in an engine-level counter that benches add to measured CPU
// time. Nothing sleeps — the model only does accounting — and with
// `enabled == false` (the default) storage behaves as pure in-memory.
#pragma once

#include <atomic>
#include <cstdint>

namespace dashdb {

struct IoModel {
  bool enabled = false;
  double seq_bytes_per_sec = 550e6;  ///< sequential read rate
  double seek_seconds = 0.0;         ///< per random access

  /// SSD-class storage (the paper's dashDB nodes: "28TB SSD").
  static IoModel Ssd() { return IoModel{true, 550e6, 0.00005}; }
  /// HDD-class storage (the appliance baseline: "23TB HDD").
  static IoModel Hdd() { return IoModel{true, 150e6, 0.008}; }
  /// No modeling (default; unit tests, pure in-memory use).
  static IoModel None() { return IoModel{}; }

  /// Nanoseconds to read `bytes` sequentially after `seeks` random seeks.
  uint64_t CostNanos(uint64_t bytes, int seeks = 0) const {
    if (!enabled) return 0;
    double s = seeks * seek_seconds + bytes / seq_bytes_per_sec;
    return static_cast<uint64_t>(s * 1e9);
  }
};

/// Where modeled I/O time accumulates (owned by the engine).
using IoSink = std::atomic<uint64_t>;  // nanoseconds

}  // namespace dashdb
