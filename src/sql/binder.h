// The binder lowers parsed AST to executable operator trees: name
// resolution against the catalog, dialect-aware function binding, predicate
// pushdown into columnar scans, join planning (equi-conjuncts become hash
// joins, Oracle (+) markers become outer joins), aggregation planning, and
// the Oracle pseudo-features (DUAL, ROWNUM, CONNECT BY, sequences).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "exec/operator.h"
#include "sql/ast.h"
#include "sql/session.h"

namespace dashdb {

/// Engine-level tuning handed into every bind (feature toggles reach the
/// scans; the buffer pool is charged by scans when set).
/// Pushdown + residual split of a single-table WHERE clause.
struct TablePredicates {
  std::vector<ColumnPredicate> pushdown;
  ExprPtr residual;  ///< null when fully pushable
};

struct BindOptions {
  ScanOptions scan;
  /// Table organization preference when binding scans of base tables that
  /// exist in both forms (unused by default; kept for the bench harnesses).
  bool prefer_row_tables = false;
};

class Binder {
 public:
  Binder(Catalog* catalog, Session* session, BindOptions opts = {})
      : catalog_(catalog), session_(session), opts_(opts) {}

  /// Binds a SELECT into an operator tree (output names/types on the root).
  Result<OperatorPtr> BindSelect(const ast::SelectStmt& stmt);

  /// Binds a scalar expression against an explicit column scope (used by
  /// the engine's UPDATE/DELETE paths). Column names resolve unqualified.
  Result<ExprPtr> BindScalar(const ast::ExprP& e,
                             const std::vector<OutputCol>& scope_cols);

  /// Splits a single-table WHERE into storage pushdown predicates and a
  /// bound residual filter (null when everything was pushable).
  Result<TablePredicates> SplitTablePredicates(const TableSchema& schema,
                                               const ast::ExprP& where);

  Catalog* catalog() { return catalog_; }
  Session* session() { return session_; }
  const BindOptions& options() const { return opts_; }

 private:
  Catalog* catalog_;
  Session* session_;
  BindOptions opts_;
};

/// Serializes an AST expression to a canonical string (used for GROUP BY /
/// select-item matching and EXPLAIN).
std::string AstToString(const ast::ExprP& e);

}  // namespace dashdb
