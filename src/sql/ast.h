// Parse-time abstract syntax tree. The parser produces these unbound nodes;
// the binder (sql/binder.*) resolves names against the catalog and lowers
// them to executable expression/operator trees. Views keep their AST source
// text and re-bind under the dialect recorded at creation (paper II.C.2).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/value.h"
#include "simd/swar.h"  // CmpOp

namespace dashdb {
namespace ast {

// ------------------------------------------------------------ expressions --

struct Expr;
using ExprP = std::shared_ptr<Expr>;

enum class ExprKind : uint8_t {
  kLiteral,
  kColumnRef,      ///< [qualifier.]name; also ROWNUM / LEVEL pseudocolumns
  kStar,           ///< * or qualifier.*
  kBinary,         ///< arithmetic / comparison / logic / concat
  kUnary,          ///< NOT, unary minus
  kFuncCall,       ///< name(args) — scalar or aggregate, resolved by binder
  kCase,
  kCast,           ///< CAST(x AS t) and x::t
  kIsNull,         ///< IS [NOT] NULL, postfix ISNULL/NOTNULL
  kIsTrue,         ///< ISTRUE / ISFALSE (Netezza)
  kLike,
  kInList,
  kBetween,
  kSequenceRef,    ///< seq.NEXTVAL / seq.CURRVAL / NEXT VALUE FOR seq
  kOverlaps,       ///< (s1, e1) OVERLAPS (s2, e2)
  kParam,          ///< '?' positional parameter (PREPARE/EXECUTE)
};

enum class BinOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kMod, kConcat,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  Value literal;                       // kLiteral
  std::string qualifier, name;         // kColumnRef / kStar / kFuncCall / kSequenceRef
  BinOp bin_op = BinOp::kEq;           // kBinary
  bool negate = false;                 // NOT LIKE / NOT IN / IS NOT NULL / ISFALSE / NOT BETWEEN
  bool unary_minus = false;            // kUnary: minus vs NOT
  bool distinct_arg = false;           // COUNT(DISTINCT x)
  bool seq_nextval = true;             // kSequenceRef
  /// Oracle (+) outer-join marker attached to a column ref in a predicate.
  bool oracle_outer = false;
  TypeId cast_type = TypeId::kVarchar; // kCast
  std::string like_pattern;            // kLike
  /// kParam: 0-based position of this '?' in statement text order. The
  /// binder substitutes the session's EXECUTE-time parameter vector.
  int param_index = -1;
  std::vector<ExprP> children;         // operands / args / IN list / CASE parts
  /// CASE: children = [operand?] + pairs (when, then); else_branch separate.
  ExprP else_branch;
  bool has_case_operand = false;
};

ExprP MakeLiteral(Value v);
ExprP MakeColumnRef(std::string qualifier, std::string name);
ExprP MakeBinary(BinOp op, ExprP l, ExprP r);

// ------------------------------------------------------------- statements --

struct SelectStmt;
using SelectP = std::shared_ptr<SelectStmt>;

/// One FROM item: base table, derived table (subquery), or VALUES.
struct TableRef {
  std::string schema;        // empty = session default
  std::string table;
  std::string alias;
  SelectP subquery;          // derived table
  /// JOIN chain: this ref joined to the previous one.
  enum class JoinKind : uint8_t { kNone, kInner, kLeft, kRight, kCross } join =
      JoinKind::kNone;
  ExprP join_condition;              // ON ...
  std::vector<std::string> using_cols;  // JOIN USING (...)
};

struct OrderItem {
  ExprP expr;          // null when ordinal/name used
  int ordinal = -1;    // 1-based ORDER BY position
  std::string output_name;
  bool desc = false;
};

struct SelectItem {
  ExprP expr;
  std::string alias;
};

struct CteDef {
  std::string name;
  SelectP query;
};

struct SelectStmt {
  std::vector<CteDef> ctes;
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprP where;
  std::vector<ExprP> group_by;       // exprs; output names resolved by binder
  ExprP having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;
  int64_t offset = 0;
  /// Oracle hierarchical query (CONNECT BY), paper II.C.1.a.
  ExprP start_with;
  ExprP connect_by;      // PRIOR refs marked via FuncCall "PRIOR"
  /// Plain VALUES query (DB2 VALUES clause).
  std::vector<std::vector<ExprP>> values_rows;
};

struct ColumnDefAst {
  std::string name;
  std::string type_name;
  bool not_null = false;
  bool unique = false;   // UNIQUE / PRIMARY KEY
};

struct Statement;
using StatementP = std::shared_ptr<Statement>;

enum class StmtKind : uint8_t {
  kSelect,
  kInsert,
  kUpdate,
  kDelete,
  kCreateTable,
  kDropTable,
  kTruncate,
  kCreateView,
  kCreateSchema,
  kCreateSequence,
  kCreateAlias,
  kExplain,
  kSet,          ///< SET <var> = <value> (e.g. SQL_DIALECT)
  kCall,         ///< CALL proc(args) — stored procedures (Spark GLM etc.)
};

struct Statement {
  StmtKind kind = StmtKind::kSelect;

  SelectP select;                    // kSelect / kExplain / view body / INSERT..SELECT

  // EXPLAIN: ANALYZE variant executes the query and reports runtime metrics.
  bool explain_analyze = false;

  // INSERT
  std::string target_schema, target_table;
  std::vector<std::string> insert_columns;
  std::vector<std::vector<ExprP>> insert_rows;

  // UPDATE
  std::vector<std::pair<std::string, ExprP>> set_clauses;
  ExprP where;

  // CREATE TABLE
  std::vector<ColumnDefAst> columns;
  bool temporary = false;
  bool organize_by_row = false;
  std::string distribute_by;         // hash distribution column

  // CREATE VIEW / ALIAS
  std::string view_sql;              // original text (re-parsed on use)
  std::string alias_target_schema, alias_target_table;

  // SET
  std::string set_name, set_value;

  // CALL
  std::string call_name;
  std::vector<ExprP> call_args;

  // DROP
  bool if_exists = false;
  bool drop_is_view = false;
};

}  // namespace ast
}  // namespace dashdb
