// The single-node SQL engine: parse -> bind -> execute, DDL/DML handling,
// session management, and the stored-procedure registry (the SQL surface
// through which Spark jobs are launched, paper II.D.1). The MPP layer
// (src/mpp) composes one Engine per data shard.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "bufferpool/bufferpool.h"
#include "catalog/catalog.h"
#include "common/query_context.h"
#include "exec/admission.h"
#include "exec/operator.h"
#include "exec/shared_scan.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "sql/plan_cache.h"
#include "sql/result_cache.h"
#include "sql/session.h"
#include "storage/column_table.h"
#include "storage/io_model.h"
#include "storage/row_table.h"

namespace dashdb {

/// Result of one statement.
struct QueryResult {
  std::vector<OutputCol> columns;  ///< empty for DDL/DML
  RowBatch rows;
  int64_t affected_rows = 0;
  std::string message;             ///< DDL ack / EXPLAIN plan text

  bool has_rows() const { return !columns.empty(); }
};

/// Whether a SELECT's result may be served from the versioned result cache:
/// no '?' parameters, no sequence references, no clock-reading functions
/// (SYSDATE / CURRENT_DATE / NOW / AGE). Shared by the engine and the MPP
/// coordinator cache.
bool IsResultCacheableSelect(const ast::SelectStmt& sel);

/// Engine-wide configuration (set once; the autoconfigurator in src/deploy
/// produces these from detected hardware).
struct EngineConfig {
  size_t buffer_pool_bytes = size_t{256} << 20;
  ReplacementPolicy buffer_policy = ReplacementPolicy::kRandomWeight;
  /// Default organization for CREATE TABLE (the appliance baseline engine
  /// runs with kRow).
  TableOrganization default_organization = TableOrganization::kColumn;
  /// Scan feature toggles (II.B levers; the Test-4 competitor disables
  /// operate_on_compressed + synopsis).
  bool use_synopsis = true;
  bool use_swar = true;
  bool operate_on_compressed = true;
  /// Charge scans to the buffer pool.
  bool charge_buffer_pool = false;
  /// Storage I/O cost model (DESIGN.md substitutions): buffer-pool misses
  /// charge modeled read time, accumulated per engine.
  IoModel io_model;
  /// Intra-query degree of parallelism (paper II.A/II.B.6): the autoconfig
  /// layer sets this to the detected core count. 1 = serial execution
  /// (default, so hand-built engines behave exactly as before); 0 = detect
  /// from std::thread::hardware_concurrency at engine startup. Sessions can
  /// lower the effective degree with SET DOP.
  int query_parallelism = 1;
  /// Admission-control slots/queue for concurrent SELECTs (defaults are
  /// generous: serial callers admit immediately). Sessions opt out with
  /// SET ADMISSION OFF.
  AdmissionConfig admission;
};

class ThreadPool;

class Engine {
 public:
  explicit Engine(EngineConfig config = {});
  ~Engine();

  Catalog* catalog() { return &catalog_; }
  BufferPool* buffer_pool() { return &pool_; }
  const EngineConfig& config() const { return config_; }

  /// Resolved intra-query parallelism (>= 1) and the worker pool backing it
  /// (null when the engine runs serial). The pool is engine-owned and shared
  /// by all sessions; ParallelFor's caller participation keeps nested use
  /// deadlock-free.
  int query_parallelism() const { return query_parallelism_; }
  ThreadPool* exec_pool() { return exec_pool_.get(); }

  /// Effective degree for one session: the engine degree, lowered (never
  /// raised) by the session's SET DOP override.
  int EffectiveDop(const Session& session) const;

  std::shared_ptr<Session> CreateSession();

  /// Parses and executes one statement. Single-statement SELECT/EXPLAIN
  /// texts go through the shared plan cache (parse once per normalized
  /// text + dialect; see src/sql/plan_cache.h).
  Result<QueryResult> Execute(Session* session, const std::string& sql);

  /// Executes a ';'-separated script; returns the last statement's result.
  Result<QueryResult> ExecuteScript(Session* session, const std::string& sql);

  // --- prepared statements (serving layer PREPARE/EXECUTE) ---------------

  /// Compiles `sql` (which may contain '?' positional parameters) under the
  /// session's current dialect and registers it on the session as `name`.
  /// Returns the number of parameters the statement takes.
  Result<int> Prepare(Session* session, const std::string& name,
                      const std::string& sql);

  /// Executes a statement previously registered by Prepare, binding the
  /// given values to its '?' markers (in text order) and compiling under
  /// the dialect recorded at PREPARE time.
  Result<QueryResult> ExecutePrepared(Session* session, const std::string& name,
                                      std::vector<Value> params);

  /// Stored procedures (CALL name(args)): the integration point used by the
  /// Spark layer's SQL interface.
  using Procedure = std::function<Result<QueryResult>(
      const std::vector<Value>& args, Session* session, Engine* engine)>;
  void RegisterProcedure(const std::string& name, Procedure proc);

  /// Programmatic table management (benches/examples/MPP loaders).
  Result<std::shared_ptr<ColumnTable>> CreateColumnTable(TableSchema schema);
  Result<std::shared_ptr<RowTable>> CreateRowTable(TableSchema schema);
  Result<std::shared_ptr<CatalogEntry>> GetTable(const std::string& schema,
                                                 const std::string& table);

  ScanOptions MakeScanOptions();
  uint64_t NextTableId() { return next_table_id_.fetch_add(1); }

  /// Engine-owned workload manager gating SELECT admission (part of the
  /// Session -> engine-owned-shared-state refactor: sessions hold per-query
  /// knobs, the engine owns the shared slots/queue).
  AdmissionController& admission() { return admission_; }

  /// Shared plan cache (engine-owned, like the admission controller: one
  /// instance serving every session/connection).
  PlanCache& plan_cache() { return plan_cache_; }

  /// Versioned result cache serving repeated read-only statements for
  /// sessions that SET RESULT_CACHE ON (engine-owned, like the plan cache).
  ResultCache& result_cache() { return result_cache_; }

  /// Cooperative shared-scan registry: concurrent scans of the same
  /// (table, column set) attach to one circular in-flight pass (SET
  /// SHARED_SCAN ON). Engine-owned so every session/shard worker shares it.
  ScanShareManager& scan_share() { return scan_share_; }

  /// Data version: bumped by every INSERT/UPDATE/DELETE/TRUNCATE so
  /// result-cache entries stamped under the old version go stale. DDL is
  /// covered by catalog_.version(), stats by stats_version().
  uint64_t data_version() const {
    return data_version_.load(std::memory_order_acquire);
  }
  void BumpDataVersion() {
    data_version_.fetch_add(1, std::memory_order_release);
  }

  /// The three version stamps a result-cache entry is produced under.
  ResultCache::Versions CurrentVersions() const {
    return ResultCache::Versions{catalog_.version(), stats_version(),
                                 data_version()};
  }

  /// Statistics epoch. Plan-cache entries are stamped with it; RUNSTATS /
  /// RefreshStatistics bumps it so every cached plan recompiles against the
  /// fresh statistics on next use.
  uint64_t stats_version() const {
    return stats_version_.load(std::memory_order_acquire);
  }
  void RefreshStatistics() {
    stats_version_.fetch_add(1, std::memory_order_release);
  }

  /// Modeled storage I/O accumulated since the last call (seconds). Benches
  /// add this to measured CPU time per statement.
  double TakeIoSeconds() {
    return io_nanos_.exchange(0) * 1e-9;
  }

 private:
  /// Caching intent threaded from Execute down to ExecSelect: the original
  /// statement text plus the version stamps captured BEFORE execution. The
  /// insert re-checks the stamps so a write that overlaps the execution
  /// simply skips caching (never caches a torn read).
  struct ResultCacheIntent {
    const std::string* sql;
    ResultCache::Versions versions;
  };

  Result<QueryResult> ExecuteStmt(Session* session,
                                  const ast::StatementP& stmt,
                                  const ResultCacheIntent* cache = nullptr);
  Result<QueryResult> ExecSelect(Session* session, const ast::SelectStmt& sel,
                                 bool explain_only, bool analyze = false,
                                 const ResultCacheIntent* cache = nullptr);
  Result<QueryResult> ExecInsert(Session* session, const ast::Statement& st);
  Result<QueryResult> ExecUpdate(Session* session, const ast::Statement& st);
  Result<QueryResult> ExecDelete(Session* session, const ast::Statement& st);
  Result<QueryResult> ExecCreateTable(Session* session,
                                      const ast::Statement& st);
  Result<QueryResult> ExecSet(Session* session, const ast::Statement& st);

  /// Builds the per-statement governor from the session's SET knobs (or the
  /// test-injected context) and publishes it as the session's current query.
  std::shared_ptr<QueryContext> MakeQueryContext(Session* session);

  /// Parses one statement through the plan cache when cacheable (single
  /// SELECT/EXPLAIN); otherwise parses directly.
  Result<ast::StatementP> ParseCached(Session* session, const std::string& sql);

  /// Collects (row id, full row) pairs matching a WHERE for DML.
  struct MatchedRows {
    std::vector<uint64_t> ids;
    RowBatch rows;  ///< full-width rows in id order
  };
  Result<MatchedRows> CollectMatches(Session* session,
                                     const CatalogEntry& entry,
                                     const ast::ExprP& where);

  EngineConfig config_;
  Catalog catalog_;
  BufferPool pool_;
  int query_parallelism_ = 1;
  std::unique_ptr<ThreadPool> exec_pool_;
  std::atomic<uint64_t> next_table_id_{1};
  AdmissionController admission_;
  PlanCache plan_cache_;
  ResultCache result_cache_;
  ScanShareManager scan_share_;
  std::atomic<uint64_t> stats_version_{1};
  std::atomic<uint64_t> data_version_{1};
  IoSink io_nanos_{0};
  std::map<std::string, Procedure> procedures_;
  std::mutex proc_mu_;
};

}  // namespace dashdb
