#include "sql/result_cache.h"

#include "common/metrics.h"
#include "sql/plan_cache.h"  // NormalizeSql

namespace dashdb {
namespace {

struct ResultCacheInstruments {
  Counter* hits;
  Counter* misses;
  Counter* evictions;
  Gauge* bytes;
  Gauge* entries;
};

ResultCacheInstruments& Instruments() {
  static ResultCacheInstruments in{
      MetricRegistry::Global().GetCounter("server.result_cache_hits"),
      MetricRegistry::Global().GetCounter("server.result_cache_misses"),
      MetricRegistry::Global().GetCounter("server.result_cache_evictions"),
      MetricRegistry::Global().GetGauge("server.result_cache_bytes"),
      MetricRegistry::Global().GetGauge("server.result_cache_entries"),
  };
  return in;
}

}  // namespace

std::string ResultCache::Key(const std::string& sql, Dialect dialect,
                             const std::string& schema) {
  return std::to_string(static_cast<int>(dialect)) + "|" + schema + "|" +
         NormalizeSql(sql);
}

std::shared_ptr<const QueryResult> ResultCache::Lookup(
    const std::string& sql, Dialect dialect, const std::string& schema,
    const Versions& v) {
  const std::string key = Key(sql, dialect, schema);
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    Instruments().misses->Add(1);
    return nullptr;
  }
  if (!(it->second.versions == v)) {
    // Produced against a world that no longer exists (DDL/DML/RUNSTATS
    // moved a version): retire on sight, never serve stale bytes.
    EvictLocked(key);
    ++misses_;
    Instruments().misses->Add(1);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  ++hits_;
  Instruments().hits->Add(1);
  return it->second.result;
}

void ResultCache::Insert(const std::string& sql, Dialect dialect,
                         const std::string& schema, const Versions& v,
                         std::shared_ptr<const QueryResult> result,
                         size_t bytes) {
  if (capacity_bytes_ == 0 || !result || bytes > capacity_bytes_) return;
  const std::string key = Key(sql, dialect, schema);
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    bytes_ -= it->second.bytes;
    it->second.result = std::move(result);
    it->second.versions = v;
    it->second.bytes = bytes;
    bytes_ += bytes;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    Instruments().bytes->Set(static_cast<int64_t>(bytes_));
    return;
  }
  while (bytes_ + bytes > capacity_bytes_ && !lru_.empty()) {
    ++evictions_;
    Instruments().evictions->Add(1);
    const std::string victim = lru_.back();
    EvictLocked(victim);
  }
  lru_.push_front(key);
  Entry e;
  e.result = std::move(result);
  e.versions = v;
  e.bytes = bytes;
  e.lru_pos = lru_.begin();
  bytes_ += bytes;
  entries_.emplace(key, std::move(e));
  Instruments().bytes->Set(static_cast<int64_t>(bytes_));
  Instruments().entries->Set(static_cast<int64_t>(entries_.size()));
}

void ResultCache::EvictLocked(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  Instruments().bytes->Set(static_cast<int64_t>(bytes_));
  Instruments().entries->Set(static_cast<int64_t>(entries_.size()));
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
  Instruments().bytes->Set(0);
  Instruments().entries->Set(0);
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

size_t ResultCache::bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return bytes_;
}

uint64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lk(mu_);
  return hits_;
}

uint64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lk(mu_);
  return misses_;
}

uint64_t ResultCache::evictions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return evictions_;
}

}  // namespace dashdb
