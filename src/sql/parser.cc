#include "sql/parser.h"

#include <cstdlib>

#include "common/datetime.h"

namespace dashdb {

using namespace ast;

namespace {

ExprP MakeLit(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprP MakeCol(std::string q, std::string n) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->qualifier = std::move(q);
  e->name = std::move(n);
  return e;
}

ExprP MakeBin(BinOp op, ExprP l, ExprP r) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin_op = op;
  e->children = {std::move(l), std::move(r)};
  return e;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Result<StatementP> ParseOne() {
    DASHDB_ASSIGN_OR_RETURN(StatementP s, ParseStmt());
    if (Is(";")) Advance();
    if (!AtEnd()) return Err("unexpected trailing input");
    return s;
  }

  Result<std::vector<StatementP>> ParseAll() {
    std::vector<StatementP> out;
    while (!AtEnd()) {
      DASHDB_ASSIGN_OR_RETURN(StatementP s, ParseStmt());
      out.push_back(std::move(s));
      if (Is(";")) {
        Advance();
      } else if (!AtEnd()) {
        return Err("expected ';' between statements");
      }
    }
    return out;
  }

 private:
  // ------------------------------------------------------------- helpers --
  const Token& Cur() const { return toks_[pos_]; }
  const Token& Peek(int k = 1) const {
    size_t p = pos_ + k;
    return p < toks_.size() ? toks_[p] : toks_.back();
  }
  bool AtEnd() const { return Cur().kind == TokKind::kEnd; }
  void Advance() { if (!AtEnd()) ++pos_; }

  bool Is(const std::string& text) const { return Cur().text == text; }
  bool IsKw(const std::string& kw) const {
    return Cur().kind == TokKind::kIdent && !Cur().quoted && Cur().text == kw;
  }
  bool Accept(const std::string& text) {
    if (Is(text)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptKw(const std::string& kw) {
    if (IsKw(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Expect(const std::string& text) {
    if (!Accept(text)) {
      return Status::ParseError("expected '" + text + "' near '" + Cur().text +
                                "' (offset " + std::to_string(Cur().pos) + ")");
    }
    return Status::OK();
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " near '" + Cur().text + "' (offset " +
                              std::to_string(Cur().pos) + ")");
  }
  Result<std::string> ExpectIdent() {
    if (Cur().kind != TokKind::kIdent) {
      return Status::ParseError("expected identifier near '" + Cur().text + "'");
    }
    std::string s = Cur().text;
    Advance();
    return s;
  }

  // ----------------------------------------------------------- statements --
  Result<StatementP> ParseStmt() {
    if (IsKw("SELECT") || IsKw("WITH")) {
      auto st = std::make_shared<Statement>();
      st->kind = StmtKind::kSelect;
      DASHDB_ASSIGN_OR_RETURN(st->select, ParseSelect());
      return st;
    }
    if (IsKw("VALUES")) {  // DB2 VALUES clause as a query
      auto st = std::make_shared<Statement>();
      st->kind = StmtKind::kSelect;
      auto sel = std::make_shared<SelectStmt>();
      DASHDB_ASSIGN_OR_RETURN(sel->values_rows, ParseValuesRows());
      st->select = std::move(sel);
      return st;
    }
    if (IsKw("INSERT")) return ParseInsert();
    if (IsKw("UPDATE")) return ParseUpdate();
    if (IsKw("DELETE")) return ParseDelete();
    if (IsKw("CREATE") || IsKw("DECLARE")) return ParseCreate();
    if (IsKw("DROP")) return ParseDrop();
    if (IsKw("TRUNCATE")) return ParseTruncate();
    if (IsKw("EXPLAIN")) {
      Advance();
      auto st = std::make_shared<Statement>();
      st->kind = StmtKind::kExplain;
      if (IsKw("ANALYZE")) {
        Advance();
        st->explain_analyze = true;
      }
      DASHDB_ASSIGN_OR_RETURN(st->select, ParseSelect());
      return st;
    }
    if (IsKw("SET")) return ParseSet();
    if (IsKw("CALL")) return ParseCall();
    return Err("unrecognized statement");
  }

  Result<std::vector<std::vector<ExprP>>> ParseValuesRows() {
    DASHDB_RETURN_IF_ERROR(Expect("VALUES"));
    std::vector<std::vector<ExprP>> rows;
    do {
      std::vector<ExprP> row;
      if (Accept("(")) {
        do {
          DASHDB_ASSIGN_OR_RETURN(ExprP e, ParseExpr());
          row.push_back(std::move(e));
        } while (Accept(","));
        DASHDB_RETURN_IF_ERROR(Expect(")"));
      } else {
        DASHDB_ASSIGN_OR_RETURN(ExprP e, ParseExpr());
        row.push_back(std::move(e));
      }
      rows.push_back(std::move(row));
    } while (Accept(","));
    return rows;
  }

  Result<StatementP> ParseInsert() {
    Advance();  // INSERT
    DASHDB_RETURN_IF_ERROR(Expect("INTO"));
    auto st = std::make_shared<Statement>();
    st->kind = StmtKind::kInsert;
    DASHDB_RETURN_IF_ERROR(ParseQualifiedName(&st->target_schema,
                                              &st->target_table));
    if (Accept("(")) {
      do {
        DASHDB_ASSIGN_OR_RETURN(std::string c, ExpectIdent());
        st->insert_columns.push_back(std::move(c));
      } while (Accept(","));
      DASHDB_RETURN_IF_ERROR(Expect(")"));
    }
    if (IsKw("VALUES")) {
      DASHDB_ASSIGN_OR_RETURN(st->insert_rows, ParseValuesRows());
    } else if (IsKw("SELECT") || IsKw("WITH")) {
      DASHDB_ASSIGN_OR_RETURN(st->select, ParseSelect());
    } else {
      return Err("expected VALUES or SELECT in INSERT");
    }
    return st;
  }

  Result<StatementP> ParseUpdate() {
    Advance();
    auto st = std::make_shared<Statement>();
    st->kind = StmtKind::kUpdate;
    DASHDB_RETURN_IF_ERROR(ParseQualifiedName(&st->target_schema,
                                              &st->target_table));
    DASHDB_RETURN_IF_ERROR(Expect("SET"));
    do {
      DASHDB_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
      DASHDB_RETURN_IF_ERROR(Expect("="));
      DASHDB_ASSIGN_OR_RETURN(ExprP e, ParseExpr());
      st->set_clauses.emplace_back(std::move(col), std::move(e));
    } while (Accept(","));
    if (AcceptKw("WHERE")) {
      DASHDB_ASSIGN_OR_RETURN(st->where, ParseExpr());
    }
    return st;
  }

  Result<StatementP> ParseDelete() {
    Advance();
    DASHDB_RETURN_IF_ERROR(Expect("FROM"));
    auto st = std::make_shared<Statement>();
    st->kind = StmtKind::kDelete;
    DASHDB_RETURN_IF_ERROR(ParseQualifiedName(&st->target_schema,
                                              &st->target_table));
    if (AcceptKw("WHERE")) {
      DASHDB_ASSIGN_OR_RETURN(st->where, ParseExpr());
    }
    return st;
  }

  Result<StatementP> ParseCreate() {
    bool declare = IsKw("DECLARE");
    Advance();  // CREATE / DECLARE
    auto st = std::make_shared<Statement>();
    bool temp = declare;
    if (AcceptKw("GLOBAL")) {
      if (!AcceptKw("TEMPORARY") && !AcceptKw("TEMP")) {
        return Err("expected TEMPORARY after GLOBAL");
      }
      temp = true;
    } else if (AcceptKw("TEMP") || AcceptKw("TEMPORARY")) {
      temp = true;
    }
    if (AcceptKw("TABLE")) {
      st->kind = StmtKind::kCreateTable;
      st->temporary = temp;
      DASHDB_RETURN_IF_ERROR(ParseQualifiedName(&st->target_schema,
                                                &st->target_table));
      DASHDB_RETURN_IF_ERROR(Expect("("));
      do {
        ColumnDefAst col;
        DASHDB_ASSIGN_OR_RETURN(col.name, ExpectIdent());
        DASHDB_ASSIGN_OR_RETURN(col.type_name, ExpectIdent());
        if (Accept("(")) {  // length / precision — accepted and ignored
          while (!Is(")") && !AtEnd()) Advance();
          DASHDB_RETURN_IF_ERROR(Expect(")"));
        }
        for (;;) {
          if (AcceptKw("NOT")) {
            DASHDB_RETURN_IF_ERROR(Expect("NULL"));
            col.not_null = true;
          } else if (AcceptKw("UNIQUE")) {
            col.unique = true;
          } else if (AcceptKw("PRIMARY")) {
            DASHDB_RETURN_IF_ERROR(Expect("KEY"));
            col.unique = true;
            col.not_null = true;
          } else {
            break;
          }
        }
        st->columns.push_back(std::move(col));
      } while (Accept(","));
      DASHDB_RETURN_IF_ERROR(Expect(")"));
      for (;;) {
        if (AcceptKw("ORGANIZE")) {
          DASHDB_RETURN_IF_ERROR(Expect("BY"));
          if (AcceptKw("ROW")) {
            st->organize_by_row = true;
          } else if (AcceptKw("COLUMN")) {
            st->organize_by_row = false;
          } else {
            return Err("expected ROW or COLUMN");
          }
        } else if (AcceptKw("DISTRIBUTE")) {
          DASHDB_RETURN_IF_ERROR(Expect("BY"));
          DASHDB_RETURN_IF_ERROR(Expect("HASH"));
          DASHDB_RETURN_IF_ERROR(Expect("("));
          DASHDB_ASSIGN_OR_RETURN(st->distribute_by, ExpectIdent());
          DASHDB_RETURN_IF_ERROR(Expect(")"));
        } else if (AcceptKw("ON")) {
          // DB2 "ON COMMIT ..." temp-table clauses — accepted and ignored.
          while (!Is(";") && !AtEnd()) Advance();
        } else {
          break;
        }
      }
      return st;
    }
    if (AcceptKw("VIEW")) {
      st->kind = StmtKind::kCreateView;
      DASHDB_RETURN_IF_ERROR(ParseQualifiedName(&st->target_schema,
                                                &st->target_table));
      DASHDB_RETURN_IF_ERROR(Expect("AS"));
      size_t body_start = Cur().pos;
      DASHDB_ASSIGN_OR_RETURN(st->select, ParseSelect());
      size_t body_end = Cur().pos;  // start of the token after the body
      st->view_sql = source_.substr(body_start, body_end - body_start);
      while (!st->view_sql.empty() &&
             (st->view_sql.back() == ';' || st->view_sql.back() == ' ' ||
              st->view_sql.back() == '\n')) {
        st->view_sql.pop_back();
      }
      return st;
    }
    if (AcceptKw("SCHEMA")) {
      st->kind = StmtKind::kCreateSchema;
      DASHDB_ASSIGN_OR_RETURN(st->target_table, ExpectIdent());
      return st;
    }
    if (AcceptKw("SEQUENCE")) {
      st->kind = StmtKind::kCreateSequence;
      DASHDB_RETURN_IF_ERROR(ParseQualifiedName(&st->target_schema,
                                                &st->target_table));
      return st;
    }
    if (AcceptKw("ALIAS")) {
      st->kind = StmtKind::kCreateAlias;
      DASHDB_RETURN_IF_ERROR(ParseQualifiedName(&st->target_schema,
                                                &st->target_table));
      DASHDB_RETURN_IF_ERROR(Expect("FOR"));
      DASHDB_RETURN_IF_ERROR(ParseQualifiedName(&st->alias_target_schema,
                                                &st->alias_target_table));
      return st;
    }
    return Err("unsupported CREATE");
  }

  Result<StatementP> ParseDrop() {
    Advance();
    auto st = std::make_shared<Statement>();
    st->kind = StmtKind::kDropTable;
    if (AcceptKw("VIEW")) {
      st->drop_is_view = true;
    } else if (!AcceptKw("TABLE")) {
      return Err("expected TABLE or VIEW after DROP");
    }
    if (AcceptKw("IF")) {
      DASHDB_RETURN_IF_ERROR(Expect("EXISTS"));
      st->if_exists = true;
    }
    DASHDB_RETURN_IF_ERROR(ParseQualifiedName(&st->target_schema,
                                              &st->target_table));
    return st;
  }

  Result<StatementP> ParseTruncate() {
    Advance();
    AcceptKw("TABLE");
    auto st = std::make_shared<Statement>();
    st->kind = StmtKind::kTruncate;
    DASHDB_RETURN_IF_ERROR(ParseQualifiedName(&st->target_schema,
                                              &st->target_table));
    // Oracle/DB2 trailing options (IMMEDIATE, DROP STORAGE, ...) ignored.
    while (!Is(";") && !AtEnd()) Advance();
    return st;
  }

  Result<StatementP> ParseSet() {
    Advance();
    auto st = std::make_shared<Statement>();
    st->kind = StmtKind::kSet;
    DASHDB_ASSIGN_OR_RETURN(st->set_name, ExpectIdent());
    Accept("=");
    if (Cur().kind == TokKind::kIdent || Cur().kind == TokKind::kString ||
        Cur().kind == TokKind::kNumber) {
      st->set_value = Cur().text;
      Advance();
    }
    return st;
  }

  Result<StatementP> ParseCall() {
    Advance();
    auto st = std::make_shared<Statement>();
    st->kind = StmtKind::kCall;
    DASHDB_ASSIGN_OR_RETURN(st->call_name, ExpectIdent());
    while (Accept(".")) {
      DASHDB_ASSIGN_OR_RETURN(std::string part, ExpectIdent());
      st->call_name += "." + part;
    }
    if (Accept("(")) {
      if (!Is(")")) {
        do {
          DASHDB_ASSIGN_OR_RETURN(ExprP e, ParseExpr());
          st->call_args.push_back(std::move(e));
        } while (Accept(","));
      }
      DASHDB_RETURN_IF_ERROR(Expect(")"));
    }
    return st;
  }

  Status ParseQualifiedName(std::string* schema, std::string* table) {
    DASHDB_ASSIGN_OR_RETURN(std::string first, ExpectIdent());
    if (Accept(".")) {
      DASHDB_ASSIGN_OR_RETURN(std::string second, ExpectIdent());
      *schema = first;
      *table = second;
    } else {
      *table = first;
    }
    return Status::OK();
  }

  // --------------------------------------------------------------- SELECT --
  Result<SelectP> ParseSelect() {
    auto sel = std::make_shared<SelectStmt>();
    if (AcceptKw("WITH")) {
      do {
        CteDef cte;
        DASHDB_ASSIGN_OR_RETURN(cte.name, ExpectIdent());
        DASHDB_RETURN_IF_ERROR(Expect("AS"));
        DASHDB_RETURN_IF_ERROR(Expect("("));
        DASHDB_ASSIGN_OR_RETURN(cte.query, ParseSelect());
        DASHDB_RETURN_IF_ERROR(Expect(")"));
        sel->ctes.push_back(std::move(cte));
      } while (Accept(","));
    }
    DASHDB_RETURN_IF_ERROR(Expect("SELECT"));
    if (AcceptKw("DISTINCT")) sel->distinct = true;
    else AcceptKw("ALL");
    do {
      SelectItem item;
      DASHDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (AcceptKw("AS")) {
        DASHDB_ASSIGN_OR_RETURN(item.alias, ExpectIdent());
      } else if (Cur().kind == TokKind::kIdent && !IsClauseKeyword()) {
        item.alias = Cur().text;
        Advance();
      }
      sel->items.push_back(std::move(item));
    } while (Accept(","));
    if (AcceptKw("FROM")) {
      DASHDB_RETURN_IF_ERROR(ParseFrom(sel.get()));
    }
    if (AcceptKw("WHERE")) {
      DASHDB_ASSIGN_OR_RETURN(sel->where, ParseExpr());
    }
    // Oracle hierarchical clauses, in either order.
    for (;;) {
      if (AcceptKw("START")) {
        DASHDB_RETURN_IF_ERROR(Expect("WITH"));
        DASHDB_ASSIGN_OR_RETURN(sel->start_with, ParseExpr());
      } else if (AcceptKw("CONNECT")) {
        DASHDB_RETURN_IF_ERROR(Expect("BY"));
        DASHDB_ASSIGN_OR_RETURN(sel->connect_by, ParseExpr());
      } else {
        break;
      }
    }
    if (AcceptKw("GROUP")) {
      DASHDB_RETURN_IF_ERROR(Expect("BY"));
      do {
        DASHDB_ASSIGN_OR_RETURN(ExprP e, ParseExpr());
        sel->group_by.push_back(std::move(e));
      } while (Accept(","));
    }
    if (AcceptKw("HAVING")) {
      DASHDB_ASSIGN_OR_RETURN(sel->having, ParseExpr());
    }
    if (AcceptKw("ORDER")) {
      DASHDB_RETURN_IF_ERROR(Expect("BY"));
      do {
        OrderItem oi;
        if (Cur().kind == TokKind::kNumber) {
          oi.ordinal = std::atoi(Cur().text.c_str());
          Advance();
        } else {
          DASHDB_ASSIGN_OR_RETURN(oi.expr, ParseExpr());
          // A bare column ref may name an output column; binder decides.
          if (oi.expr->kind == ExprKind::kColumnRef &&
              oi.expr->qualifier.empty()) {
            oi.output_name = oi.expr->name;
          }
        }
        if (AcceptKw("DESC")) oi.desc = true;
        else AcceptKw("ASC");
        if (AcceptKw("NULLS")) {  // NULLS FIRST/LAST accepted; NULLs sort high
          if (!AcceptKw("FIRST") && !AcceptKw("LAST")) {
            return Err("expected FIRST or LAST");
          }
        }
        sel->order_by.push_back(std::move(oi));
      } while (Accept(","));
    }
    // LIMIT / OFFSET (Netezza/PG) in either order.
    for (;;) {
      if (AcceptKw("LIMIT")) {
        if (Cur().kind != TokKind::kNumber) return Err("expected LIMIT count");
        sel->limit = std::atoll(Cur().text.c_str());
        Advance();
      } else if (AcceptKw("OFFSET")) {
        if (Cur().kind != TokKind::kNumber) return Err("expected OFFSET count");
        sel->offset = std::atoll(Cur().text.c_str());
        Advance();
        AcceptKw("ROWS");
        AcceptKw("ROW");
      } else {
        break;
      }
    }
    // DB2 FETCH FIRST n ROWS ONLY.
    if (AcceptKw("FETCH")) {
      if (!AcceptKw("FIRST") && !AcceptKw("NEXT")) {
        return Err("expected FIRST after FETCH");
      }
      int64_t n = 1;
      if (Cur().kind == TokKind::kNumber) {
        n = std::atoll(Cur().text.c_str());
        Advance();
      }
      if (!AcceptKw("ROWS")) AcceptKw("ROW");
      DASHDB_RETURN_IF_ERROR(Expect("ONLY"));
      sel->limit = sel->limit < 0 ? n : std::min(sel->limit, n);
    }
    return sel;
  }

  bool IsClauseKeyword() const {
    static const char* kw[] = {"FROM",  "WHERE", "GROUP",  "HAVING", "ORDER",
                               "LIMIT", "OFFSET", "FETCH",  "UNION",  "START",
                               "CONNECT", "AS",   "ON",     "JOIN",   "INNER",
                               "LEFT",  "RIGHT", "CROSS",  "USING",  "INTO"};
    for (const char* k : kw) {
      if (Cur().text == k && !Cur().quoted) return true;
    }
    return false;
  }

  Status ParseFrom(SelectStmt* sel) {
    DASHDB_ASSIGN_OR_RETURN(TableRef first, ParseTableRef());
    sel->from.push_back(std::move(first));
    for (;;) {
      if (Accept(",")) {
        DASHDB_ASSIGN_OR_RETURN(TableRef t, ParseTableRef());
        t.join = TableRef::JoinKind::kCross;  // comma join; WHERE holds conds
        sel->from.push_back(std::move(t));
        continue;
      }
      TableRef::JoinKind kind = TableRef::JoinKind::kNone;
      if (AcceptKw("INNER")) {
        kind = TableRef::JoinKind::kInner;
      } else if (AcceptKw("LEFT")) {
        AcceptKw("OUTER");
        kind = TableRef::JoinKind::kLeft;
      } else if (AcceptKw("RIGHT")) {
        AcceptKw("OUTER");
        kind = TableRef::JoinKind::kRight;
      } else if (AcceptKw("CROSS")) {
        kind = TableRef::JoinKind::kCross;
      } else if (IsKw("JOIN")) {
        kind = TableRef::JoinKind::kInner;
      } else {
        break;
      }
      if (kind != TableRef::JoinKind::kNone) {
        DASHDB_RETURN_IF_ERROR(Expect("JOIN"));
      }
      DASHDB_ASSIGN_OR_RETURN(TableRef t, ParseTableRef());
      t.join = kind;
      if (AcceptKw("ON")) {
        DASHDB_ASSIGN_OR_RETURN(t.join_condition, ParseExpr());
      } else if (AcceptKw("USING")) {
        DASHDB_RETURN_IF_ERROR(Expect("("));
        do {
          DASHDB_ASSIGN_OR_RETURN(std::string c, ExpectIdent());
          t.using_cols.push_back(std::move(c));
        } while (Accept(","));
        DASHDB_RETURN_IF_ERROR(Expect(")"));
      } else if (kind != TableRef::JoinKind::kCross) {
        return Err("expected ON or USING");
      }
      sel->from.push_back(std::move(t));
    }
    return Status::OK();
  }

  Result<TableRef> ParseTableRef() {
    TableRef t;
    if (Accept("(")) {
      DASHDB_ASSIGN_OR_RETURN(t.subquery, ParseSelect());
      DASHDB_RETURN_IF_ERROR(Expect(")"));
    } else {
      DASHDB_RETURN_IF_ERROR(ParseQualifiedName(&t.schema, &t.table));
    }
    if (AcceptKw("AS")) {
      DASHDB_ASSIGN_OR_RETURN(t.alias, ExpectIdent());
    } else if (Cur().kind == TokKind::kIdent && !IsClauseKeyword() &&
               !IsKw("JOIN") && !IsKw("WHERE") && !IsKw("GROUP") &&
               !IsKw("SET")) {
      t.alias = Cur().text;
      Advance();
    }
    return t;
  }

  // ---------------------------------------------------------- expressions --
  Result<ExprP> ParseExpr() { return ParseOr(); }

  Result<ExprP> ParseOr() {
    DASHDB_ASSIGN_OR_RETURN(ExprP l, ParseAnd());
    while (AcceptKw("OR")) {
      DASHDB_ASSIGN_OR_RETURN(ExprP r, ParseAnd());
      l = MakeBin(BinOp::kOr, std::move(l), std::move(r));
    }
    return l;
  }

  Result<ExprP> ParseAnd() {
    DASHDB_ASSIGN_OR_RETURN(ExprP l, ParseNot());
    while (AcceptKw("AND")) {
      DASHDB_ASSIGN_OR_RETURN(ExprP r, ParseNot());
      l = MakeBin(BinOp::kAnd, std::move(l), std::move(r));
    }
    return l;
  }

  Result<ExprP> ParseNot() {
    if (AcceptKw("NOT")) {
      DASHDB_ASSIGN_OR_RETURN(ExprP c, ParseNot());
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kUnary;
      e->unary_minus = false;  // logical NOT
      e->children = {std::move(c)};
      return e;
    }
    return ParsePredicate();
  }

  Result<ExprP> ParsePredicate() {
    DASHDB_ASSIGN_OR_RETURN(ExprP l, ParseAdditive());
    for (;;) {
      // Comparison operators.
      BinOp op;
      if (Is("=")) op = BinOp::kEq;
      else if (Is("<>")) op = BinOp::kNe;
      else if (Is("<=")) op = BinOp::kLe;
      else if (Is(">=")) op = BinOp::kGe;
      else if (Is("<")) op = BinOp::kLt;
      else if (Is(">")) op = BinOp::kGt;
      else break;
      Advance();
      DASHDB_ASSIGN_OR_RETURN(ExprP r, ParseAdditive());
      // Oracle (+) marker after either side.
      if (Accept("(+)")) r->oracle_outer = true;
      l = MakeBin(op, std::move(l), std::move(r));
    }
    // Postfix predicates.
    for (;;) {
      if (AcceptKw("IS")) {
        bool negate = AcceptKw("NOT");
        DASHDB_RETURN_IF_ERROR(Expect("NULL"));
        auto e = std::make_shared<Expr>();
        e->kind = ExprKind::kIsNull;
        e->negate = negate;
        e->children = {std::move(l)};
        l = std::move(e);
        continue;
      }
      if (AcceptKw("ISNULL") || AcceptKw("NOTNULL")) {
        auto e = std::make_shared<Expr>();
        e->kind = ExprKind::kIsNull;
        e->negate = toks_[pos_ - 1].text == "NOTNULL";
        e->children = {std::move(l)};
        l = std::move(e);
        continue;
      }
      if (AcceptKw("ISTRUE") || AcceptKw("ISFALSE")) {
        auto e = std::make_shared<Expr>();
        e->kind = ExprKind::kIsTrue;
        e->negate = toks_[pos_ - 1].text == "ISFALSE";
        e->children = {std::move(l)};
        l = std::move(e);
        continue;
      }
      bool negate = false;
      size_t save = pos_;
      if (AcceptKw("NOT")) negate = true;
      if (AcceptKw("LIKE")) {
        if (Cur().kind != TokKind::kString) return Err("expected LIKE pattern");
        auto e = std::make_shared<Expr>();
        e->kind = ExprKind::kLike;
        e->negate = negate;
        e->like_pattern = Cur().text;
        Advance();
        e->children = {std::move(l)};
        l = std::move(e);
        continue;
      }
      if (AcceptKw("IN")) {
        DASHDB_RETURN_IF_ERROR(Expect("("));
        auto e = std::make_shared<Expr>();
        e->kind = ExprKind::kInList;
        e->negate = negate;
        e->children.push_back(std::move(l));
        do {
          DASHDB_ASSIGN_OR_RETURN(ExprP item, ParseExpr());
          e->children.push_back(std::move(item));
        } while (Accept(","));
        DASHDB_RETURN_IF_ERROR(Expect(")"));
        l = std::move(e);
        continue;
      }
      if (AcceptKw("BETWEEN")) {
        DASHDB_ASSIGN_OR_RETURN(ExprP lo, ParseAdditive());
        DASHDB_RETURN_IF_ERROR(Expect("AND"));
        DASHDB_ASSIGN_OR_RETURN(ExprP hi, ParseAdditive());
        auto e = std::make_shared<Expr>();
        e->kind = ExprKind::kBetween;
        e->negate = negate;
        e->children = {std::move(l), std::move(lo), std::move(hi)};
        l = std::move(e);
        continue;
      }
      if (AcceptKw("OVERLAPS")) {
        DASHDB_ASSIGN_OR_RETURN(ExprP r, ParseAdditive());
        auto e = std::make_shared<Expr>();
        e->kind = ExprKind::kOverlaps;
        e->children = {std::move(l), std::move(r)};
        l = std::move(e);
        continue;
      }
      pos_ = save;  // NOT belonged to something else
      break;
    }
    return l;
  }

  Result<ExprP> ParseAdditive() {
    DASHDB_ASSIGN_OR_RETURN(ExprP l, ParseMultiplicative());
    for (;;) {
      BinOp op;
      if (Is("+")) op = BinOp::kAdd;
      else if (Is("-")) op = BinOp::kSub;
      else if (Is("||")) op = BinOp::kConcat;
      else break;
      Advance();
      DASHDB_ASSIGN_OR_RETURN(ExprP r, ParseMultiplicative());
      l = MakeBin(op, std::move(l), std::move(r));
    }
    return l;
  }

  Result<ExprP> ParseMultiplicative() {
    DASHDB_ASSIGN_OR_RETURN(ExprP l, ParseUnary());
    for (;;) {
      BinOp op;
      if (Is("*")) op = BinOp::kMul;
      else if (Is("/")) op = BinOp::kDiv;
      else if (Is("%")) op = BinOp::kMod;
      else break;
      Advance();
      DASHDB_ASSIGN_OR_RETURN(ExprP r, ParseUnary());
      l = MakeBin(op, std::move(l), std::move(r));
    }
    return l;
  }

  Result<ExprP> ParseUnary() {
    if (Accept("-")) {
      DASHDB_ASSIGN_OR_RETURN(ExprP c, ParseUnary());
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kUnary;
      e->unary_minus = true;
      e->children = {std::move(c)};
      return ParsePostfix(std::move(e));
    }
    Accept("+");
    // DB2: NEXT VALUE FOR seq / PREVIOUS VALUE FOR seq.
    if ((IsKw("NEXT") || IsKw("PREVIOUS")) && Peek().text == "VALUE") {
      bool next = IsKw("NEXT");
      Advance();  // NEXT/PREVIOUS
      Advance();  // VALUE
      DASHDB_RETURN_IF_ERROR(Expect("FOR"));
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kSequenceRef;
      e->seq_nextval = next;
      DASHDB_ASSIGN_OR_RETURN(e->name, ExpectIdent());
      return ParsePostfix(std::move(e));
    }
    DASHDB_ASSIGN_OR_RETURN(ExprP p, ParsePrimary());
    return ParsePostfix(std::move(p));
  }

  /// Postfix '::' casts (Netezza/PG expression::type).
  Result<ExprP> ParsePostfix(ExprP e) {
    while (Accept("::")) {
      DASHDB_ASSIGN_OR_RETURN(std::string tname, ExpectIdent());
      DASHDB_ASSIGN_OR_RETURN(TypeId t, TypeFromName(tname));
      auto cast = std::make_shared<Expr>();
      cast->kind = ExprKind::kCast;
      cast->cast_type = t;
      cast->children = {std::move(e)};
      e = std::move(cast);
    }
    return e;
  }

  Result<ExprP> ParsePrimary() {
    // Literals.
    if (Cur().kind == TokKind::kString) {
      Value v = Value::String(Cur().text);
      Advance();
      return MakeLit(std::move(v));
    }
    if (Cur().kind == TokKind::kNumber) {
      std::string s = Cur().text;
      Advance();
      if (s.find('.') != std::string::npos ||
          s.find('E') != std::string::npos ||
          s.find('e') != std::string::npos) {
        return MakeLit(Value::Double(std::strtod(s.c_str(), nullptr)));
      }
      return MakeLit(Value::Int64(std::strtoll(s.c_str(), nullptr, 10)));
    }
    if (Accept("(")) {
      DASHDB_ASSIGN_OR_RETURN(ExprP e, ParseExpr());
      if (Accept(",")) {
        // Row pair "(a, b)" — the operand form of OVERLAPS.
        auto pair = std::make_shared<Expr>();
        pair->kind = ExprKind::kFuncCall;
        pair->name = "$ROW";
        pair->children.push_back(std::move(e));
        do {
          DASHDB_ASSIGN_OR_RETURN(ExprP item, ParseExpr());
          pair->children.push_back(std::move(item));
        } while (Accept(","));
        DASHDB_RETURN_IF_ERROR(Expect(")"));
        return pair;
      }
      DASHDB_RETURN_IF_ERROR(Expect(")"));
      return e;
    }
    if (Is("*")) {
      Advance();
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kStar;
      return e;
    }
    if (Is("?")) {
      Advance();
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kParam;
      e->param_index = next_param_index_++;
      return e;
    }
    if (Cur().kind != TokKind::kIdent) return Err("expected expression");

    // Keyword-led forms.
    if (IsKw("NULL")) {
      Advance();
      return MakeLit(Value::Null(TypeId::kVarchar));
    }
    if (IsKw("TRUE")) {
      Advance();
      return MakeLit(Value::Boolean(true));
    }
    if (IsKw("FALSE")) {
      Advance();
      return MakeLit(Value::Boolean(false));
    }
    if (IsKw("DATE") && Peek().kind == TokKind::kString) {
      Advance();
      DASHDB_ASSIGN_OR_RETURN(int32_t days, ParseDate(Cur().text));
      Advance();
      return MakeLit(Value::Date(days));
    }
    if (IsKw("TIMESTAMP") && Peek().kind == TokKind::kString) {
      Advance();
      DASHDB_ASSIGN_OR_RETURN(int64_t us, ParseTimestamp(Cur().text));
      Advance();
      return MakeLit(Value::Timestamp(us));
    }
    if (IsKw("CASE")) return ParseCase();
    if (IsKw("CAST")) {
      Advance();
      DASHDB_RETURN_IF_ERROR(Expect("("));
      DASHDB_ASSIGN_OR_RETURN(ExprP inner, ParseExpr());
      DASHDB_RETURN_IF_ERROR(Expect("AS"));
      DASHDB_ASSIGN_OR_RETURN(std::string tname, ExpectIdent());
      if (Accept("(")) {  // length — ignored
        while (!Is(")") && !AtEnd()) Advance();
        DASHDB_RETURN_IF_ERROR(Expect(")"));
      }
      DASHDB_RETURN_IF_ERROR(Expect(")"));
      DASHDB_ASSIGN_OR_RETURN(TypeId t, TypeFromName(tname));
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kCast;
      e->cast_type = t;
      e->children = {std::move(inner)};
      return e;
    }
    if (IsKw("PRIOR")) {
      // CONNECT BY PRIOR col — represented as FuncCall "PRIOR"(colref).
      Advance();
      DASHDB_ASSIGN_OR_RETURN(ExprP inner, ParsePrimary());
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kFuncCall;
      e->name = "PRIOR";
      e->children = {std::move(inner)};
      return e;
    }

    // Identifier: column ref, function call, or sequence pseudo-column.
    DASHDB_ASSIGN_OR_RETURN(std::string first, ExpectIdent());
    if (Is("(")) return ParseFuncCall(std::move(first));
    if (Accept(".")) {
      if (Is("*")) {
        Advance();
        auto e = std::make_shared<Expr>();
        e->kind = ExprKind::kStar;
        e->qualifier = first;
        return e;
      }
      DASHDB_ASSIGN_OR_RETURN(std::string second, ExpectIdent());
      if (second == "NEXTVAL" || second == "CURRVAL") {
        auto e = std::make_shared<Expr>();
        e->kind = ExprKind::kSequenceRef;
        e->name = first;
        e->seq_nextval = second == "NEXTVAL";
        return e;
      }
      ExprP col = MakeCol(first, second);
      if (Accept("(+)")) col->oracle_outer = true;
      return col;
    }
    ExprP col = MakeCol("", first);
    if (Accept("(+)")) col->oracle_outer = true;
    return col;
  }

  Result<ExprP> ParseFuncCall(std::string name) {
    DASHDB_RETURN_IF_ERROR(Expect("("));
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kFuncCall;
    e->name = std::move(name);
    if (AcceptKw("DISTINCT")) e->distinct_arg = true;
    if (!Is(")")) {
      do {
        DASHDB_ASSIGN_OR_RETURN(ExprP a, ParseExpr());
        e->children.push_back(std::move(a));
      } while (Accept(","));
    }
    DASHDB_RETURN_IF_ERROR(Expect(")"));
    // Oracle PERCENTILE_CONT(f) WITHIN GROUP (ORDER BY x).
    if (AcceptKw("WITHIN")) {
      DASHDB_RETURN_IF_ERROR(Expect("GROUP"));
      DASHDB_RETURN_IF_ERROR(Expect("("));
      DASHDB_RETURN_IF_ERROR(Expect("ORDER"));
      DASHDB_RETURN_IF_ERROR(Expect("BY"));
      DASHDB_ASSIGN_OR_RETURN(ExprP x, ParseExpr());
      AcceptKw("DESC");
      AcceptKw("ASC");
      DASHDB_RETURN_IF_ERROR(Expect(")"));
      e->children.push_back(std::move(x));  // fraction first, then target
    }
    return e;
  }

  Result<ExprP> ParseCase() {
    Advance();  // CASE
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kCase;
    if (!IsKw("WHEN")) {
      e->has_case_operand = true;
      DASHDB_ASSIGN_OR_RETURN(ExprP operand, ParseExpr());
      e->children.push_back(std::move(operand));
    }
    while (AcceptKw("WHEN")) {
      DASHDB_ASSIGN_OR_RETURN(ExprP cond, ParseExpr());
      DASHDB_RETURN_IF_ERROR(Expect("THEN"));
      DASHDB_ASSIGN_OR_RETURN(ExprP then, ParseExpr());
      e->children.push_back(std::move(cond));
      e->children.push_back(std::move(then));
    }
    if (AcceptKw("ELSE")) {
      DASHDB_ASSIGN_OR_RETURN(e->else_branch, ParseExpr());
    }
    DASHDB_RETURN_IF_ERROR(Expect("END"));
    return e;
  }

 public:
  void set_source(std::string s) { source_ = std::move(s); }

 private:
  std::vector<Token> toks_;
  size_t pos_ = 0;
  /// '?' markers numbered in statement text order (PREPARE/EXECUTE).
  int next_param_index_ = 0;
  std::string source_;
};

}  // namespace

Result<ast::StatementP> ParseStatement(const std::string& sql) {
  DASHDB_ASSIGN_OR_RETURN(std::vector<Token> toks, Lex(sql));
  Parser p(std::move(toks));
  p.set_source(sql);
  return p.ParseOne();
}

Result<std::vector<ast::StatementP>> ParseScript(const std::string& sql) {
  DASHDB_ASSIGN_OR_RETURN(std::vector<Token> toks, Lex(sql));
  Parser p(std::move(toks));
  p.set_source(sql);
  return p.ParseAll();
}

namespace ast {
ExprP MakeLiteral(Value v) { return MakeLit(std::move(v)); }
ExprP MakeColumnRef(std::string q, std::string n) {
  return MakeCol(std::move(q), std::move(n));
}
ExprP MakeBinary(BinOp op, ExprP l, ExprP r) {
  return MakeBin(op, std::move(l), std::move(r));
}
}  // namespace ast

}  // namespace dashdb
