#include "sql/plan_cache.h"

#include <cctype>

#include "common/metrics.h"

namespace dashdb {
namespace {

struct PlanCacheInstruments {
  Counter* hits;
  Counter* misses;
  Counter* evictions;
  Gauge* entries;
};

PlanCacheInstruments& Instruments() {
  static PlanCacheInstruments in{
      MetricRegistry::Global().GetCounter("server.plan_cache_hits"),
      MetricRegistry::Global().GetCounter("server.plan_cache_misses"),
      MetricRegistry::Global().GetCounter("server.plan_cache_evictions"),
      MetricRegistry::Global().GetGauge("server.plan_cache_entries"),
  };
  return in;
}

}  // namespace

std::string NormalizeSql(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  size_t i = 0;
  const size_t n = sql.size();
  bool pending_space = false;
  auto emit = [&](char c) {
    if (pending_space && !out.empty()) out.push_back(' ');
    pending_space = false;
    out.push_back(c);
  };
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = true;
      ++i;
      continue;
    }
    // Comments collapse to a separator, like whitespace.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      pending_space = true;
      continue;
    }
    if (c == '/' && i + 1 < n && sql[i + 1] == '*') {
      size_t end = sql.find("*/", i + 2);
      i = (end == std::string::npos) ? n : end + 2;
      pending_space = true;
      continue;
    }
    // String literals and quoted identifiers keep their exact text
    // (including case and embedded whitespace) — they are semantic.
    if (c == '\'' || c == '"') {
      const char quote = c;
      emit(c);
      ++i;
      while (i < n) {
        out.push_back(sql[i]);
        if (sql[i] == quote) {
          // '' inside a string is an escaped quote, not the end.
          if (quote == '\'' && i + 1 < n && sql[i + 1] == '\'') {
            out.push_back(sql[++i]);
            ++i;
            continue;
          }
          ++i;
          break;
        }
        ++i;
      }
      continue;
    }
    emit(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    ++i;
  }
  return out;
}

std::string PlanCache::Key(const std::string& sql, Dialect dialect) {
  return std::to_string(static_cast<int>(dialect)) + "|" + NormalizeSql(sql);
}

ast::StatementP PlanCache::Lookup(const std::string& sql, Dialect dialect,
                                  uint64_t catalog_version,
                                  uint64_t stats_version) {
  const std::string key = Key(sql, dialect);
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    Instruments().misses->Add(1);
    return nullptr;
  }
  if (it->second.catalog_version != catalog_version ||
      it->second.stats_version != stats_version) {
    // Compiled against a world that no longer exists: retire it.
    EvictLocked(key);
    ++misses_;
    Instruments().misses->Add(1);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  ++hits_;
  Instruments().hits->Add(1);
  return it->second.stmt;
}

void PlanCache::Insert(const std::string& sql, Dialect dialect,
                       uint64_t catalog_version, uint64_t stats_version,
                       ast::StatementP stmt) {
  if (capacity_ == 0 || !stmt) return;
  const std::string key = Key(sql, dialect);
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.stmt = std::move(stmt);
    it->second.catalog_version = catalog_version;
    it->second.stats_version = stats_version;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  while (entries_.size() >= capacity_ && !lru_.empty()) {
    Instruments().evictions->Add(1);
    EvictLocked(lru_.back());
  }
  lru_.push_front(key);
  Entry e;
  e.stmt = std::move(stmt);
  e.catalog_version = catalog_version;
  e.stats_version = stats_version;
  e.lru_pos = lru_.begin();
  entries_.emplace(key, std::move(e));
  Instruments().entries->Set(static_cast<int64_t>(entries_.size()));
}

void PlanCache::EvictLocked(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  Instruments().entries->Set(static_cast<int64_t>(entries_.size()));
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  entries_.clear();
  lru_.clear();
  Instruments().entries->Set(0);
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

uint64_t PlanCache::hits() const {
  std::lock_guard<std::mutex> lk(mu_);
  return hits_;
}

uint64_t PlanCache::misses() const {
  std::lock_guard<std::mutex> lk(mu_);
  return misses_;
}

}  // namespace dashdb
