#include "sql/lexer.h"

#include <cctype>

namespace dashdb {

Result<std::vector<Token>> Lex(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && sql[i + 1] == '*') {
      size_t end = sql.find("*/", i + 2);
      if (end == std::string::npos) {
        return Status::ParseError("unterminated block comment");
      }
      i = end + 2;
      continue;
    }
    Token t;
    t.pos = i;
    // String literal.
    if (c == '\'') {
      t.kind = TokKind::kString;
      ++i;
      std::string s;
      for (;;) {
        if (i >= n) return Status::ParseError("unterminated string literal");
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            s.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          break;
        }
        s.push_back(sql[i++]);
      }
      t.text = std::move(s);
      out.push_back(std::move(t));
      continue;
    }
    // Quoted identifier.
    if (c == '"') {
      t.kind = TokKind::kIdent;
      t.quoted = true;
      ++i;
      std::string s;
      while (i < n && sql[i] != '"') s.push_back(sql[i++]);
      if (i >= n) return Status::ParseError("unterminated quoted identifier");
      ++i;
      t.text = std::move(s);
      out.push_back(std::move(t));
      continue;
    }
    // Number.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      t.kind = TokKind::kNumber;
      std::string s;
      bool dot = false, exp = false;
      while (i < n) {
        char d = sql[i];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          s.push_back(d);
          ++i;
        } else if (d == '.' && !dot && !exp) {
          dot = true;
          s.push_back(d);
          ++i;
        } else if ((d == 'e' || d == 'E') && !exp &&
                   i + 1 < n &&
                   (std::isdigit(static_cast<unsigned char>(sql[i + 1])) ||
                    sql[i + 1] == '-' || sql[i + 1] == '+')) {
          exp = true;
          s.push_back(d);
          ++i;
          if (sql[i] == '-' || sql[i] == '+') s.push_back(sql[i++]);
        } else {
          break;
        }
      }
      t.text = std::move(s);
      out.push_back(std::move(t));
      continue;
    }
    // Identifier / keyword.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      t.kind = TokKind::kIdent;
      std::string s;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_' || sql[i] == '$' || sql[i] == '#')) {
        s.push_back(
            static_cast<char>(std::toupper(static_cast<unsigned char>(sql[i]))));
        ++i;
      }
      t.text = std::move(s);
      out.push_back(std::move(t));
      continue;
    }
    // Oracle outer-join marker (+).
    if (c == '(' && i + 2 < n && sql[i + 1] == '+' && sql[i + 2] == ')') {
      t.kind = TokKind::kOp;
      t.text = "(+)";
      i += 3;
      out.push_back(std::move(t));
      continue;
    }
    // Multi-char operators.
    t.kind = TokKind::kOp;
    auto two = [&](const char* op) {
      return i + 1 < n && sql[i] == op[0] && sql[i + 1] == op[1];
    };
    if (two("<=") || two(">=") || two("<>") || two("!=") || two("||") ||
        two("::")) {
      t.text = sql.substr(i, 2);
      if (t.text == "!=") t.text = "<>";
      i += 2;
    } else if (std::string("+-*/%(),.;=<>?").find(c) != std::string::npos) {
      t.text = std::string(1, c);
      ++i;
    } else {
      return Status::ParseError(std::string("unexpected character '") + c +
                                "' at offset " + std::to_string(i));
    }
    out.push_back(std::move(t));
  }
  Token end;
  end.kind = TokKind::kEnd;
  end.pos = n;
  out.push_back(std::move(end));
  return out;
}

}  // namespace dashdb
