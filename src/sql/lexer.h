// SQL lexer shared by all dialects.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace dashdb {

enum class TokKind : uint8_t {
  kIdent,        ///< unquoted (upper-cased) or "quoted" identifier
  kString,       ///< 'literal' (doubled '' unescaped)
  kNumber,       ///< integer or decimal literal text
  kOp,           ///< operator / punctuation
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   ///< upper-cased for unquoted idents; verbatim otherwise
  size_t pos = 0;     ///< byte offset for error messages
  bool quoted = false;
};

/// Tokenizes `sql`. Understands: identifiers, quoted identifiers, string
/// literals, numbers, line (--) and block comments, multi-char operators
/// (<=, >=, <>, !=, ||, ::) and the Oracle outer-join marker `(+)`.
Result<std::vector<Token>> Lex(const std::string& sql);

}  // namespace dashdb
