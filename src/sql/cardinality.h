// Cardinality estimation for the cost-based optimizer (DESIGN.md
// "Cost-based optimization"). Base-table and post-filter row estimates come
// from statistics the storage layer already maintains — per-stride synopsis
// min/max + null counts, frequency-dictionary distinct counts — combined
// under the textbook uniformity + independence assumptions. Join output is
// estimated with distinct-count containment: |R ⋈ S| = |R|·|S| /
// max(ndv(R.k), ndv(S.k)). Residual (non-sargable) conjuncts fall back to
// the observed mean of the PR-5 `exec.filter_selectivity` histogram, so the
// default selectivity tracks the workload instead of a fixed magic number.
#pragma once

#include <vector>

#include "storage/column_table.h"

namespace dashdb {

/// Cardinality estimate for one FROM item backed by a column table.
struct RelationEstimate {
  bool has_stats = false;
  double base_rows = 0;  ///< live rows before any predicate
  double rows = 0;       ///< after pushed-down predicates
  /// Per table column (full schema order), valid when has_stats.
  std::vector<ColumnStatsView> cols;

  /// Estimated distinct count of `table_col` after the predicates: the
  /// statistics NDV capped by the surviving row estimate.
  double KeyNdv(int table_col) const;
};

class CardinalityEstimator {
 public:
  /// Base + post-filter estimate for a column table under pushed-down
  /// storage predicates.
  static RelationEstimate EstimateScan(
      const ColumnTable& table, const std::vector<ColumnPredicate>& preds);

  /// Selectivity of one storage predicate against one column's statistics
  /// (range overlap over the synopsis domain; equality = 1/NDV; always
  /// scaled by the column's non-null fraction).
  static double PredicateSelectivity(const ColumnStatsView& cs,
                                     const ColumnPredicate& p);

  /// Distinct-count containment join estimate. NDV of 0 means unknown on
  /// that side; with both unknown the estimate degrades to max(l, r) (the
  /// FK-join shape).
  static double JoinRows(double left_rows, double right_rows,
                         double left_ndv, double right_ndv);

  /// Selectivity charged per residual (non-sargable) conjunct: the running
  /// mean of the `exec.filter_selectivity` histogram, clamped to
  /// [0.05, 0.95]; 1/3 before any observation exists.
  static double ResidualConjunctSelectivity();
};

}  // namespace dashdb
