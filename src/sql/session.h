// SQL session state: the dialect variable (paper II.C.2 — "a session
// variable is leveraged allowing individual sessions to decide the dialect
// to use when compiling SQL"), default schema, sequences, and the execution
// context handed to expressions.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/dialect.h"
#include "common/flat_hash.h"
#include "common/query_context.h"
#include "common/trace.h"
#include "exec/expr.h"
#include "sql/ast.h"

namespace dashdb {

/// A statement compiled by PREPARE: the shared parsed AST plus the dialect
/// it was compiled under (paper II.C.2 — objects remember their dialect).
/// EXECUTE re-binds the AST with the call's parameter vector; the AST
/// itself is immutable and may be shared with the engine's plan cache.
struct PreparedStatement {
  ast::StatementP stmt;
  Dialect dialect = Dialect::kAnsi;
  std::string sql;
  int param_count = 0;
};

/// One sequence's state (Oracle seq.NEXTVAL/CURRVAL, DB2 NEXT VALUE FOR).
struct SequenceState {
  int64_t next = 1;
  int64_t current = 0;
  bool has_current = false;
};

/// Join-order planning mode (SET OPTIMIZER COST|HEURISTIC).
enum class OptimizerMode : uint8_t { kCost = 0, kHeuristic };

/// A Bloom semi-join filter pre-installed on this session, keyed by
/// qualified table name + column name. The binder attaches it to the
/// matching table scan at plan time. This is the landing spot for filters
/// shipped across MPP shards (the coordinator builds one from a dimension
/// table and serializes it into the shard request).
struct RuntimeScanFilter {
  std::string table;   ///< qualified name, upper case
  std::string column;  ///< column name, upper case
  std::shared_ptr<const BloomPrefilter> bloom;
};

class Session {
 public:
  Dialect dialect() const { return dialect_; }
  void set_dialect(Dialect d) {
    dialect_ = d;
    exec_ctx_.dialect = d;
  }

  const std::string& default_schema() const { return default_schema_; }
  void set_default_schema(std::string s) { default_schema_ = std::move(s); }

  ExecContext& exec_ctx() { return exec_ctx_; }
  const ExecContext& exec_ctx() const { return exec_ctx_; }

  /// Session cap on intra-query parallelism (SET DOP / CURRENT DEGREE).
  /// 0 = ANY: use the engine-configured degree. The engine clamps the
  /// effective degree to [1, engine parallelism].
  int max_parallelism() const { return max_parallelism_; }
  void set_max_parallelism(int dop) { max_parallelism_ = dop; }

  /// Span tree recorded by the last EXPLAIN ANALYZE on this session (null
  /// until one runs). Programmatic access for trace-stability tests and
  /// tooling; the rendered form is in the statement's message.
  std::shared_ptr<const Trace> last_trace() const { return last_trace_; }
  void set_last_trace(std::shared_ptr<const Trace> t) {
    last_trace_ = std::move(t);
  }

  /// Sequences are session-scoped in this engine (CURRVAL is per session in
  /// real systems; NEXTVAL sharing across sessions is out of scope).
  Status CreateSequence(const std::string& name) {
    if (sequences_.count(name)) {
      return Status::AlreadyExists("sequence " + name);
    }
    sequences_[name] = SequenceState{};
    return Status::OK();
  }

  Result<int64_t> SequenceNext(const std::string& name) {
    auto it = sequences_.find(name);
    if (it == sequences_.end()) return Status::NotFound("sequence " + name);
    it->second.current = it->second.next++;
    it->second.has_current = true;
    return it->second.current;
  }

  Result<int64_t> SequenceCurrent(const std::string& name) const {
    auto it = sequences_.find(name);
    if (it == sequences_.end()) return Status::NotFound("sequence " + name);
    if (!it->second.has_current) {
      return Status::SemanticError("CURRVAL before NEXTVAL for " + name);
    }
    return it->second.current;
  }

  bool HasSequence(const std::string& name) const {
    return sequences_.count(name) > 0;
  }

  /// Cost-based vs. FROM-order join planning (SET OPTIMIZER).
  OptimizerMode optimizer_mode() const { return optimizer_mode_; }
  void set_optimizer_mode(OptimizerMode m) { optimizer_mode_ = m; }

  /// Mid-query re-planning on cardinality mis-estimates (SET ADAPTIVE).
  bool adaptive_enabled() const { return adaptive_enabled_; }
  void set_adaptive_enabled(bool on) { adaptive_enabled_ = on; }

  /// SET SHARED_SCAN ON|OFF: attach this session's table scans to in-flight
  /// circular scans of the same (table, column set) so concurrent queries
  /// share one pass over the pages (OFF by default).
  bool shared_scan_enabled() const { return shared_scan_enabled_; }
  void set_shared_scan_enabled(bool on) { shared_scan_enabled_ = on; }

  /// SET RESULT_CACHE ON|OFF: serve repeated read-only statements from the
  /// engine's versioned result cache (OFF by default; writes invalidate by
  /// version bump, so a hit is never stale).
  bool result_cache_enabled() const { return result_cache_enabled_; }
  void set_result_cache_enabled(bool on) { result_cache_enabled_ = on; }

  /// SET SORT SERIAL|PARALLEL: force the single-threaded stable_sort
  /// oracle instead of the normalized-key run sort + merge (PARALLEL by
  /// default; SERIAL is the byte-identity baseline and bench A arm).
  bool serial_sort() const { return serial_sort_; }
  void set_serial_sort(bool on) { serial_sort_ = on; }

  /// SET TOPN ON|OFF: allow the binder to fuse ORDER BY + LIMIT/OFFSET
  /// into the bounded-heap TopNOp (ON by default).
  bool topn_enabled() const { return topn_enabled_; }
  void set_topn_enabled(bool on) { topn_enabled_ = on; }

  // --- query governance (DESIGN.md "Query governance") -------------------

  /// SET STATEMENT_TIMEOUT <seconds>: deadline armed on every subsequent
  /// statement's QueryContext. 0 = none.
  double statement_timeout_seconds() const { return statement_timeout_s_; }
  void set_statement_timeout_seconds(double s) {
    statement_timeout_s_ = s > 0 ? s : 0;
  }

  /// SET MEM_BUDGET <bytes>: per-statement memory reservation cap charged
  /// by materializing operators. 0 = unlimited.
  int64_t mem_budget_bytes() const { return mem_budget_bytes_; }
  void set_mem_budget_bytes(int64_t b) { mem_budget_bytes_ = b > 0 ? b : 0; }

  /// SET ADMISSION ON|OFF: whether this session's SELECTs pass through the
  /// engine's admission controller (ON by default; OFF bypasses queueing).
  bool admission_enabled() const { return admission_enabled_; }
  void set_admission_enabled(bool on) { admission_enabled_ = on; }

  /// The governor of the statement currently executing on this session
  /// (null between statements). Published by the engine under a mutex so a
  /// concurrent CANCEL from another thread targets the right statement.
  void PublishCurrentQuery(std::shared_ptr<QueryContext> qc) {
    std::lock_guard<std::mutex> lk(query_mu_);
    current_query_ = std::move(qc);
  }

  /// Cancels the in-flight statement, if any. Returns whether one was
  /// running. Safe from any thread (the CANCEL path of a serving layer).
  bool CancelCurrentQuery() {
    std::lock_guard<std::mutex> lk(query_mu_);
    if (!current_query_) return false;
    current_query_->Cancel();
    return true;
  }

  std::shared_ptr<QueryContext> current_query() const {
    std::lock_guard<std::mutex> lk(query_mu_);
    return current_query_;
  }

  /// Test hook: the next statement executes under this pre-armed context
  /// (one-shot). Lets deterministic tests arm CancelAfterChecks before the
  /// engine creates the per-statement governor.
  void InjectNextQueryContext(std::shared_ptr<QueryContext> qc) {
    pending_query_ = std::move(qc);
  }
  std::shared_ptr<QueryContext> TakeInjectedQueryContext() {
    return std::move(pending_query_);
  }

  // --- prepared statements (serving layer PREPARE/EXECUTE) ---------------

  /// Registers (or replaces) a named prepared statement.
  void AddPrepared(const std::string& name, PreparedStatement ps) {
    prepared_[name] = std::move(ps);
  }

  Result<PreparedStatement> GetPrepared(const std::string& name) const {
    auto it = prepared_.find(name);
    if (it == prepared_.end()) {
      return Status::NotFound("prepared statement " + name);
    }
    return it->second;
  }

  bool RemovePrepared(const std::string& name) {
    return prepared_.erase(name) > 0;
  }

  /// Parameter vector for the statement currently binding ('?' markers).
  /// Set by the engine around ExecutePrepared; one statement binds at a
  /// time per session, so this is plain session state, not shared state.
  void set_bind_params(std::vector<Value> params) {
    bind_params_ = std::move(params);
  }
  void clear_bind_params() { bind_params_.clear(); }

  Result<Value> BindParam(int index) const {
    if (index < 0 || static_cast<size_t>(index) >= bind_params_.size()) {
      return Status::SemanticError(
          "parameter ?" + std::to_string(index + 1) + " not bound (" +
          std::to_string(bind_params_.size()) + " supplied)");
    }
    return bind_params_[static_cast<size_t>(index)];
  }

  /// Pre-installed scan filters (cross-shard Bloom pushdown). Replaces any
  /// existing filter on the same table+column.
  void AddRuntimeFilter(RuntimeScanFilter f) {
    for (auto& existing : runtime_filters_) {
      if (existing.table == f.table && existing.column == f.column) {
        existing.bloom = std::move(f.bloom);
        return;
      }
    }
    runtime_filters_.push_back(std::move(f));
  }
  const std::vector<RuntimeScanFilter>& runtime_filters() const {
    return runtime_filters_;
  }
  void ClearRuntimeFilters() { runtime_filters_.clear(); }

 private:
  Dialect dialect_ = Dialect::kAnsi;
  std::string default_schema_ = "PUBLIC";
  int max_parallelism_ = 0;  ///< 0 = ANY
  OptimizerMode optimizer_mode_ = OptimizerMode::kCost;
  bool adaptive_enabled_ = true;
  bool shared_scan_enabled_ = false;
  bool result_cache_enabled_ = false;
  bool serial_sort_ = false;
  bool topn_enabled_ = true;
  double statement_timeout_s_ = 0;
  int64_t mem_budget_bytes_ = 0;
  bool admission_enabled_ = true;
  mutable std::mutex query_mu_;
  std::shared_ptr<QueryContext> current_query_;
  std::shared_ptr<QueryContext> pending_query_;
  std::vector<RuntimeScanFilter> runtime_filters_;
  std::shared_ptr<const Trace> last_trace_;
  ExecContext exec_ctx_;
  std::map<std::string, SequenceState> sequences_;
  std::map<std::string, PreparedStatement> prepared_;
  std::vector<Value> bind_params_;
};

}  // namespace dashdb
