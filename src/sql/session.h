// SQL session state: the dialect variable (paper II.C.2 — "a session
// variable is leveraged allowing individual sessions to decide the dialect
// to use when compiling SQL"), default schema, sequences, and the execution
// context handed to expressions.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/dialect.h"
#include "common/trace.h"
#include "exec/expr.h"

namespace dashdb {

/// One sequence's state (Oracle seq.NEXTVAL/CURRVAL, DB2 NEXT VALUE FOR).
struct SequenceState {
  int64_t next = 1;
  int64_t current = 0;
  bool has_current = false;
};

class Session {
 public:
  Dialect dialect() const { return dialect_; }
  void set_dialect(Dialect d) {
    dialect_ = d;
    exec_ctx_.dialect = d;
  }

  const std::string& default_schema() const { return default_schema_; }
  void set_default_schema(std::string s) { default_schema_ = std::move(s); }

  ExecContext& exec_ctx() { return exec_ctx_; }
  const ExecContext& exec_ctx() const { return exec_ctx_; }

  /// Session cap on intra-query parallelism (SET DOP / CURRENT DEGREE).
  /// 0 = ANY: use the engine-configured degree. The engine clamps the
  /// effective degree to [1, engine parallelism].
  int max_parallelism() const { return max_parallelism_; }
  void set_max_parallelism(int dop) { max_parallelism_ = dop; }

  /// Span tree recorded by the last EXPLAIN ANALYZE on this session (null
  /// until one runs). Programmatic access for trace-stability tests and
  /// tooling; the rendered form is in the statement's message.
  std::shared_ptr<const Trace> last_trace() const { return last_trace_; }
  void set_last_trace(std::shared_ptr<const Trace> t) {
    last_trace_ = std::move(t);
  }

  /// Sequences are session-scoped in this engine (CURRVAL is per session in
  /// real systems; NEXTVAL sharing across sessions is out of scope).
  Status CreateSequence(const std::string& name) {
    if (sequences_.count(name)) {
      return Status::AlreadyExists("sequence " + name);
    }
    sequences_[name] = SequenceState{};
    return Status::OK();
  }

  Result<int64_t> SequenceNext(const std::string& name) {
    auto it = sequences_.find(name);
    if (it == sequences_.end()) return Status::NotFound("sequence " + name);
    it->second.current = it->second.next++;
    it->second.has_current = true;
    return it->second.current;
  }

  Result<int64_t> SequenceCurrent(const std::string& name) const {
    auto it = sequences_.find(name);
    if (it == sequences_.end()) return Status::NotFound("sequence " + name);
    if (!it->second.has_current) {
      return Status::SemanticError("CURRVAL before NEXTVAL for " + name);
    }
    return it->second.current;
  }

  bool HasSequence(const std::string& name) const {
    return sequences_.count(name) > 0;
  }

 private:
  Dialect dialect_ = Dialect::kAnsi;
  std::string default_schema_ = "PUBLIC";
  int max_parallelism_ = 0;  ///< 0 = ANY
  std::shared_ptr<const Trace> last_trace_;
  ExecContext exec_ctx_;
  std::map<std::string, SequenceState> sequences_;
};

}  // namespace dashdb
