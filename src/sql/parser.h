// Recursive-descent SQL parser covering ANSI SQL plus the dialect surfaces
// of paper II.C.1: Oracle (DUAL, ROWNUM, (+) outer joins, CONNECT BY,
// seq.NEXTVAL/CURRVAL, DATE literals), Netezza/PostgreSQL (LIMIT/OFFSET,
// ::casts, ISNULL/NOTNULL, ISTRUE/ISFALSE, JOIN USING, OVERLAPS, ORDER BY
// ordinal, CREATE TEMP TABLE), and DB2 (VALUES clause, NEXT VALUE FOR,
// DECLARE GLOBAL TEMPORARY TABLE, FETCH FIRST n ROWS ONLY).
#pragma once

#include "common/status.h"
#include "sql/ast.h"
#include "sql/lexer.h"

namespace dashdb {

/// Parses one statement (trailing ';' optional).
Result<ast::StatementP> ParseStatement(const std::string& sql);

/// Splits a script on top-level ';' and parses each statement.
Result<std::vector<ast::StatementP>> ParseScript(const std::string& sql);

}  // namespace dashdb
