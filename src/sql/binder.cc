#include "sql/binder.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "exec/functions.h"
#include "exec/sort.h"
#include "sql/cardinality.h"
#include "sql/parser.h"

namespace dashdb {

using ast::BinOp;
using ast::ExprKind;
using ast::ExprP;

// ------------------------------------------------------------ AstToString --

std::string AstToString(const ExprP& e) {
  if (!e) return "<null>";
  switch (e->kind) {
    case ExprKind::kLiteral:
      return "lit:" + e->literal.ToString();
    case ExprKind::kColumnRef:
      return e->qualifier.empty() ? e->name : e->qualifier + "." + e->name;
    case ExprKind::kStar:
      return e->qualifier.empty() ? "*" : e->qualifier + ".*";
    case ExprKind::kParam:
      return "?" + std::to_string(e->param_index + 1);
    case ExprKind::kBinary: {
      static const char* ops[] = {"+", "-", "*", "/", "%",  "||", "=",
                                  "<>", "<", "<=", ">", ">=", "AND", "OR"};
      return "(" + AstToString(e->children[0]) + " " +
             ops[static_cast<int>(e->bin_op)] + " " +
             AstToString(e->children[1]) + ")";
    }
    case ExprKind::kUnary:
      return (e->unary_minus ? "-" : "NOT ") + AstToString(e->children[0]);
    case ExprKind::kFuncCall: {
      std::string s = e->name + "(";
      if (e->distinct_arg) s += "DISTINCT ";
      for (size_t i = 0; i < e->children.size(); ++i) {
        if (i) s += ",";
        s += AstToString(e->children[i]);
      }
      return s + ")";
    }
    case ExprKind::kCase: {
      std::string s = "CASE";
      for (const auto& c : e->children) s += " " + AstToString(c);
      if (e->else_branch) s += " ELSE " + AstToString(e->else_branch);
      return s + " END";
    }
    case ExprKind::kCast:
      return "CAST(" + AstToString(e->children[0]) + " AS " +
             TypeName(e->cast_type) + ")";
    case ExprKind::kIsNull:
      return AstToString(e->children[0]) +
             (e->negate ? " IS NOT NULL" : " IS NULL");
    case ExprKind::kIsTrue:
      return AstToString(e->children[0]) + (e->negate ? " ISFALSE" : " ISTRUE");
    case ExprKind::kLike:
      return AstToString(e->children[0]) + (e->negate ? " NOT LIKE " : " LIKE ") +
             e->like_pattern;
    case ExprKind::kInList: {
      std::string s = AstToString(e->children[0]) +
                      (e->negate ? " NOT IN (" : " IN (");
      for (size_t i = 1; i < e->children.size(); ++i) {
        if (i > 1) s += ",";
        s += AstToString(e->children[i]);
      }
      return s + ")";
    }
    case ExprKind::kBetween:
      return AstToString(e->children[0]) + " BETWEEN " +
             AstToString(e->children[1]) + " AND " + AstToString(e->children[2]);
    case ExprKind::kSequenceRef:
      return e->name + (e->seq_nextval ? ".NEXTVAL" : ".CURRVAL");
    case ExprKind::kOverlaps:
      return AstToString(e->children[0]) + " OVERLAPS " +
             AstToString(e->children[1]);
  }
  return "?";
}

namespace {

// ------------------------------------------------------------------ scope --

struct ScopeItem {
  std::string alias;  ///< table alias (upper), or "$agg" for agg outputs
  std::string name;   ///< column name (upper)
  TypeId type = TypeId::kInt64;
};

struct Scope {
  std::vector<ScopeItem> items;

  Result<int> Resolve(const std::string& qualifier,
                      const std::string& name) const {
    int found = -1;
    for (size_t i = 0; i < items.size(); ++i) {
      if (!qualifier.empty() && items[i].alias != qualifier) continue;
      if (items[i].name != name) continue;
      if (found >= 0) {
        return Status::SemanticError("ambiguous column " + name);
      }
      found = static_cast<int>(i);
    }
    if (found < 0) {
      return Status::SemanticError(
          "column " + (qualifier.empty() ? name : qualifier + "." + name) +
          " not found");
    }
    return found;
  }

  bool Has(const std::string& qualifier, const std::string& name) const {
    for (const auto& it : items) {
      if (!qualifier.empty() && it.alias != qualifier) continue;
      if (it.name == name) return true;
    }
    return false;
  }
};

// ----------------------------------------------------------- pseudo exprs --

/// Oracle ROWNUM in a select list: a running counter over emitted rows.
class RownumExpr : public Expr {
 public:
  RownumExpr() : Expr(TypeId::kInt64) {}
  Result<Value> EvaluateRow(const RowBatch&, size_t,
                            const ExecContext&) const override {
    return Value::Int64(++counter_);
  }
  std::string ToString() const override { return "ROWNUM"; }

 private:
  mutable int64_t counter_ = 0;
};

// ------------------------------------------------------------- ConnectBy --

/// Oracle hierarchical query (CONNECT BY PRIOR parent = child): iterative
/// level expansion over a materialized input, emitting a LEVEL column.
class ConnectByOp : public Operator {
 public:
  ConnectByOp(OperatorPtr child, ExprPtr start_with, int prior_col,
              int child_col, const ExecContext* ctx)
      : child_(std::move(child)),
        start_with_(std::move(start_with)),
        prior_col_(prior_col),
        child_col_(child_col),
        ctx_(ctx) {
    output_ = child_->output();
    output_.push_back({"LEVEL", TypeId::kInt64});
  }

  Status OpenImpl() override {
    done_ = false;
    return child_->Open();
  }

  Result<bool> NextImpl(RowBatch* out) override {
    if (done_) return false;
    DASHDB_ASSIGN_OR_RETURN(RowBatch all, DrainOperator(child_.get()));
    const size_t n = all.num_rows();
    out->columns.clear();
    for (const auto& c : output_) out->columns.emplace_back(c.type);
    // Level 1: START WITH rows (all rows when absent).
    std::vector<uint32_t> frontier;
    if (start_with_) {
      DASHDB_ASSIGN_OR_RETURN(frontier, EvalFilter(*start_with_, all, *ctx_));
    } else {
      for (size_t i = 0; i < n; ++i) frontier.push_back(static_cast<uint32_t>(i));
    }
    // Child lookup: child_col value -> rows.
    std::multimap<std::string, uint32_t> by_child;
    for (size_t i = 0; i < n; ++i) {
      Value v = all.columns[child_col_].GetValue(i);
      if (!v.is_null()) by_child.emplace(v.ToString(), static_cast<uint32_t>(i));
    }
    std::vector<bool> visited(n, false);
    int64_t level = 1;
    while (!frontier.empty() && level <= 64) {
      std::vector<uint32_t> next;
      for (uint32_t r : frontier) {
        if (visited[r]) continue;  // cycle guard
        visited[r] = true;
        for (size_t c = 0; c < all.columns.size(); ++c) {
          out->columns[c].AppendFrom(all.columns[c], r);
        }
        out->columns.back().AppendInt(level);
        Value parent_key = all.columns[prior_col_].GetValue(r);
        if (parent_key.is_null()) continue;
        auto [b, e] = by_child.equal_range(parent_key.ToString());
        for (auto it = b; it != e; ++it) {
          if (!visited[it->second]) next.push_back(it->second);
        }
      }
      frontier = std::move(next);
      ++level;
    }
    done_ = true;
    return true;
  }

 private:
  OperatorPtr child_;
  ExprPtr start_with_;
  int prior_col_, child_col_;
  const ExecContext* ctx_;
  bool done_ = false;
};

// ------------------------------------------------------------ expr binder --

bool IsAggregateName(const std::string& name) {
  AggKind k;
  return AggKindFromName(name, &k);
}

/// Collects distinct aggregate calls (by serialization) in an AST.
void CollectAggCalls(const ExprP& e, std::vector<ExprP>* out,
                     std::set<std::string>* seen) {
  if (!e) return;
  if (e->kind == ExprKind::kFuncCall && IsAggregateName(e->name)) {
    std::string key = AstToString(e);
    if (seen->insert(key).second) out->push_back(e);
    return;  // no nested aggregates
  }
  for (const auto& c : e->children) CollectAggCalls(c, out, seen);
  if (e->else_branch) CollectAggCalls(e->else_branch, out, seen);
}

bool ContainsAgg(const ExprP& e) {
  std::vector<ExprP> v;
  std::set<std::string> s;
  CollectAggCalls(e, &v, &s);
  return !v.empty();
}

class ExprBinder {
 public:
  ExprBinder(const Scope* scope, Session* session)
      : scope_(scope), session_(session) {}

  /// Binds and then constant-folds: a pure node whose children all bound
  /// to literals is evaluated once here and replaced by the result, so the
  /// vectorized engine never re-evaluates `V * (100 + 1) / 2`-style
  /// subtrees per batch. Folding is bottom-up (recursive Bind calls come
  /// back through this wrapper), so any non-pure descendant blocks it.
  Result<ExprPtr> Bind(const ExprP& e) {
    DASHDB_ASSIGN_OR_RETURN(ExprPtr bound, BindNode(e));
    return MaybeFold(std::move(bound));
  }

  ExprPtr MaybeFold(ExprPtr bound) {
    if (!bound->pure()) return bound;
    std::vector<const Expr*> kids = bound->children();
    if (kids.empty()) return bound;
    for (const Expr* c : kids) {
      if (dynamic_cast<const LiteralExpr*>(c) == nullptr) return bound;
    }
    RowBatch empty;
    auto v = bound->EvaluateRow(empty, 0, session_->exec_ctx());
    // Evaluation errors (1/0, bad casts) must surface at run time, not
    // bind time: keep the expression unfolded.
    if (!v.ok()) return bound;
    Value folded = std::move(*v);
    if (folded.is_null()) {
      folded = Value::Null(bound->out_type());
    } else if (folded.type() != bound->out_type()) {
      auto cast = folded.CastTo(bound->out_type());
      if (!cast.ok()) return bound;
      folded = std::move(*cast);
    }
    return std::make_shared<LiteralExpr>(std::move(folded));
  }

 private:
  Result<ExprPtr> BindNode(const ExprP& e) {
    switch (e->kind) {
      case ExprKind::kLiteral:
        return std::static_pointer_cast<Expr>(
            std::make_shared<LiteralExpr>(e->literal));
      case ExprKind::kParam: {
        // '?' binds to the session's EXECUTE-time parameter vector. The
        // cached AST is shared and immutable; substitution happens here, at
        // bind time, so every EXECUTE re-binds against fresh values.
        DASHDB_ASSIGN_OR_RETURN(Value v, session_->BindParam(e->param_index));
        return std::static_pointer_cast<Expr>(
            std::make_shared<LiteralExpr>(std::move(v)));
      }
      case ExprKind::kColumnRef:
        return BindColumnRef(e);
      case ExprKind::kStar:
        return Status::SemanticError("'*' not valid here");
      case ExprKind::kBinary:
        return BindBinary(e);
      case ExprKind::kUnary: {
        DASHDB_ASSIGN_OR_RETURN(ExprPtr c, Bind(e->children[0]));
        if (e->unary_minus) {
          TypeId t = c->out_type() == TypeId::kDouble ? TypeId::kDouble
                                                      : TypeId::kInt64;
          return std::static_pointer_cast<Expr>(std::make_shared<ArithExpr>(
              ArithOp::kSub,
              std::make_shared<LiteralExpr>(t == TypeId::kDouble
                                                ? Value::Double(0)
                                                : Value::Int64(0)),
              std::move(c), t));
        }
        return std::static_pointer_cast<Expr>(
            std::make_shared<LogicExpr>(LogicOp::kNot, std::move(c)));
      }
      case ExprKind::kFuncCall:
        return BindFuncCall(e);
      case ExprKind::kCase:
        return BindCase(e);
      case ExprKind::kCast: {
        DASHDB_ASSIGN_OR_RETURN(ExprPtr c, Bind(e->children[0]));
        return std::static_pointer_cast<Expr>(
            std::make_shared<CastExpr>(std::move(c), e->cast_type));
      }
      case ExprKind::kIsNull: {
        DASHDB_ASSIGN_OR_RETURN(ExprPtr c, Bind(e->children[0]));
        // Oracle VARCHAR2 semantics are baked in at bind time so that views
        // created under the Oracle dialect keep them regardless of the
        // querying session's dialect (paper II.C.2).
        if (session_->dialect() == Dialect::kOracle &&
            c->out_type() == TypeId::kVarchar) {
          auto nullif_empty = [](const std::vector<Value>& a,
                                 const ExecContext&) -> Result<Value> {
            if (!a[0].is_null() && a[0].AsString().empty()) {
              return Value::Null(TypeId::kVarchar);
            }
            return a[0];
          };
          c = std::make_shared<FuncExpr>("$VARCHAR2", nullif_empty,
                                         std::vector<ExprPtr>{std::move(c)},
                                         TypeId::kVarchar);
        }
        return std::static_pointer_cast<Expr>(
            std::make_shared<IsNullExpr>(std::move(c), e->negate));
      }
      case ExprKind::kIsTrue: {
        DASHDB_ASSIGN_OR_RETURN(ExprPtr c, Bind(e->children[0]));
        bool want_false = e->negate;
        auto fn = [want_false](const std::vector<Value>& a,
                               const ExecContext&) -> Result<Value> {
          if (a[0].is_null()) return Value::Boolean(false);
          return Value::Boolean(want_false ? !a[0].AsBool() : a[0].AsBool());
        };
        return std::static_pointer_cast<Expr>(std::make_shared<FuncExpr>(
            want_false ? "ISFALSE" : "ISTRUE", fn,
            std::vector<ExprPtr>{std::move(c)}, TypeId::kBoolean));
      }
      case ExprKind::kLike: {
        DASHDB_ASSIGN_OR_RETURN(ExprPtr c, Bind(e->children[0]));
        return std::static_pointer_cast<Expr>(std::make_shared<LikeExpr>(
            std::move(c), e->like_pattern, e->negate));
      }
      case ExprKind::kInList: {
        DASHDB_ASSIGN_OR_RETURN(ExprPtr c, Bind(e->children[0]));
        std::vector<Value> list;
        for (size_t i = 1; i < e->children.size(); ++i) {
          DASHDB_ASSIGN_OR_RETURN(Value v, FoldToValue(e->children[i]));
          list.push_back(std::move(v));
        }
        return std::static_pointer_cast<Expr>(std::make_shared<InExpr>(
            std::move(c), std::move(list), e->negate));
      }
      case ExprKind::kBetween: {
        DASHDB_ASSIGN_OR_RETURN(ExprPtr x, Bind(e->children[0]));
        DASHDB_ASSIGN_OR_RETURN(ExprPtr lo, Bind(e->children[1]));
        DASHDB_ASSIGN_OR_RETURN(ExprPtr hi, Bind(e->children[2]));
        ExprPtr ge = std::make_shared<CompareExpr>(CmpOp::kGe, x, lo);
        ExprPtr le = std::make_shared<CompareExpr>(CmpOp::kLe, x, hi);
        ExprPtr both = std::make_shared<LogicExpr>(LogicOp::kAnd, ge, le);
        if (e->negate) {
          return std::static_pointer_cast<Expr>(
              std::make_shared<LogicExpr>(LogicOp::kNot, both));
        }
        return both;
      }
      case ExprKind::kSequenceRef: {
        Session* session = session_;
        std::string name = e->name;
        bool nextval = e->seq_nextval;
        auto fn = [session, name, nextval](
                      const std::vector<Value>&,
                      const ExecContext&) -> Result<Value> {
          DASHDB_ASSIGN_OR_RETURN(int64_t v,
                                  nextval ? session->SequenceNext(name)
                                          : session->SequenceCurrent(name));
          return Value::Int64(v);
        };
        return std::static_pointer_cast<Expr>(std::make_shared<FuncExpr>(
            name + (nextval ? ".NEXTVAL" : ".CURRVAL"), fn,
            std::vector<ExprPtr>{}, TypeId::kInt64));
      }
      case ExprKind::kOverlaps:
        return BindOverlaps(e);
    }
    return Status::Internal("unhandled expression kind");
  }

 public:
  /// Constant-folds an AST expression (literal or function of literals).
  Result<Value> FoldToValue(const ExprP& e) {
    if (e->kind == ExprKind::kLiteral) return e->literal;
    DASHDB_ASSIGN_OR_RETURN(ExprPtr bound, Bind(e));
    RowBatch empty;
    return bound->EvaluateRow(empty, 0, session_->exec_ctx());
  }

 private:
  Result<ExprPtr> BindColumnRef(const ExprP& e) {
    if (e->qualifier.empty() && e->name == "ROWNUM") {
      return std::static_pointer_cast<Expr>(std::make_shared<RownumExpr>());
    }
    auto idx = scope_->Resolve(e->qualifier, e->name);
    if (!idx.ok() && e->qualifier.empty()) {
      // Niladic functions referenced without parentheses (Oracle SYSDATE,
      // ANSI CURRENT_DATE): columns shadow them, so try only after the
      // scope lookup fails.
      const FunctionDef* def = FunctionRegistry::Global().Lookup(e->name);
      if (def && def->min_args == 0) {
        return std::static_pointer_cast<Expr>(std::make_shared<FuncExpr>(
            e->name, def->fn, std::vector<ExprPtr>{}, def->ret_type({})));
      }
    }
    DASHDB_RETURN_IF_ERROR(idx.status());
    return std::static_pointer_cast<Expr>(std::make_shared<ColumnRefExpr>(
        *idx, scope_->items[*idx].type, scope_->items[*idx].name));
  }

  Result<ExprPtr> BindBinary(const ExprP& e) {
    DASHDB_ASSIGN_OR_RETURN(ExprPtr l, Bind(e->children[0]));
    DASHDB_ASSIGN_OR_RETURN(ExprPtr r, Bind(e->children[1]));
    switch (e->bin_op) {
      case BinOp::kAnd:
        return std::static_pointer_cast<Expr>(std::make_shared<LogicExpr>(
            LogicOp::kAnd, std::move(l), std::move(r)));
      case BinOp::kOr:
        return std::static_pointer_cast<Expr>(std::make_shared<LogicExpr>(
            LogicOp::kOr, std::move(l), std::move(r)));
      case BinOp::kEq:
      case BinOp::kNe:
      case BinOp::kLt:
      case BinOp::kLe:
      case BinOp::kGt:
      case BinOp::kGe: {
        static const CmpOp kMap[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                                     CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};
        CmpOp op = kMap[static_cast<int>(e->bin_op) -
                        static_cast<int>(BinOp::kEq)];
        // Align literal string comparands with typed columns (date/number).
        l = CoerceComparand(std::move(l), r->out_type());
        r = CoerceComparand(std::move(r), l->out_type());
        return std::static_pointer_cast<Expr>(
            std::make_shared<CompareExpr>(op, std::move(l), std::move(r)));
      }
      default: {
        static const ArithOp kMap[] = {ArithOp::kAdd, ArithOp::kSub,
                                       ArithOp::kMul, ArithOp::kDiv,
                                       ArithOp::kMod, ArithOp::kConcat};
        ArithOp op = kMap[static_cast<int>(e->bin_op)];
        TypeId out;
        if (op == ArithOp::kConcat) {
          out = TypeId::kVarchar;
        } else if (op == ArithOp::kDiv) {
          out = TypeId::kDouble;
        } else if (l->out_type() == TypeId::kDouble ||
                   r->out_type() == TypeId::kDouble) {
          out = TypeId::kDouble;
        } else if (l->out_type() == TypeId::kDate &&
                   (op == ArithOp::kAdd || op == ArithOp::kSub) &&
                   r->out_type() != TypeId::kDate) {
          out = TypeId::kDate;
        } else {
          out = TypeId::kInt64;
        }
        return std::static_pointer_cast<Expr>(std::make_shared<ArithExpr>(
            op, std::move(l), std::move(r), out));
      }
    }
  }

  /// Casts a string literal to the other side's type when comparing against
  /// DATE/TIMESTAMP columns (so '2017-01-01' compares as a date).
  ExprPtr CoerceComparand(ExprPtr side, TypeId other) {
    if ((other == TypeId::kDate || other == TypeId::kTimestamp) &&
        side->out_type() == TypeId::kVarchar) {
      auto lit = std::dynamic_pointer_cast<LiteralExpr>(side);
      if (lit) {
        auto cast = lit->value().CastTo(other);
        if (cast.ok()) return std::make_shared<LiteralExpr>(*cast);
      }
    }
    return side;
  }

  Result<ExprPtr> BindFuncCall(const ExprP& e) {
    if (IsAggregateName(e->name)) {
      return Status::SemanticError("aggregate " + e->name +
                                   " not allowed here");
    }
    if (e->name == "PRIOR") {
      return Status::SemanticError("PRIOR outside CONNECT BY");
    }
    const FunctionDef* def = FunctionRegistry::Global().Lookup(e->name);
    if (!def) {
      return Status::SemanticError("unknown function " + e->name);
    }
    int argc = static_cast<int>(e->children.size());
    if (argc < def->min_args ||
        (def->max_args >= 0 && argc > def->max_args)) {
      return Status::SemanticError("wrong argument count for " + e->name);
    }
    std::vector<ExprPtr> args;
    std::vector<TypeId> arg_types;
    for (const auto& c : e->children) {
      DASHDB_ASSIGN_OR_RETURN(ExprPtr a, Bind(c));
      arg_types.push_back(a->out_type());
      args.push_back(std::move(a));
    }
    TypeId out = def->ret_type(arg_types);
    return std::static_pointer_cast<Expr>(std::make_shared<FuncExpr>(
        e->name, def->fn, std::move(args), out, def->pure, def->vec_fn));
  }

  Result<ExprPtr> BindCase(const ExprP& e) {
    std::vector<std::pair<ExprPtr, ExprPtr>> whens;
    size_t i = e->has_case_operand ? 1 : 0;
    ExprPtr operand;
    if (e->has_case_operand) {
      DASHDB_ASSIGN_OR_RETURN(operand, Bind(e->children[0]));
    }
    TypeId out = TypeId::kVarchar;
    bool first = true;
    for (; i + 1 < e->children.size(); i += 2) {
      DASHDB_ASSIGN_OR_RETURN(ExprPtr cond, Bind(e->children[i]));
      DASHDB_ASSIGN_OR_RETURN(ExprPtr then, Bind(e->children[i + 1]));
      if (e->has_case_operand) {
        cond = std::make_shared<CompareExpr>(CmpOp::kEq, operand, cond);
      }
      if (first) {
        out = then->out_type();
        first = false;
      }
      whens.emplace_back(std::move(cond), std::move(then));
    }
    ExprPtr els;
    if (e->else_branch) {
      DASHDB_ASSIGN_OR_RETURN(els, Bind(e->else_branch));
      if (first) out = els->out_type();
    }
    return std::static_pointer_cast<Expr>(std::make_shared<CaseExpr>(
        std::move(whens), std::move(els), out));
  }

  Result<ExprPtr> BindOverlaps(const ExprP& e) {
    const ExprP& l = e->children[0];
    const ExprP& r = e->children[1];
    if (l->kind != ExprKind::kFuncCall || l->name != "$ROW" ||
        l->children.size() != 2 || r->kind != ExprKind::kFuncCall ||
        r->name != "$ROW" || r->children.size() != 2) {
      return Status::SemanticError("OVERLAPS requires (start, end) pairs");
    }
    std::vector<ExprPtr> args;
    for (const ExprP& c : {l->children[0], l->children[1], r->children[0],
                           r->children[1]}) {
      DASHDB_ASSIGN_OR_RETURN(ExprPtr a, Bind(c));
      args.push_back(std::move(a));
    }
    auto fn = [](const std::vector<Value>& a,
                 const ExecContext&) -> Result<Value> {
      for (const auto& v : a) {
        if (v.is_null()) return Value::Null(TypeId::kBoolean);
      }
      // (s1, e1) OVERLAPS (s2, e2): s1 < e2 AND s2 < e1.
      return Value::Boolean(a[0].Compare(a[3]) < 0 && a[2].Compare(a[1]) < 0);
    };
    return std::static_pointer_cast<Expr>(std::make_shared<FuncExpr>(
        "OVERLAPS", fn, std::move(args), TypeId::kBoolean));
  }

  const Scope* scope_;
  Session* session_;
};

// -------------------------------------------------------- select binding --

void SplitConjuncts(const ExprP& e, std::vector<ExprP>* out) {
  if (e && e->kind == ExprKind::kBinary && e->bin_op == BinOp::kAnd) {
    SplitConjuncts(e->children[0], out);
    SplitConjuncts(e->children[1], out);
    return;
  }
  if (e) out->push_back(e);
}

/// Lists every column ref in an AST.
void CollectColumnRefs(const ExprP& e, std::vector<const ast::Expr*>* out) {
  if (!e) return;
  if (e->kind == ExprKind::kColumnRef) {
    out->push_back(e.get());
    return;
  }
  for (const auto& c : e->children) CollectColumnRefs(c, out);
  if (e->else_branch) CollectColumnRefs(e->else_branch, out);
}

/// True for a COUNT(*) call with no DISTINCT — the only aggregate shape
/// the metadata/SWAR count fast path can answer.
bool IsBareCountStar(const ast::Expr& e) {
  if (e.kind != ExprKind::kFuncCall || e.distinct_arg) return false;
  AggKind k;
  if (!AggKindFromName(e.name, &k) || k != AggKind::kCount) return false;
  return e.children.size() == 1 && e.children[0]->kind == ExprKind::kStar;
}

class SelectBinder {
 public:
  SelectBinder(Binder* binder) : b_(binder) {}

  Result<OperatorPtr> Bind(const ast::SelectStmt& stmt,
                           const std::vector<ast::CteDef>* outer_ctes =
                               nullptr) {
    // Merge outer CTEs with this level's.
    std::vector<ast::CteDef> ctes;
    if (outer_ctes) ctes = *outer_ctes;
    for (const auto& c : stmt.ctes) ctes.push_back(c);

    if (!stmt.values_rows.empty()) return BindValues(stmt);

    // ---- FROM / WHERE / joins ----
    Scope scope;
    OperatorPtr root;
    int64_t rownum_limit = -1;

    std::vector<ExprP> where_pool;
    SplitConjuncts(stmt.where, &where_pool);

    if (stmt.from.empty()) {
      root = MakeDual(&scope);
    } else {
      // Pre-resolve every FROM item's column list so unqualified WHERE refs
      // can be attributed to tables before scans are built.
      std::vector<std::vector<ScopeItem>> item_cols;
      std::vector<OperatorPtr> pending;  // subquery/view/values operators
      std::vector<std::shared_ptr<const ColumnTable>> col_tables;
      std::vector<std::shared_ptr<const RowTable>> row_tables;
      std::vector<std::shared_ptr<const ScannableStorage>> scannables;
      for (const auto& ref : stmt.from) {
        DASHDB_ASSIGN_OR_RETURN(
            auto resolved, ResolveFromItem(ref, ctes));
        item_cols.push_back(std::move(resolved.cols));
        pending.push_back(std::move(resolved.op));
        col_tables.push_back(resolved.col_table);
        row_tables.push_back(resolved.row_table);
        scannables.push_back(resolved.scannable);
      }
      // Full scope (FROM order) for conjunct attribution.
      Scope full;
      std::vector<std::pair<int, int>> ranges;  // per item [begin, end)
      for (const auto& cols : item_cols) {
        ranges.emplace_back(static_cast<int>(full.items.size()),
                            static_cast<int>(full.items.size() + cols.size()));
        for (const auto& c : cols) full.items.push_back(c);
      }

      // Classify WHERE conjuncts. With any outer join in play, pushed
      // predicates on non-first tables are also kept as residual filters so
      // null-extended rows are still rejected per standard WHERE semantics
      // (pushing remains correct AND fast; see DESIGN.md).
      bool has_outer = false;
      for (const auto& ref : stmt.from) {
        if (ref.join == ast::TableRef::JoinKind::kLeft ||
            ref.join == ast::TableRef::JoinKind::kRight) {
          has_outer = true;
        }
      }
      for (const auto& conj : where_pool) {
        std::vector<const ast::Expr*> refs;
        CollectColumnRefs(conj, &refs);
        for (const auto* r : refs) has_outer |= r->oracle_outer;
      }
      std::vector<ExprP> residual;
      std::vector<std::vector<ColumnPredicate>> pushdown(stmt.from.size());
      std::vector<ExprP> join_pool;  // cross-table equality conjuncts
      for (const auto& conj : where_pool) {
        // Oracle ROWNUM <= n.
        if (conj->kind == ExprKind::kBinary &&
            (conj->bin_op == BinOp::kLe || conj->bin_op == BinOp::kLt) &&
            conj->children[0]->kind == ExprKind::kColumnRef &&
            conj->children[0]->name == "ROWNUM" &&
            conj->children[1]->kind == ExprKind::kLiteral) {
          int64_t n = conj->children[1]->literal.AsInt();
          if (conj->bin_op == BinOp::kLt) n -= 1;
          rownum_limit = rownum_limit < 0 ? n : std::min(rownum_limit, n);
          continue;
        }
        int item = SingleItemOf(conj, full, ranges);
        if (item >= 0 &&
            (col_tables[item] || row_tables[item] || scannables[item])) {
          ColumnPredicate pred;
          bool keep_residual = has_outer && item != 0;
          if (TryMakePushdown(conj, full, ranges[item],
                              item_cols[item], &pred, &keep_residual)) {
            pushdown[item].push_back(pred);
            if (!keep_residual) continue;
          }
        }
        if (IsJoinEqui(conj, full, ranges)) {
          join_pool.push_back(conj);
          continue;
        }
        residual.push_back(conj);
      }

      // Fast COUNT(*) path: a bare COUNT(*) over one column table whose
      // WHERE fully pushed down bypasses scan + aggregate operators — the
      // count comes straight off the packed page codes (SwarCount), with
      // no match bitmap and no decode.
      if (stmt.from.size() == 1 && col_tables[0] && !pending[0] &&
          residual.empty() && join_pool.empty() && rownum_limit < 0 &&
          !has_outer && stmt.group_by.empty() && !stmt.having &&
          !stmt.connect_by && !stmt.start_with && !stmt.distinct &&
          stmt.order_by.empty() && stmt.limit < 0 && stmt.offset == 0 &&
          stmt.items.size() == 1 && IsBareCountStar(*stmt.items[0].expr)) {
        const std::string name = !stmt.items[0].alias.empty()
                                     ? stmt.items[0].alias
                                     : stmt.items[0].expr->name;
        auto count_scan = std::make_unique<CountStarScanOp>(
            col_tables[0], pushdown[0], b_->options().scan, name);
        std::vector<ExprPtr> exprs;
        exprs.push_back(
            std::make_shared<ColumnRefExpr>(0, TypeId::kInt64, name));
        OperatorPtr plan = std::make_unique<ProjectOp>(
            std::move(count_scan), std::move(exprs),
            std::vector<std::string>{name}, &b_->session()->exec_ctx());
        return plan;
      }

      // Projection pruning (paper II.B.3: "only active columns of interest
      // to the workload need to be fetched"): each base-table scan projects
      // only the columns the query references.
      std::vector<std::vector<int>> pruned(stmt.from.size());
      {
        std::vector<std::vector<bool>> used(stmt.from.size());
        for (size_t i = 0; i < stmt.from.size(); ++i) {
          used[i].assign(item_cols[i].size(), false);
        }
        auto mark_name = [&](const std::string& qualifier,
                             const std::string& name) {
          for (size_t i = 0; i < stmt.from.size(); ++i) {
            for (size_t c = 0; c < item_cols[i].size(); ++c) {
              if (!qualifier.empty() && item_cols[i][c].alias != qualifier) {
                continue;
              }
              if (item_cols[i][c].name == name) used[i][c] = true;
            }
          }
        };
        std::vector<ast::ExprP> roots;
        for (const auto& item : stmt.items) roots.push_back(item.expr);
        for (const auto& conj : where_pool) roots.push_back(conj);
        for (const auto& g : stmt.group_by) roots.push_back(g);
        if (stmt.having) roots.push_back(stmt.having);
        if (stmt.start_with) roots.push_back(stmt.start_with);
        if (stmt.connect_by) roots.push_back(stmt.connect_by);
        for (const auto& oi : stmt.order_by) {
          if (oi.expr) roots.push_back(oi.expr);
        }
        for (const auto& ref : stmt.from) {
          if (ref.join_condition) roots.push_back(ref.join_condition);
          for (const auto& uc : ref.using_cols) {
            mark_name("", NormalizeIdent(uc));
          }
        }
        bool saw_star_all = false;
        std::function<void(const ast::ExprP&)> walk =
            [&](const ast::ExprP& e) {
              if (!e) return;
              if (e->kind == ExprKind::kColumnRef) {
                mark_name(e->qualifier, e->name);
              } else if (e->kind == ExprKind::kStar) {
                if (e->qualifier.empty()) {
                  saw_star_all = true;
                } else {
                  for (size_t i = 0; i < stmt.from.size(); ++i) {
                    for (size_t c = 0; c < item_cols[i].size(); ++c) {
                      if (item_cols[i][c].alias == e->qualifier) {
                        used[i][c] = true;
                      }
                    }
                  }
                }
              }
              for (const auto& c : e->children) walk(c);
              if (e->else_branch) walk(e->else_branch);
            };
        for (const auto& r : roots) walk(r);
        for (size_t i = 0; i < stmt.from.size(); ++i) {
          if (pending[i] || saw_star_all) {
            // Derived tables project what they project; SELECT * uses all.
            for (size_t c = 0; c < item_cols[i].size(); ++c) {
              pruned[i].push_back(static_cast<int>(c));
            }
            continue;
          }
          for (size_t c = 0; c < item_cols[i].size(); ++c) {
            if (used[i][c]) pruned[i].push_back(static_cast<int>(c));
          }
          if (pruned[i].empty()) {
            // Pure COUNT(*): scan one column — a predicate column if any
            // (already being evaluated), else the first.
            int c = pushdown[i].empty() ? 0 : pushdown[i][0].column;
            pruned[i].push_back(c);
          }
          // Narrow the visible scope to the pruned columns.
          std::vector<ScopeItem> kept;
          for (int c : pruned[i]) kept.push_back(item_cols[i][c]);
          item_cols[i] = std::move(kept);
        }
      }

      // Build scans with their pushdowns.
      std::vector<OperatorPtr> sources;
      for (size_t i = 0; i < stmt.from.size(); ++i) {
        if (pending[i]) {
          sources.push_back(std::move(pending[i]));
        } else if (scannables[i]) {
          DASHDB_ASSIGN_OR_RETURN(
              OperatorPtr scan,
              scannables[i]->CreateScan(pushdown[i], pruned[i]));
          sources.push_back(std::move(scan));
        } else if (col_tables[i]) {
          const ScanOptions& sopts = b_->options().scan;
          // Morsel-driven parallel scan when the engine armed the options
          // with a pool and a degree > 1 (paper II.B.6). Shared scans also
          // take this operator regardless of degree: its per-page result
          // slots let the cooperative clock visit pages circularly while
          // emission stays in page order (byte-identical to serial).
          if ((sopts.exec_pool != nullptr && sopts.dop > 1) ||
              (sopts.shared_scan && sopts.share != nullptr)) {
            sources.push_back(std::make_unique<ParallelColumnScanOp>(
                col_tables[i], pushdown[i], pruned[i], sopts));
          } else {
            sources.push_back(std::make_unique<ColumnScanOp>(
                col_tables[i], pushdown[i], pruned[i], sopts));
          }
        } else {
          const std::vector<int>& proj = pruned[i];
          // Appliance-style access path selection: a sargable predicate on
          // a B+Tree-indexed column becomes an index range scan; remaining
          // predicates re-check row-at-a-time.
          int index_col = -1;
          int64_t lo = INT64_MIN, hi = INT64_MAX;
          std::vector<ColumnPredicate> residual_preds;
          for (const auto& p : pushdown[i]) {
            if (index_col < 0 && row_tables[i]->HasIndex(p.column) &&
                (p.int_range.lo || p.int_range.hi)) {
              index_col = p.column;
              if (p.int_range.lo) {
                lo = *p.int_range.lo + (p.int_range.lo_incl ? 0 : 1);
              }
              if (p.int_range.hi) {
                hi = *p.int_range.hi - (p.int_range.hi_incl ? 0 : 1);
              }
            } else {
              residual_preds.push_back(p);
            }
          }
          if (index_col >= 0) {
            sources.push_back(std::make_unique<RowIndexScanOp>(
                row_tables[i], index_col, lo, hi, residual_preds, proj));
          } else {
            sources.push_back(std::make_unique<RowScanOp>(
                row_tables[i], pushdown[i], proj));
          }
        }
      }

      // Cardinality estimates per FROM item (synopsis min/max + null counts,
      // dictionary NDVs). Row tables at least know their row count;
      // derived tables stay unknown.
      std::vector<RelationEstimate> estimates(stmt.from.size());
      for (size_t i = 0; i < stmt.from.size(); ++i) {
        if (col_tables[i]) {
          estimates[i] =
              CardinalityEstimator::EstimateScan(*col_tables[i], pushdown[i]);
        } else if (row_tables[i]) {
          estimates[i].has_stats = false;
          estimates[i].base_rows = estimates[i].rows =
              static_cast<double>(row_tables[i]->row_count());
        }
        if (col_tables[i] || row_tables[i]) {
          sources[i]->set_est_rows(estimates[i].rows);
        }
      }
      // Raw scan pointers survive the moves into the join tree; bloom
      // pushdown targets resolve through them.
      std::vector<Operator*> source_ptrs;
      for (const auto& s : sources) source_ptrs.push_back(s.get());

      // Pre-installed session filters (cross-shard Bloom semi-joins from
      // the MPP coordinator) attach to matching column-table scans. Only
      // sound when no outer join can null-extend the filtered table's rows.
      if (!has_outer && !b_->session()->runtime_filters().empty()) {
        bool all_inner = true;
        for (const auto& ref : stmt.from) {
          if (ref.join != ast::TableRef::JoinKind::kNone &&
              ref.join != ast::TableRef::JoinKind::kInner &&
              ref.join != ast::TableRef::JoinKind::kCross) {
            all_inner = false;
          }
        }
        if (all_inner) {
          for (const auto& rf : b_->session()->runtime_filters()) {
            for (size_t i = 0; i < stmt.from.size(); ++i) {
              if (!col_tables[i] ||
                  col_tables[i]->schema().QualifiedName() != rf.table) {
                continue;
              }
              for (size_t c = 0; c < item_cols[i].size(); ++c) {
                if (item_cols[i][c].name == rf.column) {
                  source_ptrs[i]->AcceptRuntimeFilter(static_cast<int>(c),
                                                      rf.bloom);
                  break;
                }
              }
            }
          }
        }
      }

      // Cost-based join ordering (DESIGN.md "Cost-based optimization"):
      // eligible when every FROM item is a column table, every join is
      // inner/cross, and every ON conjunct is a plain two-table column
      // equality. Everything else falls back to the FROM-order heuristic.
      bool cost_path =
          stmt.from.size() >= 3 && !has_outer &&
          b_->session()->optimizer_mode() == OptimizerMode::kCost;
      for (size_t i = 0; cost_path && i < stmt.from.size(); ++i) {
        if (!col_tables[i] || pending[i]) cost_path = false;
        const ast::TableRef& ref = stmt.from[i];
        if ((ref.join != ast::TableRef::JoinKind::kNone &&
             ref.join != ast::TableRef::JoinKind::kInner &&
             ref.join != ast::TableRef::JoinKind::kCross) ||
            !ref.using_cols.empty()) {
          cost_path = false;
        }
      }
      std::vector<AdaptiveJoinEdge> aedges;
      std::vector<size_t> consumed_pool;  // join_pool indices turned to edges
      if (cost_path) {
        // Resolves a plain column ref against the pruned per-item scopes;
        // fails on ambiguity (mimics Scope::Resolve).
        auto resolve_col = [&](const ast::Expr& e, int* item,
                               int* local) -> bool {
          if (e.kind != ExprKind::kColumnRef) return false;
          int fi = -1, fc = -1;
          for (size_t i = 0; i < item_cols.size(); ++i) {
            for (size_t c = 0; c < item_cols[i].size(); ++c) {
              const ScopeItem& it = item_cols[i][c];
              if (!e.qualifier.empty() && it.alias != e.qualifier) continue;
              if (it.name != e.name) continue;
              if (fi >= 0) return false;  // ambiguous
              fi = static_cast<int>(i);
              fc = static_cast<int>(c);
            }
          }
          if (fi < 0) return false;
          *item = fi;
          *local = fc;
          return true;
        };
        // The scan-side Bloom protocol hashes raw cells, so edge endpoints
        // must hash identically for equal values: same string-ness, and no
        // doubles (integer families inter-hash fine).
        auto hash_compatible = [](TypeId a, TypeId b) {
          if (a == TypeId::kVarchar || b == TypeId::kVarchar) return a == b;
          return a != TypeId::kDouble && b != TypeId::kDouble;
        };
        auto try_edge = [&](const ExprP& conj, AdaptiveJoinEdge* out) -> bool {
          if (conj->kind != ExprKind::kBinary || conj->bin_op != BinOp::kEq) {
            return false;
          }
          int ai, ac, bi, bc;
          if (!resolve_col(*conj->children[0], &ai, &ac) ||
              !resolve_col(*conj->children[1], &bi, &bc) ||
              ai == bi ||
              !hash_compatible(item_cols[ai][ac].type,
                               item_cols[bi][bc].type)) {
            return false;
          }
          out->left_item = ai;
          out->left_col = ac;
          out->right_item = bi;
          out->right_col = bc;
          out->left_ndv = estimates[ai].KeyNdv(pruned[ai][ac]);
          out->right_ndv = estimates[bi].KeyNdv(pruned[bi][bc]);
          return true;
        };
        for (size_t i = 0; cost_path && i < stmt.from.size(); ++i) {
          if (!stmt.from[i].join_condition) continue;
          std::vector<ExprP> on_conjs;
          SplitConjuncts(stmt.from[i].join_condition, &on_conjs);
          for (const auto& c : on_conjs) {
            AdaptiveJoinEdge e;
            if (!try_edge(c, &e)) {
              cost_path = false;
              break;
            }
            aedges.push_back(e);
          }
        }
        if (cost_path) {
          for (size_t j = 0; j < join_pool.size(); ++j) {
            AdaptiveJoinEdge e;
            if (try_edge(join_pool[j], &e)) {
              aedges.push_back(e);
              consumed_pool.push_back(j);
            }
          }
          // The join graph must be connected — a disconnected query keeps
          // the heuristic order (cross products stay where the user put
          // them).
          std::vector<int> comp(stmt.from.size());
          for (size_t i = 0; i < comp.size(); ++i) comp[i] = static_cast<int>(i);
          std::function<int(int)> find = [&](int x) {
            while (comp[x] != x) x = comp[x] = comp[comp[x]];
            return x;
          };
          for (const auto& e : aedges) {
            comp[find(e.left_item)] = find(e.right_item);
          }
          for (size_t i = 1; i < comp.size(); ++i) {
            if (find(static_cast<int>(i)) != find(0)) cost_path = false;
          }
        }
        if (!cost_path) {
          aedges.clear();
          consumed_pool.clear();
        }
      }

      if (cost_path) {
        for (size_t j = consumed_pool.size(); j-- > 0;) {
          join_pool.erase(join_pool.begin() + consumed_pool[j]);
        }
        std::vector<double> est_rows_v(stmt.from.size());
        for (size_t i = 0; i < stmt.from.size(); ++i) {
          est_rows_v[i] = estimates[i].rows;
        }
        // Overall output estimate: fold relations in FROM order via
        // distinct-count containment on the first connecting edge.
        double folded = est_rows_v[0];
        std::vector<char> in_set(stmt.from.size(), 0);
        in_set[0] = 1;
        for (size_t i = 1; i < stmt.from.size(); ++i) {
          double l_ndv = 0, r_ndv = 0;
          bool edge = false;
          for (const auto& e : aedges) {
            if ((e.left_item == static_cast<int>(i) && in_set[e.right_item]) ||
                (e.right_item == static_cast<int>(i) && in_set[e.left_item])) {
              l_ndv = e.left_ndv;
              r_ndv = e.right_ndv;
              edge = true;
              break;
            }
          }
          folded = edge ? CardinalityEstimator::JoinRows(folded, est_rows_v[i],
                                                         l_ndv, r_ndv)
                        : folded * std::max(1.0, est_rows_v[i]);
          in_set[i] = 1;
        }
        auto aj = std::make_unique<AdaptiveJoinOp>(
            std::move(sources), std::move(aedges), std::move(est_rows_v),
            b_->session()->adaptive_enabled(), &b_->session()->exec_ctx());
        aj->set_est_rows(folded);
        join_tree_est_ = folded;
        root = std::move(aj);
        for (const auto& cols : item_cols) {
          for (const auto& c : cols) scope.items.push_back(c);
        }
      } else {
        // Left-deep join tree in FROM order.
        DASHDB_ASSIGN_OR_RETURN(
            root, BuildJoinTree(stmt, item_cols, std::move(sources),
                                source_ptrs, estimates, pruned, &join_pool,
                                &residual, &scope));
      }
      // Unconsumed join-pool conjuncts become residual filters.
      for (auto& j : join_pool) residual.push_back(j);

      // Residual filter.
      if (!residual.empty()) {
        ExprBinder eb(&scope, b_->session());
        ExprPtr all;
        for (const auto& conj : residual) {
          DASHDB_ASSIGN_OR_RETURN(ExprPtr bound, eb.Bind(conj));
          all = all ? std::make_shared<LogicExpr>(LogicOp::kAnd, all, bound)
                    : bound;
        }
        root = std::make_unique<FilterOp>(std::move(root), all,
                                          &b_->session()->exec_ctx());
        if (join_tree_est_ >= 0) {
          double sel = CardinalityEstimator::ResidualConjunctSelectivity();
          double est = join_tree_est_;
          for (size_t k = 0; k < residual.size(); ++k) est *= sel;
          root->set_est_rows(est);
        }
      }
    }

    // ---- CONNECT BY ----
    if (stmt.connect_by) {
      DASHDB_RETURN_IF_ERROR(
          ApplyConnectBy(stmt, &root, &scope));
    }

    // ---- aggregation or plain projection ----
    bool has_agg = !stmt.group_by.empty();
    for (const auto& item : stmt.items) has_agg |= ContainsAgg(item.expr);
    if (stmt.having) has_agg |= true;

    // Expand stars into concrete select items.
    std::vector<ast::SelectItem> items;
    for (const auto& item : stmt.items) {
      if (item.expr->kind == ExprKind::kStar) {
        for (const auto& sc : scope.items) {
          if (!item.expr->qualifier.empty() &&
              sc.alias != item.expr->qualifier) {
            continue;
          }
          ast::SelectItem expanded;
          expanded.expr = ast::MakeColumnRef(sc.alias, sc.name);
          expanded.alias = sc.name;
          items.push_back(std::move(expanded));
        }
        continue;
      }
      items.push_back(item);
    }

    std::vector<std::string> out_names;
    for (const auto& item : items) {
      if (!item.alias.empty()) {
        out_names.push_back(item.alias);
      } else if (item.expr->kind == ExprKind::kColumnRef) {
        out_names.push_back(item.expr->name);
      } else if (item.expr->kind == ExprKind::kFuncCall) {
        out_names.push_back(item.expr->name);
      } else {
        out_names.push_back("EXPR_" + std::to_string(out_names.size() + 1));
      }
    }

    if (has_agg) {
      DASHDB_RETURN_IF_ERROR(
          BindAggregation(stmt, items, out_names, &root, &scope));
    } else {
      ExprBinder eb(&scope, b_->session());
      std::vector<ExprPtr> exprs;
      for (const auto& item : items) {
        DASHDB_ASSIGN_OR_RETURN(ExprPtr e, eb.Bind(item.expr));
        exprs.push_back(std::move(e));
      }
      // ORDER BY expressions that are not among the outputs are appended as
      // hidden projection columns, sorted on, then stripped below.
      std::vector<std::string> names = out_names;
      if (!stmt.distinct) {
        for (const auto& oi : stmt.order_by) {
          if (oi.ordinal > 0 || !oi.expr) continue;
          bool matches_output = false;
          if (oi.expr->kind == ExprKind::kColumnRef) {
            for (const auto& n : out_names) {
              if (NormalizeIdent(n) == oi.expr->name) matches_output = true;
            }
            if (!oi.output_name.empty()) {
              for (const auto& n : out_names) {
                if (n == oi.output_name) matches_output = true;
              }
            }
          }
          if (matches_output) continue;
          auto bound = eb.Bind(oi.expr);
          if (!bound.ok()) continue;  // will fail later with a clear error
          exprs.push_back(std::move(*bound));
          names.push_back("$ORD_" + std::to_string(exprs.size()));
          ++hidden_order_cols_;
        }
      }
      root = std::make_unique<ProjectOp>(std::move(root), std::move(exprs),
                                         names,
                                         &b_->session()->exec_ctx());
    }

    // ---- DISTINCT ----
    if (stmt.distinct) {
      std::vector<ExprPtr> group;
      std::vector<std::string> names;
      for (size_t i = 0; i < root->output().size(); ++i) {
        group.push_back(std::make_shared<ColumnRefExpr>(
            static_cast<int>(i), root->output()[i].type,
            root->output()[i].name));
        names.push_back(root->output()[i].name);
      }
      root = std::make_unique<HashAggOp>(
          std::move(root), std::move(group), names, std::vector<AggSpec>{},
          std::vector<std::string>{}, &b_->session()->exec_ctx());
    }

    // ---- ORDER BY ----
    // Effective row cap (LIMIT merged with an Oracle ROWNUM cap), known
    // before planning the sort so ORDER BY + LIMIT can fuse into TopNOp.
    int64_t eff_limit = stmt.limit;
    if (rownum_limit >= 0) {
      eff_limit = eff_limit < 0 ? rownum_limit
                                : std::min(eff_limit, rownum_limit);
    }
    bool topn_fused = false;
    if (!stmt.order_by.empty()) {
      std::vector<SortKey> keys;
      for (const auto& oi : stmt.order_by) {
        SortKey k;
        k.desc = oi.desc;
        int idx = -1;
        if (oi.ordinal > 0) {
          if (oi.ordinal > static_cast<int>(root->output().size())) {
            return Status::SemanticError("ORDER BY ordinal out of range");
          }
          idx = oi.ordinal - 1;
        } else if (!oi.output_name.empty()) {
          for (size_t i = 0; i < root->output().size(); ++i) {
            if (root->output()[i].name == oi.output_name) {
              idx = static_cast<int>(i);
              break;
            }
          }
        } else if (oi.expr->kind == ExprKind::kColumnRef) {
          // Qualified ref (e.name): match the bare column name against the
          // projected outputs.
          for (size_t i = 0; i < root->output().size(); ++i) {
            if (NormalizeIdent(root->output()[i].name) == oi.expr->name) {
              idx = static_cast<int>(i);
              break;
            }
          }
        }
        if (idx < 0 && hidden_order_cols_ > 0 && used_hidden_ < hidden_order_cols_) {
          // Consume the next hidden ORDER BY column.
          size_t visible = root->output().size() - hidden_order_cols_;
          idx = static_cast<int>(visible + used_hidden_);
          ++used_hidden_;
        }
        if (idx >= 0) {
          k.expr = std::make_shared<ColumnRefExpr>(
              idx, root->output()[idx].type, root->output()[idx].name);
        } else {
          // Bind against the output scope.
          Scope out_scope;
          for (const auto& c : root->output()) {
            out_scope.items.push_back({"", c.name, c.type});
          }
          ExprBinder eb(&out_scope, b_->session());
          DASHDB_ASSIGN_OR_RETURN(k.expr, eb.Bind(oi.expr));
        }
        keys.push_back(std::move(k));
      }
      // Fuse into a bounded-heap TopN when a small prefix is requested:
      // only limit+offset rows are ever retained, instead of sorting the
      // whole input. The heap applies offset+limit itself, so the LimitOp
      // below is skipped. Huge prefixes keep the full sort (heap updates
      // would dominate).
      if (eff_limit >= 0 && b_->session()->topn_enabled() &&
          eff_limit + stmt.offset <= kTopNMaxCapacity) {
        root = std::make_unique<TopNOp>(std::move(root), std::move(keys),
                                        eff_limit, stmt.offset,
                                        &b_->session()->exec_ctx());
        topn_fused = true;
      } else {
        root = std::make_unique<SortOp>(std::move(root), std::move(keys),
                                        &b_->session()->exec_ctx(),
                                        b_->session()->serial_sort());
      }
    }
    if (hidden_order_cols_ > 0) {
      // Strip the hidden ORDER BY columns.
      size_t visible = root->output().size() - hidden_order_cols_;
      std::vector<ExprPtr> keep;
      std::vector<std::string> keep_names;
      for (size_t i = 0; i < visible; ++i) {
        keep.push_back(std::make_shared<ColumnRefExpr>(
            static_cast<int>(i), root->output()[i].type,
            root->output()[i].name));
        keep_names.push_back(root->output()[i].name);
      }
      root = std::make_unique<ProjectOp>(std::move(root), std::move(keep),
                                         keep_names,
                                         &b_->session()->exec_ctx());
      hidden_order_cols_ = 0;
    }

    // ---- LIMIT / OFFSET / ROWNUM ---- (already applied when TopN fused)
    if (!topn_fused && (eff_limit >= 0 || stmt.offset > 0)) {
      root = std::make_unique<LimitOp>(std::move(root), eff_limit,
                                       stmt.offset);
    }
    return root;
  }

  /// Splits a single-table WHERE into pushdown predicates plus residual
  /// conjuncts (the engine's UPDATE/DELETE paths).
  Status SplitForTable(const TableSchema& schema, const ExprP& where,
                       std::vector<ColumnPredicate>* pushdown,
                       std::vector<ExprP>* residual) {
    Scope full;
    std::vector<ScopeItem> cols;
    for (int c = 0; c < schema.num_columns(); ++c) {
      ScopeItem it{NormalizeIdent(schema.table_name()),
                   NormalizeIdent(schema.column(c).name),
                   schema.column(c).type};
      full.items.push_back(it);
      cols.push_back(it);
    }
    std::vector<std::pair<int, int>> ranges = {{0, schema.num_columns()}};
    std::vector<ExprP> conjs;
    SplitConjuncts(where, &conjs);
    for (const auto& conj : conjs) {
      ColumnPredicate pred;
      bool keep = false;
      if (SingleItemOf(conj, full, ranges) == 0 &&
          TryMakePushdown(conj, full, ranges[0], cols, &pred, &keep)) {
        pushdown->push_back(pred);
      } else {
        residual->push_back(conj);
      }
    }
    return Status::OK();
  }

 private:
  struct ResolvedItem {
    std::vector<ScopeItem> cols;
    OperatorPtr op;  ///< set for subqueries/views/CTEs; null for base tables
    std::shared_ptr<const ColumnTable> col_table;
    std::shared_ptr<const RowTable> row_table;
    std::shared_ptr<const ScannableStorage> scannable;  ///< nicknames etc.
  };

  /// Resolves one FROM item to either a base table or a bound sub-operator.
  Result<ResolvedItem> ResolveFromItem(const ast::TableRef& ref,
                                       const std::vector<ast::CteDef>& ctes) {
    ResolvedItem out;
    std::string alias = !ref.alias.empty() ? ref.alias : ref.table;
    if (ref.subquery) {
      SelectBinder sub(b_);
      DASHDB_ASSIGN_OR_RETURN(out.op, sub.Bind(*ref.subquery, &ctes));
      for (const auto& c : out.op->output()) {
        out.cols.push_back({alias, NormalizeIdent(c.name), c.type});
      }
      return out;
    }
    // CTE?
    for (const auto& cte : ctes) {
      if (NormalizeIdent(cte.name) == NormalizeIdent(ref.table) &&
          ref.schema.empty()) {
        SelectBinder sub(b_);
        DASHDB_ASSIGN_OR_RETURN(out.op, sub.Bind(*cte.query, &ctes));
        for (const auto& c : out.op->output()) {
          out.cols.push_back({alias, NormalizeIdent(c.name), c.type});
        }
        return out;
      }
    }
    std::string schema =
        ref.schema.empty() ? b_->session()->default_schema() : ref.schema;
    // Oracle DUAL.
    if (ref.schema.empty() && NormalizeIdent(ref.table) == "DUAL" &&
        !b_->catalog()->HasEntry(schema, "DUAL")) {
      RowBatch batch;
      batch.columns.emplace_back(TypeId::kVarchar);
      batch.columns[0].AppendString("X");
      out.op = std::make_unique<ValuesOp>(
          std::move(batch),
          std::vector<OutputCol>{{"DUMMY", TypeId::kVarchar}});
      out.cols.push_back({alias, "DUMMY", TypeId::kVarchar});
      return out;
    }
    DASHDB_ASSIGN_OR_RETURN(auto entry,
                            b_->catalog()->Lookup(schema, ref.table));
    if (entry->kind == EntryKind::kView) {
      // Re-bind the view body under its creation-time dialect (II.C.2).
      Dialect saved = b_->session()->dialect();
      Dialect view_dialect = saved;
      DialectFromName(entry->view_dialect, &view_dialect);
      b_->session()->set_dialect(view_dialect);
      auto parsed = ParseStatement(entry->view_sql);
      if (!parsed.ok()) {
        b_->session()->set_dialect(saved);
        return parsed.status();
      }
      SelectBinder sub(b_);
      auto bound = sub.Bind(*(*parsed)->select, &ctes);
      b_->session()->set_dialect(saved);
      if (!bound.ok()) return bound.status();
      out.op = std::move(*bound);
      for (const auto& c : out.op->output()) {
        out.cols.push_back({alias, NormalizeIdent(c.name), c.type});
      }
      return out;
    }
    // Base table (possibly via alias entry sharing storage).
    auto col_tab = std::dynamic_pointer_cast<ColumnTable>(entry->storage);
    auto row_tab = std::dynamic_pointer_cast<RowTable>(entry->storage);
    const TableSchema& ts = entry->schema;
    for (int c = 0; c < ts.num_columns(); ++c) {
      out.cols.push_back(
          {alias, NormalizeIdent(ts.column(c).name), ts.column(c).type});
    }
    if (col_tab) {
      out.col_table = col_tab;
    } else if (row_tab) {
      out.row_table = row_tab;
    } else if (auto scannable = std::dynamic_pointer_cast<ScannableStorage>(
                   entry->storage)) {
      out.scannable = scannable;  // Fluid Query nickname (paper II.C.6)
    } else {
      return Status::Internal("catalog entry without storage: " +
                              entry->schema.QualifiedName());
    }
    return out;
  }

  OperatorPtr MakeDual(Scope* scope) {
    RowBatch batch;
    batch.columns.emplace_back(TypeId::kVarchar);
    batch.columns[0].AppendString("X");
    scope->items.push_back({"DUAL", "DUMMY", TypeId::kVarchar});
    return std::make_unique<ValuesOp>(
        std::move(batch), std::vector<OutputCol>{{"DUMMY", TypeId::kVarchar}});
  }

  /// Which FROM item do all column refs of `e` belong to? -1 if mixed/none.
  int SingleItemOf(const ExprP& e, const Scope& full,
                   const std::vector<std::pair<int, int>>& ranges) {
    std::vector<const ast::Expr*> refs;
    CollectColumnRefs(e, &refs);
    if (refs.empty()) return -1;
    int item = -1;
    for (const auto* r : refs) {
      auto idx = full.Resolve(r->qualifier, r->name);
      if (!idx.ok()) return -1;
      int owner = -1;
      for (size_t i = 0; i < ranges.size(); ++i) {
        if (*idx >= ranges[i].first && *idx < ranges[i].second) {
          owner = static_cast<int>(i);
          break;
        }
      }
      if (item == -1) item = owner;
      else if (item != owner) return -1;
    }
    return item;
  }

  /// Converts a sargable conjunct (col CMP literal / col BETWEEN lits) into
  /// a storage ColumnPredicate local to the owning table.
  bool TryMakePushdown(const ExprP& conj, const Scope& full,
                       std::pair<int, int> range,
                       const std::vector<ScopeItem>& cols,
                       ColumnPredicate* out, bool* keep_residual) {
    (void)keep_residual;  // caller-owned policy; see has_outer in Bind()
    auto col_of = [&](const ExprP& e) -> int {
      if (e->kind != ExprKind::kColumnRef) return -1;
      auto idx = full.Resolve(e->qualifier, e->name);
      if (!idx.ok() || *idx < range.first || *idx >= range.second) return -1;
      return *idx - range.first;
    };
    auto lit_of = [&](const ExprP& e, TypeId t, Value* v) -> bool {
      if (e->kind != ExprKind::kLiteral) return false;
      auto cast = e->literal.CastTo(t);
      if (!cast.ok()) return false;
      *v = *cast;
      return true;
    };
    auto fill = [&](int local_col, CmpOp op, const Value& v) {
      out->column = local_col;
      TypeId t = cols[local_col].type;
      if (t == TypeId::kVarchar) {
        const std::string& s = v.AsString();
        if (op == CmpOp::kEq || op == CmpOp::kGe || op == CmpOp::kGt) {
          out->str_range.lo = s;
          out->str_range.lo_incl = op != CmpOp::kGt;
        }
        if (op == CmpOp::kEq || op == CmpOp::kLe || op == CmpOp::kLt) {
          out->str_range.hi = s;
          out->str_range.hi_incl = op != CmpOp::kLt;
        }
      } else if (t == TypeId::kDouble) {
        double d = v.AsDouble();
        if (op == CmpOp::kEq || op == CmpOp::kGe || op == CmpOp::kGt) {
          out->dlo = d;
          out->dlo_incl = op != CmpOp::kGt;
        }
        if (op == CmpOp::kEq || op == CmpOp::kLe || op == CmpOp::kLt) {
          out->dhi = d;
          out->dhi_incl = op != CmpOp::kLt;
        }
      } else {
        int64_t i = v.AsInt();
        if (op == CmpOp::kEq || op == CmpOp::kGe || op == CmpOp::kGt) {
          out->int_range.lo = i;
          out->int_range.lo_incl = op != CmpOp::kGt;
        }
        if (op == CmpOp::kEq || op == CmpOp::kLe || op == CmpOp::kLt) {
          out->int_range.hi = i;
          out->int_range.hi_incl = op != CmpOp::kLt;
        }
      }
    };
    if (conj->kind == ExprKind::kBinary) {
      CmpOp op;
      switch (conj->bin_op) {
        case BinOp::kEq: op = CmpOp::kEq; break;
        case BinOp::kLt: op = CmpOp::kLt; break;
        case BinOp::kLe: op = CmpOp::kLe; break;
        case BinOp::kGt: op = CmpOp::kGt; break;
        case BinOp::kGe: op = CmpOp::kGe; break;
        default: return false;
      }
      ExprP l = conj->children[0], r = conj->children[1];
      int c = col_of(l);
      Value v;
      if (c >= 0 && lit_of(r, cols[c].type, &v)) {
        fill(c, op, v);
        return true;
      }
      c = col_of(r);
      if (c >= 0 && lit_of(l, cols[c].type, &v)) {
        // Mirror the operator: lit OP col == col mirrored(OP) lit.
        CmpOp m = op;
        if (op == CmpOp::kLt) m = CmpOp::kGt;
        else if (op == CmpOp::kLe) m = CmpOp::kGe;
        else if (op == CmpOp::kGt) m = CmpOp::kLt;
        else if (op == CmpOp::kGe) m = CmpOp::kLe;
        fill(c, m, v);
        return true;
      }
      return false;
    }
    if (conj->kind == ExprKind::kBetween && !conj->negate) {
      int c = col_of(conj->children[0]);
      if (c < 0) return false;
      Value lo, hi;
      if (!lit_of(conj->children[1], cols[c].type, &lo) ||
          !lit_of(conj->children[2], cols[c].type, &hi)) {
        return false;
      }
      fill(c, CmpOp::kGe, lo);
      fill(c, CmpOp::kLe, hi);
      return true;
    }
    return false;
  }

  bool IsJoinEqui(const ExprP& conj, const Scope& full,
                  const std::vector<std::pair<int, int>>& ranges) {
    if (conj->kind != ExprKind::kBinary || conj->bin_op != BinOp::kEq) {
      return false;
    }
    int a = SingleItemOf(conj->children[0], full, ranges);
    int b = SingleItemOf(conj->children[1], full, ranges);
    return a >= 0 && b >= 0 && a != b;
  }

  Result<OperatorPtr> BuildJoinTree(
      const ast::SelectStmt& stmt,
      const std::vector<std::vector<ScopeItem>>& item_cols,
      std::vector<OperatorPtr> sources,
      const std::vector<Operator*>& source_ptrs,
      const std::vector<RelationEstimate>& estimates,
      const std::vector<std::vector<int>>& pruned,
      std::vector<ExprP>* join_pool, std::vector<ExprP>* residual,
      Scope* scope) {
    // Resolves a raw column ref against the pruned per-item scopes of items
    // [0, upto); -1 on miss or ambiguity. Used for NDV lookup and for the
    // Bloom pushdown target (which must be a base scan's output column).
    auto resolve_item_col = [&](const ast::Expr& e, size_t upto, int* item,
                                int* local) -> bool {
      if (e.kind != ExprKind::kColumnRef) return false;
      int fi = -1, fc = -1;
      for (size_t i = 0; i < upto && i < item_cols.size(); ++i) {
        for (size_t c = 0; c < item_cols[i].size(); ++c) {
          const ScopeItem& it = item_cols[i][c];
          if (!e.qualifier.empty() && it.alias != e.qualifier) continue;
          if (it.name != e.name) continue;
          if (fi >= 0) return false;
          fi = static_cast<int>(i);
          fc = static_cast<int>(c);
        }
      }
      if (fi < 0) return false;
      *item = fi;
      *local = fc;
      return true;
    };
    auto key_ndv = [&](int item, int local) -> double {
      if (item < 0 || static_cast<size_t>(item) >= estimates.size() ||
          static_cast<size_t>(item) >= pruned.size() ||
          static_cast<size_t>(local) >= pruned[item].size()) {
        return 0;
      }
      return estimates[item].KeyNdv(pruned[item][local]);
    };

    OperatorPtr root = std::move(sources[0]);
    for (const auto& c : item_cols[0]) scope->items.push_back(c);
    double cur_rows = estimates.empty() || !estimates[0].has_stats
                          ? -1
                          : estimates[0].rows;
    // True while every join so far preserves probe rows exactly (inner or
    // cross). A LEFT join breaks it: Bloom-dropping rows at a downstream
    // scan would then be observable through null extension ordering, so be
    // conservative and stop installing filters past one.
    bool chain_all_inner = true;
    for (size_t i = 1; i < sources.size(); ++i) {
      const ast::TableRef& ref = stmt.from[i];
      Scope new_scope;
      new_scope.items = item_cols[i];
      // Gather equi conjuncts for this join.
      std::vector<ExprP> on_conjs;
      if (ref.join_condition) SplitConjuncts(ref.join_condition, &on_conjs);
      JoinType jt = JoinType::kInner;
      if (ref.join == ast::TableRef::JoinKind::kLeft) jt = JoinType::kLeft;
      bool right_join = ref.join == ast::TableRef::JoinKind::kRight;

      std::vector<ExprP> equi_left, equi_right, on_residual;
      bool oracle_left = false;
      auto side_of = [&](const ExprP& e) -> int {
        // 0 = bound scope, 1 = new item, -1 = mixed, -2 = constant.
        std::vector<const ast::Expr*> refs;
        CollectColumnRefs(e, &refs);
        if (refs.empty()) return -2;
        int side = -3;
        for (const auto* r : refs) {
          int s;
          if (new_scope.Has(r->qualifier, r->name)) s = 1;
          else if (scope->Has(r->qualifier, r->name)) s = 0;
          else return -1;
          if (side == -3) side = s;
          else if (side != s) return -1;
        }
        return side;
      };
      // USING columns become equalities.
      for (const auto& uc : ref.using_cols) {
        equi_left.push_back(ast::MakeColumnRef("", NormalizeIdent(uc)));
        equi_right.push_back(ast::MakeColumnRef(
            !ref.alias.empty() ? ref.alias : NormalizeIdent(ref.table),
            NormalizeIdent(uc)));
      }
      auto classify = [&](std::vector<ExprP>& pool, bool consume_into_on) {
        for (auto it = pool.begin(); it != pool.end();) {
          const ExprP& conj = *it;
          if (conj->kind == ExprKind::kBinary &&
              conj->bin_op == BinOp::kEq) {
            int ls = side_of(conj->children[0]);
            int rs = side_of(conj->children[1]);
            if (ls == 0 && rs == 1) {
              if (conj->children[1]->oracle_outer) oracle_left = true;
              equi_left.push_back(conj->children[0]);
              equi_right.push_back(conj->children[1]);
              it = pool.erase(it);
              continue;
            }
            if (ls == 1 && rs == 0) {
              if (conj->children[0]->oracle_outer) oracle_left = true;
              equi_left.push_back(conj->children[1]);
              equi_right.push_back(conj->children[0]);
              it = pool.erase(it);
              continue;
            }
          }
          if (consume_into_on) {
            on_residual.push_back(conj);
            it = pool.erase(it);
            continue;
          }
          ++it;
        }
      };
      classify(on_conjs, /*consume_into_on=*/true);
      classify(*join_pool, /*consume_into_on=*/false);
      if (oracle_left) jt = JoinType::kLeft;

      // Combined scope (bound + new).
      Scope combined = *scope;
      for (const auto& c : new_scope.items) combined.items.push_back(c);

      if (equi_left.empty() || right_join ||
          (jt == JoinType::kLeft && !on_residual.empty())) {
        // Nested loop with the full condition.
        ExprBinder eb(&combined, b_->session());
        ExprPtr cond;
        std::vector<ExprP> all_conjs = on_residual;
        for (size_t k = 0; k < equi_left.size(); ++k) {
          all_conjs.push_back(ast::MakeBinary(BinOp::kEq, equi_left[k],
                                              equi_right[k]));
        }
        for (const auto& conj : all_conjs) {
          DASHDB_ASSIGN_OR_RETURN(ExprPtr bc, eb.Bind(conj));
          cond = cond ? std::make_shared<LogicExpr>(LogicOp::kAnd, cond, bc)
                      : bc;
        }
        if (right_join) {
          return Status::Unimplemented(
              "RIGHT OUTER JOIN: rewrite as LEFT JOIN");
        }
        JoinType nlt = ref.join == ast::TableRef::JoinKind::kCross && !cond
                           ? JoinType::kCross
                           : jt;
        if (nlt != JoinType::kInner && nlt != JoinType::kCross) {
          chain_all_inner = false;
        }
        double right_rows =
            estimates[i].has_stats || estimates[i].rows > 0
                ? estimates[i].rows
                : -1;
        if (cur_rows >= 0 && right_rows >= 0) {
          cur_rows = cur_rows * std::max(1.0, right_rows);
          if (cond) {
            double sel = CardinalityEstimator::ResidualConjunctSelectivity();
            for (size_t k = 0; k < all_conjs.size(); ++k) cur_rows *= sel;
          }
        } else {
          cur_rows = -1;
        }
        root = std::make_unique<NestedLoopJoinOp>(
            std::move(root), std::move(sources[i]), cond, nlt,
            &b_->session()->exec_ctx());
        if (cur_rows >= 0) root->set_est_rows(cur_rows);
      } else {
        // Hash join: bind probe keys over bound scope, build keys over the
        // new item's scope.
        ExprBinder probe_eb(scope, b_->session());
        ExprBinder build_eb(&new_scope, b_->session());
        std::vector<ExprPtr> pk, bk;
        for (size_t k = 0; k < equi_left.size(); ++k) {
          DASHDB_ASSIGN_OR_RETURN(ExprPtr p, probe_eb.Bind(equi_left[k]));
          DASHDB_ASSIGN_OR_RETURN(ExprPtr q, build_eb.Bind(equi_right[k]));
          pk.push_back(std::move(p));
          bk.push_back(std::move(q));
        }
        // Estimate via distinct-count containment on the first key pair,
        // resolving NDVs through the raw (unbound) column refs.
        int probe_item = -1, probe_local = -1;
        double l_ndv = 0, r_ndv = 0;
        if (resolve_item_col(*equi_left[0], i, &probe_item, &probe_local)) {
          l_ndv = key_ndv(probe_item, probe_local);
        }
        {
          int bi = -1, bc = -1;
          // Build refs resolve only within item i's scope.
          if (equi_right[0]->kind == ExprKind::kColumnRef) {
            for (size_t c = 0; c < item_cols[i].size(); ++c) {
              const ScopeItem& it = item_cols[i][c];
              if (!equi_right[0]->qualifier.empty() &&
                  it.alias != equi_right[0]->qualifier) {
                continue;
              }
              if (it.name != equi_right[0]->name) continue;
              if (bi >= 0) {
                bi = -1;
                break;
              }
              bi = static_cast<int>(i);
              bc = static_cast<int>(c);
            }
          }
          if (bi >= 0) r_ndv = key_ndv(bi, bc);
        }
        double right_rows =
            estimates[i].has_stats || estimates[i].rows > 0
                ? estimates[i].rows
                : -1;
        cur_rows = cur_rows >= 0 && right_rows >= 0
                       ? CardinalityEstimator::JoinRows(cur_rows, right_rows,
                                                        l_ndv, r_ndv)
                       : -1;
        auto hj = std::make_unique<HashJoinOp>(
            std::move(root), std::move(sources[i]), std::move(pk),
            std::move(bk), jt, &b_->session()->exec_ctx());
        // Sideways Bloom pushdown: once the build side materializes, its key
        // set semi-filters the probe-side base scan. Only for single-key
        // inner joins whose probe key is a plain base-scan column, and only
        // while the chain has no outer joins above that scan. Gated on the
        // cost optimizer so SET OPTIMIZER HEURISTIC is a faithful baseline.
        if (b_->session()->optimizer_mode() == OptimizerMode::kCost &&
            jt == JoinType::kInner && chain_all_inner &&
            equi_left.size() == 1 && probe_item >= 0 &&
            static_cast<size_t>(probe_item) < source_ptrs.size() &&
            source_ptrs[probe_item] != nullptr) {
          hj->SetProbeFilterTarget(source_ptrs[probe_item], probe_local);
        }
        if (jt != JoinType::kInner) chain_all_inner = false;
        root = std::move(hj);
        if (cur_rows >= 0) root->set_est_rows(cur_rows);
        // Inner-join ON residuals become filters over the combined scope.
        if (!on_residual.empty()) {
          ExprBinder eb(&combined, b_->session());
          ExprPtr cond;
          for (const auto& conj : on_residual) {
            DASHDB_ASSIGN_OR_RETURN(ExprPtr bc, eb.Bind(conj));
            cond = cond ? std::make_shared<LogicExpr>(LogicOp::kAnd, cond, bc)
                        : bc;
          }
          if (cur_rows >= 0) {
            double sel = CardinalityEstimator::ResidualConjunctSelectivity();
            for (size_t k = 0; k < on_residual.size(); ++k) cur_rows *= sel;
          }
          root = std::make_unique<FilterOp>(std::move(root), cond,
                                            &b_->session()->exec_ctx());
          if (cur_rows >= 0) root->set_est_rows(cur_rows);
        }
      }
      *scope = std::move(combined);
    }
    join_tree_est_ = cur_rows;
    return root;
  }

  Status ApplyConnectBy(const ast::SelectStmt& stmt, OperatorPtr* root,
                        Scope* scope) {
    // Expect PRIOR col = col (either order).
    std::vector<ExprP> conjs;
    SplitConjuncts(stmt.connect_by, &conjs);
    if (conjs.size() != 1 || conjs[0]->kind != ExprKind::kBinary ||
        conjs[0]->bin_op != BinOp::kEq) {
      return Status::Unimplemented(
          "CONNECT BY supports a single PRIOR equality");
    }
    ExprP l = conjs[0]->children[0], r = conjs[0]->children[1];
    ExprP prior_side, child_side;
    if (l->kind == ExprKind::kFuncCall && l->name == "PRIOR") {
      prior_side = l->children[0];
      child_side = r;
    } else if (r->kind == ExprKind::kFuncCall && r->name == "PRIOR") {
      prior_side = r->children[0];
      child_side = l;
    } else {
      return Status::SemanticError("CONNECT BY requires PRIOR");
    }
    DASHDB_ASSIGN_OR_RETURN(
        int prior_idx, scope->Resolve(prior_side->qualifier, prior_side->name));
    DASHDB_ASSIGN_OR_RETURN(
        int child_idx, scope->Resolve(child_side->qualifier, child_side->name));
    ExprPtr start;
    if (stmt.start_with) {
      ExprBinder eb(scope, b_->session());
      DASHDB_ASSIGN_OR_RETURN(start, eb.Bind(stmt.start_with));
    }
    *root = std::make_unique<ConnectByOp>(std::move(*root), std::move(start),
                                          prior_idx, child_idx,
                                          &b_->session()->exec_ctx());
    scope->items.push_back({"", "LEVEL", TypeId::kInt64});
    return Status::OK();
  }

  Status BindAggregation(const ast::SelectStmt& stmt,
                         std::vector<ast::SelectItem>& items,
                         const std::vector<std::string>& out_names,
                         OperatorPtr* root, Scope* scope) {
    // Resolve GROUP BY entries (expr, output name, or ordinal).
    std::vector<ExprP> group_asts;
    for (const auto& g : stmt.group_by) {
      if (g->kind == ExprKind::kLiteral && !g->literal.is_null() &&
          g->literal.type() == TypeId::kInt64) {
        int ord = static_cast<int>(g->literal.AsInt());
        if (ord < 1 || ord > static_cast<int>(items.size())) {
          return Status::SemanticError("GROUP BY ordinal out of range");
        }
        group_asts.push_back(items[ord - 1].expr);
        continue;
      }
      if (g->kind == ExprKind::kColumnRef && g->qualifier.empty() &&
          !scope->Has("", g->name)) {
        // Netezza: GROUP BY output column name.
        bool found = false;
        for (size_t i = 0; i < items.size(); ++i) {
          if (out_names[i] == g->name) {
            group_asts.push_back(items[i].expr);
            found = true;
            break;
          }
        }
        if (found) continue;
      }
      group_asts.push_back(g);
    }
    // Collect aggregate calls from select items + having.
    std::vector<ExprP> agg_calls;
    std::set<std::string> seen;
    for (const auto& item : items) CollectAggCalls(item.expr, &agg_calls, &seen);
    if (stmt.having) CollectAggCalls(stmt.having, &agg_calls, &seen);

    ExprBinder input_eb(scope, b_->session());
    std::vector<ExprPtr> group_exprs;
    std::vector<std::string> group_names;
    std::map<std::string, int> slot_of;  // serialized AST -> agg output slot
    for (size_t i = 0; i < group_asts.size(); ++i) {
      DASHDB_ASSIGN_OR_RETURN(ExprPtr ge, input_eb.Bind(group_asts[i]));
      group_names.push_back(group_asts[i]->kind == ExprKind::kColumnRef
                                ? group_asts[i]->name
                                : "GROUP_" + std::to_string(i + 1));
      slot_of[AstToString(group_asts[i])] = static_cast<int>(i);
      group_exprs.push_back(std::move(ge));
    }
    std::vector<AggSpec> specs;
    std::vector<std::string> agg_out_names;
    for (size_t i = 0; i < agg_calls.size(); ++i) {
      const ExprP& call = agg_calls[i];
      AggSpec spec;
      AggKindFromName(call->name, &spec.kind);
      spec.distinct = call->distinct_arg;
      if (spec.kind == AggKind::kCount && !call->children.empty() &&
          call->children[0]->kind == ExprKind::kStar) {
        spec.kind = AggKind::kCountStar;
      }
      if (spec.kind == AggKind::kPercentileCont ||
          spec.kind == AggKind::kPercentileDisc) {
        // children = [fraction, target] (WITHIN GROUP form).
        if (call->children.size() != 2) {
          return Status::SemanticError(call->name +
                                       " requires WITHIN GROUP (ORDER BY x)");
        }
        ExprBinder fold_eb(scope, b_->session());
        DASHDB_ASSIGN_OR_RETURN(Value frac,
                                fold_eb.FoldToValue(call->children[0]));
        spec.param = frac.AsDouble();
        DASHDB_ASSIGN_OR_RETURN(spec.arg, input_eb.Bind(call->children[1]));
      } else if (spec.kind != AggKind::kCountStar) {
        if (call->children.empty()) {
          return Status::SemanticError(call->name + " requires an argument");
        }
        DASHDB_ASSIGN_OR_RETURN(spec.arg, input_eb.Bind(call->children[0]));
        if (call->children.size() >= 2) {
          DASHDB_ASSIGN_OR_RETURN(spec.arg2, input_eb.Bind(call->children[1]));
        }
      }
      spec.out_type = AggResultType(
          spec.kind, spec.arg ? spec.arg->out_type() : TypeId::kInt64);
      slot_of[AstToString(call)] =
          static_cast<int>(group_asts.size() + i);
      agg_out_names.push_back("AGG_" + std::to_string(i + 1));
      specs.push_back(std::move(spec));
    }
    *root = std::make_unique<HashAggOp>(
        std::move(*root), std::move(group_exprs), group_names, std::move(specs),
        agg_out_names, &b_->session()->exec_ctx());
    // Post-agg scope.
    Scope agg_scope;
    for (const auto& c : (*root)->output()) {
      agg_scope.items.push_back({"", NormalizeIdent(c.name), c.type});
    }
    // Rewrite select items / having to reference agg outputs.
    auto rewrite = [&](const ExprP& e, auto&& self) -> ExprP {
      auto it = slot_of.find(AstToString(e));
      if (it != slot_of.end()) {
        return ast::MakeColumnRef("", agg_scope.items[it->second].name);
      }
      auto copy = std::make_shared<ast::Expr>(*e);
      for (auto& c : copy->children) c = self(c, self);
      if (copy->else_branch) copy->else_branch = self(copy->else_branch, self);
      return copy;
    };
    ExprBinder out_eb(&agg_scope, b_->session());
    if (stmt.having) {
      ExprP rewritten = rewrite(stmt.having, rewrite);
      DASHDB_ASSIGN_OR_RETURN(ExprPtr h, out_eb.Bind(rewritten));
      *root = std::make_unique<FilterOp>(std::move(*root), h,
                                         &b_->session()->exec_ctx());
    }
    std::vector<ExprPtr> finals;
    for (auto& item : items) {
      ExprP rewritten = rewrite(item.expr, rewrite);
      DASHDB_ASSIGN_OR_RETURN(ExprPtr fe, out_eb.Bind(rewritten));
      finals.push_back(std::move(fe));
    }
    *root = std::make_unique<ProjectOp>(std::move(*root), std::move(finals),
                                        out_names,
                                        &b_->session()->exec_ctx());
    return Status::OK();
  }

  Result<OperatorPtr> BindValues(const ast::SelectStmt& stmt) {
    Scope empty;
    ExprBinder eb(&empty, b_->session());
    RowBatch batch;
    std::vector<OutputCol> cols;
    const size_t width = stmt.values_rows[0].size();
    std::vector<std::vector<Value>> rows;
    for (const auto& row : stmt.values_rows) {
      if (row.size() != width) {
        return Status::SemanticError("VALUES rows have differing widths");
      }
      std::vector<Value> vals;
      for (const auto& e : row) {
        DASHDB_ASSIGN_OR_RETURN(Value v, eb.FoldToValue(e));
        vals.push_back(std::move(v));
      }
      rows.push_back(std::move(vals));
    }
    for (size_t c = 0; c < width; ++c) {
      TypeId t = TypeId::kVarchar;
      for (const auto& row : rows) {
        if (!row[c].is_null()) {
          t = row[c].type();
          break;
        }
      }
      cols.push_back({"COL" + std::to_string(c + 1), t});
      batch.columns.emplace_back(t);
    }
    for (const auto& row : rows) {
      for (size_t c = 0; c < width; ++c) {
        if (row[c].is_null()) {
          batch.columns[c].AppendNull();
        } else {
          DASHDB_ASSIGN_OR_RETURN(Value v, row[c].CastTo(cols[c].type));
          batch.columns[c].AppendValue(v);
        }
      }
    }
    return Result<OperatorPtr>(
        std::make_unique<ValuesOp>(std::move(batch), std::move(cols)));
  }

  Binder* b_;
  size_t hidden_order_cols_ = 0;
  size_t used_hidden_ = 0;
  double join_tree_est_ = -1;  ///< output estimate of the join tree, -1 unknown
};

}  // namespace

Result<OperatorPtr> Binder::BindSelect(const ast::SelectStmt& stmt) {
  SelectBinder sb(this);
  return sb.Bind(stmt);
}

Result<TablePredicates> Binder::SplitTablePredicates(const TableSchema& schema,
                                                      const ast::ExprP& where) {
  TablePredicates out;
  if (!where) return out;
  SelectBinder sb(this);
  std::vector<ExprP> residual_asts;
  DASHDB_RETURN_IF_ERROR(
      sb.SplitForTable(schema, where, &out.pushdown, &residual_asts));
  if (!residual_asts.empty()) {
    Scope scope;
    for (int c = 0; c < schema.num_columns(); ++c) {
      scope.items.push_back({NormalizeIdent(schema.table_name()),
                             NormalizeIdent(schema.column(c).name),
                             schema.column(c).type});
    }
    ExprBinder eb(&scope, session_);
    ExprPtr all;
    for (const auto& conj : residual_asts) {
      DASHDB_ASSIGN_OR_RETURN(ExprPtr bound, eb.Bind(conj));
      all = all ? std::make_shared<LogicExpr>(LogicOp::kAnd, all, bound)
                : bound;
    }
    out.residual = all;
  }
  return out;
}

Result<ExprPtr> Binder::BindScalar(const ast::ExprP& e,
                                   const std::vector<OutputCol>& scope_cols) {
  Scope scope;
  for (const auto& c : scope_cols) {
    scope.items.push_back({"", NormalizeIdent(c.name), c.type});
  }
  ExprBinder eb(&scope, session_);
  return eb.Bind(e);
}

}  // namespace dashdb
