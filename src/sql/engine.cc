#include "sql/engine.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <thread>

#include "common/threadpool.h"

namespace dashdb {

Engine::Engine(EngineConfig config)
    : config_(config),
      pool_(config.buffer_pool_bytes, config.buffer_policy),
      admission_(config.admission) {
  int qp = config.query_parallelism;
  if (qp == 0) {
    qp = static_cast<int>(std::thread::hardware_concurrency());
  }
  query_parallelism_ = std::max(1, qp);
  if (query_parallelism_ > 1) {
    // The issuing thread participates in every ParallelFor, so the pool
    // only needs dop-1 workers to reach the configured degree.
    exec_pool_ = std::make_unique<ThreadPool>(query_parallelism_ - 1);
  }
  // CALL RUNSTATS(): statistics refresh. Plans cached before the refresh
  // recompile on next use (their stats stamp no longer matches).
  RegisterProcedure("RUNSTATS",
                    [](const std::vector<Value>&, Session*,
                       Engine* engine) -> Result<QueryResult> {
                      engine->RefreshStatistics();
                      QueryResult r;
                      r.message = "RUNSTATS: statistics refreshed (epoch " +
                                  std::to_string(engine->stats_version()) + ")";
                      return r;
                    });
}

Engine::~Engine() = default;

int Engine::EffectiveDop(const Session& session) const {
  int dop = session.max_parallelism();
  if (dop <= 0) return query_parallelism_;  // 0 = ANY: the engine degree
  return std::min(dop, query_parallelism_);
}

std::shared_ptr<Session> Engine::CreateSession() {
  return std::make_shared<Session>();
}

ScanOptions Engine::MakeScanOptions() {
  ScanOptions o;
  o.use_synopsis = config_.use_synopsis;
  o.use_swar = config_.use_swar;
  o.operate_on_compressed = config_.operate_on_compressed;
  o.pool = config_.charge_buffer_pool ? &pool_ : nullptr;
  // Scans attach to the engine-wide share registry only when the session
  // also arms opts.shared_scan (SET SHARED_SCAN ON).
  o.share = &scan_share_;
  return o;
}

void Engine::RegisterProcedure(const std::string& name, Procedure proc) {
  std::lock_guard<std::mutex> lk(proc_mu_);
  procedures_[NormalizeIdent(name)] = std::move(proc);
}

Result<std::shared_ptr<ColumnTable>> Engine::CreateColumnTable(
    TableSchema schema) {
  auto table = std::make_shared<ColumnTable>(schema, NextTableId());
  table->ConfigureIo(config_.io_model, &io_nanos_, &pool_);
  CatalogEntry entry;
  entry.kind = EntryKind::kBaseTable;
  entry.schema = std::move(schema);
  entry.storage = table;
  DASHDB_RETURN_IF_ERROR(catalog_.CreateEntry(std::move(entry)));
  return table;
}

Result<std::shared_ptr<RowTable>> Engine::CreateRowTable(TableSchema schema) {
  auto table = std::make_shared<RowTable>(schema, NextTableId());
  table->ConfigureIo(config_.io_model, &io_nanos_, &pool_);
  CatalogEntry entry;
  entry.kind = EntryKind::kBaseTable;
  entry.schema = std::move(schema);
  entry.storage = table;
  DASHDB_RETURN_IF_ERROR(catalog_.CreateEntry(std::move(entry)));
  return table;
}

Result<std::shared_ptr<CatalogEntry>> Engine::GetTable(
    const std::string& schema, const std::string& table) {
  return catalog_.Lookup(schema, table);
}

namespace {

/// Whether a bound-and-executed result for this expression is stable across
/// repeated executions against unchanged data. Parameters bind per-EXECUTE,
/// sequences advance per-row, and the clock-reading functions (SYSDATE,
/// CURRENT_DATE, NOW, AGE with implicit now) read session context — none of
/// those may be served from the result cache.
bool IsCacheableExpr(const ast::ExprP& e) {
  if (!e) return true;
  if (e->kind == ast::ExprKind::kParam ||
      e->kind == ast::ExprKind::kSequenceRef) {
    return false;
  }
  // Niladic clock functions parse as either calls or bare column refs
  // (CURRENT_DATE / SYSDATE without parentheses; the binder resolves them
  // to functions only when no column shadows them). Reject the bare-ref
  // spelling conservatively — a real column with that name just loses
  // caching, never correctness.
  if (e->kind == ast::ExprKind::kFuncCall ||
      (e->kind == ast::ExprKind::kColumnRef && e->qualifier.empty())) {
    const std::string f = NormalizeIdent(e->name);
    if (f == "CURRENT_DATE" || f == "SYSDATE" || f == "NOW" || f == "AGE") {
      return false;
    }
  }
  for (const auto& c : e->children) {
    if (!IsCacheableExpr(c)) return false;
  }
  return IsCacheableExpr(e->else_branch);
}

}  // namespace

bool IsResultCacheableSelect(const ast::SelectStmt& sel) {
  for (const auto& cte : sel.ctes) {
    if (cte.query && !IsResultCacheableSelect(*cte.query)) return false;
  }
  for (const auto& item : sel.items) {
    if (!IsCacheableExpr(item.expr)) return false;
  }
  for (const auto& tr : sel.from) {
    if (tr.subquery && !IsResultCacheableSelect(*tr.subquery)) return false;
    if (!IsCacheableExpr(tr.join_condition)) return false;
  }
  if (!IsCacheableExpr(sel.where)) return false;
  for (const auto& g : sel.group_by) {
    if (!IsCacheableExpr(g)) return false;
  }
  if (!IsCacheableExpr(sel.having)) return false;
  for (const auto& o : sel.order_by) {
    if (!IsCacheableExpr(o.expr)) return false;
  }
  if (!IsCacheableExpr(sel.start_with)) return false;
  if (!IsCacheableExpr(sel.connect_by)) return false;
  for (const auto& row : sel.values_rows) {
    for (const auto& v : row) {
      if (!IsCacheableExpr(v)) return false;
    }
  }
  return true;
}

Result<QueryResult> Engine::Execute(Session* session, const std::string& sql) {
  DASHDB_ASSIGN_OR_RETURN(ast::StatementP stmt, ParseCached(session, sql));
  // Result cache: plain SELECTs only (EXPLAIN reports plans, not data;
  // scripts and prepared statements bypass Execute). Versions are captured
  // BEFORE the lookup/execution so a write racing this statement can only
  // cause a skipped insert, never a stale hit.
  if (session->result_cache_enabled() &&
      stmt->kind == ast::StmtKind::kSelect && stmt->select &&
      IsResultCacheableSelect(*stmt->select)) {
    const ResultCache::Versions v = CurrentVersions();
    if (std::shared_ptr<const QueryResult> cached = result_cache_.Lookup(
            sql, session->dialect(), session->default_schema(), v)) {
      return *cached;
    }
    ResultCacheIntent intent{&sql, v};
    return ExecuteStmt(session, stmt, &intent);
  }
  return ExecuteStmt(session, stmt);
}

namespace {

/// Cheap pre-parse gate: only statements that can begin a read query touch
/// the plan cache, so DDL/DML/SET traffic neither pollutes the cache nor
/// inflates its miss counter.
bool LooksLikeReadQuery(const std::string& sql) {
  size_t i = sql.find_first_not_of(" \t\r\n(");
  if (i == std::string::npos) return false;
  std::string word;
  while (i < sql.size() &&
         std::isalpha(static_cast<unsigned char>(sql[i]))) {
    word.push_back(
        static_cast<char>(std::toupper(static_cast<unsigned char>(sql[i]))));
    ++i;
  }
  return word == "SELECT" || word == "WITH" || word == "EXPLAIN" ||
         word == "VALUES";
}

}  // namespace

Result<ast::StatementP> Engine::ParseCached(Session* session,
                                            const std::string& sql) {
  // Only read-only statements are cached: their ASTs are immutable and
  // binding is per-execution, so one parse serves every session. DDL/DML
  // parse fresh (cheap, and their side effects bump the versions that
  // invalidate cached reads anyway).
  if (!LooksLikeReadQuery(sql)) return ParseStatement(sql);
  const uint64_t cat_ver = catalog_.version();
  const uint64_t stats_ver = stats_version();
  if (ast::StatementP cached =
          plan_cache_.Lookup(sql, session->dialect(), cat_ver, stats_ver)) {
    return cached;
  }
  DASHDB_ASSIGN_OR_RETURN(ast::StatementP stmt, ParseStatement(sql));
  if (stmt->kind == ast::StmtKind::kSelect ||
      stmt->kind == ast::StmtKind::kExplain) {
    plan_cache_.Insert(sql, session->dialect(), cat_ver, stats_ver, stmt);
  }
  return stmt;
}

Result<QueryResult> Engine::ExecuteScript(Session* session,
                                          const std::string& sql) {
  DASHDB_ASSIGN_OR_RETURN(auto stmts, ParseScript(sql));
  QueryResult last;
  for (size_t i = 0; i < stmts.size(); ++i) {
    auto r = ExecuteStmt(session, stmts[i]);
    if (!r.ok()) {
      // Annotate which statement failed, preserving the code so callers
      // can still classify retryability (Status taxonomy).
      return r.status().WithContext("statement " + std::to_string(i + 1) +
                                    "/" + std::to_string(stmts.size()));
    }
    last = std::move(r).value();
  }
  return last;
}

namespace {

// --- '?' parameter counting (PREPARE reports how many values EXECUTE
// --- must supply). Walks the full AST; param_index is assigned in text
// --- order by the parser, so the count is max index + 1.

void MaxParamIndex(const ast::ExprP& e, int* max_index);

void MaxParamIndex(const ast::SelectP& sel, int* max_index) {
  if (!sel) return;
  for (const auto& cte : sel->ctes) MaxParamIndex(cte.query, max_index);
  for (const auto& item : sel->items) MaxParamIndex(item.expr, max_index);
  for (const auto& tr : sel->from) {
    MaxParamIndex(tr.subquery, max_index);
    MaxParamIndex(tr.join_condition, max_index);
  }
  MaxParamIndex(sel->where, max_index);
  for (const auto& g : sel->group_by) MaxParamIndex(g, max_index);
  MaxParamIndex(sel->having, max_index);
  for (const auto& o : sel->order_by) MaxParamIndex(o.expr, max_index);
  MaxParamIndex(sel->start_with, max_index);
  MaxParamIndex(sel->connect_by, max_index);
  for (const auto& row : sel->values_rows) {
    for (const auto& v : row) MaxParamIndex(v, max_index);
  }
}

void MaxParamIndex(const ast::ExprP& e, int* max_index) {
  if (!e) return;
  if (e->kind == ast::ExprKind::kParam) {
    *max_index = std::max(*max_index, e->param_index);
  }
  for (const auto& c : e->children) MaxParamIndex(c, max_index);
  MaxParamIndex(e->else_branch, max_index);
}

int CountParams(const ast::Statement& st) {
  int max_index = -1;
  MaxParamIndex(st.select, &max_index);
  for (const auto& row : st.insert_rows) {
    for (const auto& v : row) MaxParamIndex(v, &max_index);
  }
  for (const auto& [name, expr] : st.set_clauses) {
    MaxParamIndex(expr, &max_index);
  }
  MaxParamIndex(st.where, &max_index);
  for (const auto& a : st.call_args) MaxParamIndex(a, &max_index);
  return max_index + 1;
}

}  // namespace

Result<int> Engine::Prepare(Session* session, const std::string& name,
                            const std::string& sql) {
  DASHDB_ASSIGN_OR_RETURN(ast::StatementP stmt, ParseCached(session, sql));
  PreparedStatement ps;
  ps.stmt = std::move(stmt);
  ps.dialect = session->dialect();
  ps.sql = sql;
  ps.param_count = CountParams(*ps.stmt);
  const int count = ps.param_count;
  session->AddPrepared(name, std::move(ps));
  return count;
}

Result<QueryResult> Engine::ExecutePrepared(Session* session,
                                            const std::string& name,
                                            std::vector<Value> params) {
  DASHDB_ASSIGN_OR_RETURN(PreparedStatement ps, session->GetPrepared(name));
  if (static_cast<int>(params.size()) != ps.param_count) {
    return Status::SemanticError(
        "prepared statement " + name + " takes " +
        std::to_string(ps.param_count) + " parameter(s), " +
        std::to_string(params.size()) + " supplied");
  }
  // Compile under the dialect recorded at PREPARE time (paper II.C.2 —
  // objects remember their dialect), restoring the session's own dialect
  // and parameter state on every exit path.
  const Dialect saved = session->dialect();
  session->set_dialect(ps.dialect);
  session->set_bind_params(std::move(params));
  auto r = ExecuteStmt(session, ps.stmt);
  session->clear_bind_params();
  session->set_dialect(saved);
  return r;
}

Result<QueryResult> Engine::ExecuteStmt(Session* session,
                                        const ast::StatementP& stmt,
                                        const ResultCacheIntent* cache) {
  switch (stmt->kind) {
    case ast::StmtKind::kSelect:
      return ExecSelect(session, *stmt->select, /*explain_only=*/false,
                        /*analyze=*/false, cache);
    case ast::StmtKind::kExplain:
      return ExecSelect(session, *stmt->select, /*explain_only=*/true,
                        stmt->explain_analyze);
    case ast::StmtKind::kInsert:
      return ExecInsert(session, *stmt);
    case ast::StmtKind::kUpdate:
      return ExecUpdate(session, *stmt);
    case ast::StmtKind::kDelete:
      return ExecDelete(session, *stmt);
    case ast::StmtKind::kCreateTable:
      return ExecCreateTable(session, *stmt);
    case ast::StmtKind::kDropTable: {
      std::string schema = stmt->target_schema.empty()
                               ? session->default_schema()
                               : stmt->target_schema;
      auto entry = catalog_.Lookup(schema, stmt->target_table);
      if (!entry.ok()) {
        if (stmt->if_exists) {
          QueryResult r;
          r.message = "DROP: no such table (IF EXISTS)";
          return r;
        }
        return entry.status();
      }
      // Release cached pages for dropped base tables.
      auto col = std::dynamic_pointer_cast<ColumnTable>((*entry)->storage);
      if (col) pool_.EvictTable(col->table_id());
      DASHDB_RETURN_IF_ERROR(catalog_.DropEntry(schema, stmt->target_table));
      QueryResult r;
      r.message = "DROPPED";
      return r;
    }
    case ast::StmtKind::kTruncate: {
      std::string schema = stmt->target_schema.empty()
                               ? session->default_schema()
                               : stmt->target_schema;
      DASHDB_ASSIGN_OR_RETURN(auto entry,
                              catalog_.Lookup(schema, stmt->target_table));
      auto col = std::dynamic_pointer_cast<ColumnTable>(entry->storage);
      auto row = std::dynamic_pointer_cast<RowTable>(entry->storage);
      if (col) {
        pool_.EvictTable(col->table_id());
        col->Truncate();
      } else if (row) {
        row->Truncate();
      } else {
        return Status::SemanticError("TRUNCATE target is not a base table");
      }
      BumpDataVersion();
      QueryResult r;
      r.message = "TRUNCATED";
      return r;
    }
    case ast::StmtKind::kCreateView: {
      std::string schema = stmt->target_schema.empty()
                               ? session->default_schema()
                               : stmt->target_schema;
      CatalogEntry entry;
      entry.kind = EntryKind::kView;
      entry.schema = TableSchema(schema, stmt->target_table, {});
      entry.view_sql = stmt->view_sql;
      entry.view_dialect = DialectName(session->dialect());
      DASHDB_RETURN_IF_ERROR(catalog_.CreateEntry(std::move(entry)));
      QueryResult r;
      r.message = "VIEW CREATED";
      return r;
    }
    case ast::StmtKind::kCreateSchema: {
      DASHDB_RETURN_IF_ERROR(catalog_.CreateSchema(stmt->target_table));
      QueryResult r;
      r.message = "SCHEMA CREATED";
      return r;
    }
    case ast::StmtKind::kCreateSequence: {
      DASHDB_RETURN_IF_ERROR(session->CreateSequence(stmt->target_table));
      QueryResult r;
      r.message = "SEQUENCE CREATED";
      return r;
    }
    case ast::StmtKind::kCreateAlias: {
      std::string tgt_schema = stmt->alias_target_schema.empty()
                                   ? session->default_schema()
                                   : stmt->alias_target_schema;
      DASHDB_ASSIGN_OR_RETURN(
          auto target, catalog_.Lookup(tgt_schema, stmt->alias_target_table));
      std::string schema = stmt->target_schema.empty()
                               ? session->default_schema()
                               : stmt->target_schema;
      CatalogEntry entry = *target;  // share storage, new name
      entry.schema = TableSchema(schema, stmt->target_table,
                                 target->schema.columns(),
                                 target->schema.organization());
      DASHDB_RETURN_IF_ERROR(catalog_.CreateEntry(std::move(entry)));
      QueryResult r;
      r.message = "ALIAS CREATED";
      return r;
    }
    case ast::StmtKind::kSet:
      return ExecSet(session, *stmt);
    case ast::StmtKind::kCall: {
      Procedure proc;
      {
        std::lock_guard<std::mutex> lk(proc_mu_);
        auto it = procedures_.find(NormalizeIdent(stmt->call_name));
        if (it == procedures_.end()) {
          return Status::NotFound("procedure " + stmt->call_name);
        }
        proc = it->second;
      }
      Binder binder(&catalog_, session);
      std::vector<Value> args;
      for (const auto& a : stmt->call_args) {
        DASHDB_ASSIGN_OR_RETURN(ExprPtr bound, binder.BindScalar(a, {}));
        RowBatch empty;
        DASHDB_ASSIGN_OR_RETURN(Value v,
                                bound->EvaluateRow(empty, 0,
                                                   session->exec_ctx()));
        args.push_back(std::move(v));
      }
      return proc(args, session, this);
    }
  }
  return Status::Internal("unhandled statement kind");
}

namespace {

/// Un-publishes the session's current-query pointer on scope exit, so a
/// late CANCEL from another thread never touches a finished statement.
struct CurrentQueryScope {
  Session* session;
  ~CurrentQueryScope() { session->PublishCurrentQuery(nullptr); }
};

}  // namespace

std::shared_ptr<QueryContext> Engine::MakeQueryContext(Session* session) {
  // Tests may pre-arm the context (CancelAfterChecks) before the statement
  // runs; otherwise a fresh governor picks up the session's SET knobs.
  std::shared_ptr<QueryContext> qc = session->TakeInjectedQueryContext();
  if (!qc) qc = std::make_shared<QueryContext>();
  if (session->statement_timeout_seconds() > 0) {
    qc->SetTimeout(session->statement_timeout_seconds());
  }
  if (session->mem_budget_bytes() > 0) {
    qc->SetMemBudget(session->mem_budget_bytes());
  }
  session->PublishCurrentQuery(qc);
  return qc;
}

Result<QueryResult> Engine::ExecSelect(Session* session,
                                       const ast::SelectStmt& sel,
                                       bool explain_only, bool analyze,
                                       const ResultCacheIntent* cache) {
  // Arm intra-query parallelism for this statement: the execution context
  // drives the parallel join build / aggregation, the scan options drive
  // the morsel scan. Both stay null/1 on serial engines.
  const int dop = EffectiveDop(*session);
  session->exec_ctx().pool = dop > 1 ? exec_pool_.get() : nullptr;
  session->exec_ctx().dop = dop;
  // The governor outlives the plan (operators return their memory
  // reservations to it on destruction), so it is declared first and the
  // shared_ptr keeps it valid for a concurrent CancelCurrentQuery().
  std::shared_ptr<QueryContext> qc = MakeQueryContext(session);
  CurrentQueryScope unpublish{session};
  BindOptions bopts;
  bopts.scan = MakeScanOptions();
  bopts.scan.exec_pool = dop > 1 ? exec_pool_.get() : nullptr;
  bopts.scan.dop = dop;
  bopts.scan.shared_scan = session->shared_scan_enabled();
  Binder binder(&catalog_, session, bopts);
  DASHDB_ASSIGN_OR_RETURN(OperatorPtr root, binder.BindSelect(sel));
  AttachQueryContext(root.get(), qc.get());
  QueryResult r;
  if (explain_only && !analyze) {
    r.message = root->PlanString();
    return r;
  }
  // Admission happens after bind — classification needs the optimizer's
  // root estimate — and before any operator runs. The RAII ticket spans
  // the drain, so slots free exactly when the statement stops consuming
  // CPU/memory.
  AdmissionTicket ticket;
  if (session->admission_enabled()) {
    // The binder stamps estimates on scans and joins but not on the
    // project/sort/limit wrappers above them, so classification walks down
    // through estimate-less unary operators to the topmost estimate.
    const Operator* est_op = root.get();
    while (est_op != nullptr && !est_op->has_est_rows() &&
           est_op->children().size() == 1) {
      est_op = est_op->children()[0];
    }
    const double est = est_op != nullptr && est_op->has_est_rows()
                           ? est_op->est_rows()
                           : -1.0;
    DASHDB_ASSIGN_OR_RETURN(
        ticket, admission_.Admit(admission_.Classify(est), qc.get()));
  }
  if (explain_only) {
    // EXPLAIN ANALYZE: run the query, discard its rows, and report the plan
    // annotated with the runtime metrics the instrumented operators
    // accumulated. affected_rows carries the result cardinality so callers
    // (differential tests) can check it against the plain query without
    // parsing the report.
    DASHDB_ASSIGN_OR_RETURN(RowBatch result, DrainOperator(root.get()));
    RecordCardinalityFeedback(root.get());
    r.affected_rows = static_cast<int64_t>(result.num_rows());
    r.message = "EXPLAIN ANALYZE (dop=" + std::to_string(dop) +
                ", rows=" + std::to_string(result.num_rows()) + ")\n" +
                root->AnalyzeString();
    auto trace = std::make_shared<Trace>();
    uint32_t q = trace->AddSpan("Query", Trace::kNoParent);
    root->AddTraceSpans(trace.get(), q);
    TraceSpan& qs = trace->span(q);
    qs.rows = result.num_rows();
    qs.wall_seconds = root->metrics().wall_seconds;
    qs.attrs["dop"] = dop;
    session->set_last_trace(std::move(trace));
    return r;
  }
  r.columns = root->output();
  DASHDB_ASSIGN_OR_RETURN(r.rows, DrainOperator(root.get()));
  RecordCardinalityFeedback(root.get());
  r.affected_rows = static_cast<int64_t>(r.rows.num_rows());
  if (cache != nullptr && CurrentVersions() == cache->versions) {
    // The copy the cache retains is charged against this statement's memory
    // budget: a governed query that cannot afford the copy runs to
    // completion but skips caching (kResourceExhausted here never fails the
    // query). The version re-check above means a write that landed during
    // execution skips the insert instead of caching a torn read.
    const int64_t bytes = BatchMemoryBytes(r.rows);
    if (qc->Charge(bytes, "result cache insert").ok()) {
      result_cache_.Insert(*cache->sql, session->dialect(),
                           session->default_schema(), cache->versions,
                           std::make_shared<QueryResult>(r),
                           static_cast<size_t>(bytes));
      qc->Release(bytes);
    }
  }
  return r;
}

namespace {

/// Casts one value to a column's declared type, with NOT NULL checking.
Result<Value> CoerceForColumn(const Value& v, const ColumnDef& col) {
  if (v.is_null()) {
    if (!col.nullable) {
      return Status::SemanticError("NULL not allowed in column " + col.name);
    }
    return Value::Null(col.type);
  }
  return v.CastTo(col.type);
}

}  // namespace

Result<QueryResult> Engine::ExecInsert(Session* session,
                                       const ast::Statement& st) {
  std::string schema =
      st.target_schema.empty() ? session->default_schema() : st.target_schema;
  DASHDB_ASSIGN_OR_RETURN(auto entry,
                          catalog_.Lookup(schema, st.target_table));
  const TableSchema& ts = entry->schema;
  // Column mapping.
  std::vector<int> targets;
  if (st.insert_columns.empty()) {
    for (int c = 0; c < ts.num_columns(); ++c) targets.push_back(c);
  } else {
    for (const auto& name : st.insert_columns) {
      int idx = ts.FindColumn(name);
      if (idx < 0) return Status::SemanticError("unknown column " + name);
      targets.push_back(idx);
    }
  }
  // Source rows.
  RowBatch incoming;
  if (st.select) {
    const int dop = EffectiveDop(*session);
    session->exec_ctx().pool = dop > 1 ? exec_pool_.get() : nullptr;
    session->exec_ctx().dop = dop;
    // INSERT ... SELECT runs a full query pipeline, so it is governed like
    // one (cancellable, deadline-checked, budget-charged).
    std::shared_ptr<QueryContext> qc = MakeQueryContext(session);
    CurrentQueryScope unpublish{session};
    BindOptions bopts;
    bopts.scan = MakeScanOptions();
    bopts.scan.exec_pool = dop > 1 ? exec_pool_.get() : nullptr;
    bopts.scan.dop = dop;
    bopts.scan.shared_scan = session->shared_scan_enabled();
    Binder binder(&catalog_, session, bopts);
    DASHDB_ASSIGN_OR_RETURN(OperatorPtr root, binder.BindSelect(*st.select));
    AttachQueryContext(root.get(), qc.get());
    if (static_cast<int>(root->output().size()) !=
        static_cast<int>(targets.size())) {
      return Status::SemanticError("INSERT column count mismatch");
    }
    DASHDB_ASSIGN_OR_RETURN(incoming, DrainOperator(root.get()));
  } else {
    Binder binder(&catalog_, session);
    for (size_t c = 0; c < targets.size(); ++c) {
      incoming.columns.emplace_back(ts.column(targets[c]).type);
    }
    for (const auto& row : st.insert_rows) {
      if (row.size() != targets.size()) {
        return Status::SemanticError("INSERT row width mismatch");
      }
      for (size_t c = 0; c < row.size(); ++c) {
        DASHDB_ASSIGN_OR_RETURN(ExprPtr bound, binder.BindScalar(row[c], {}));
        RowBatch empty;
        DASHDB_ASSIGN_OR_RETURN(
            Value v, bound->EvaluateRow(empty, 0, session->exec_ctx()));
        DASHDB_ASSIGN_OR_RETURN(v, CoerceForColumn(v, ts.column(targets[c])));
        incoming.columns[c].AppendValue(v);
      }
    }
  }
  // Assemble full-width batch.
  RowBatch full;
  for (int c = 0; c < ts.num_columns(); ++c) {
    full.columns.emplace_back(ts.column(c).type);
  }
  const size_t n = incoming.num_rows();
  for (size_t i = 0; i < n; ++i) {
    std::vector<bool> set(ts.num_columns(), false);
    for (size_t k = 0; k < targets.size(); ++k) {
      Value v = incoming.columns[k].GetValue(i);
      DASHDB_ASSIGN_OR_RETURN(v, CoerceForColumn(v, ts.column(targets[k])));
      full.columns[targets[k]].AppendValue(v);
      set[targets[k]] = true;
    }
    for (int c = 0; c < ts.num_columns(); ++c) {
      if (!set[c]) {
        if (!ts.column(c).nullable) {
          return Status::SemanticError("column " + ts.column(c).name +
                                       " requires a value");
        }
        full.columns[c].AppendNull();
      }
    }
  }
  auto col = std::dynamic_pointer_cast<ColumnTable>(entry->storage);
  auto row = std::dynamic_pointer_cast<RowTable>(entry->storage);
  if (col) {
    DASHDB_RETURN_IF_ERROR(col->Append(full));
  } else if (row) {
    DASHDB_RETURN_IF_ERROR(row->Append(full));
  } else {
    return Status::SemanticError("INSERT target is not a base table");
  }
  BumpDataVersion();
  QueryResult r;
  r.affected_rows = static_cast<int64_t>(n);
  r.message = "INSERTED " + std::to_string(n);
  return r;
}

Result<Engine::MatchedRows> Engine::CollectMatches(Session* session,
                                                   const CatalogEntry& entry,
                                                   const ast::ExprP& where) {
  const TableSchema& ts = entry.schema;
  BindOptions bopts;
  bopts.scan = MakeScanOptions();
  Binder binder(&catalog_, session, bopts);
  DASHDB_ASSIGN_OR_RETURN(TablePredicates preds,
                          binder.SplitTablePredicates(ts, where));
  MatchedRows out;
  for (int c = 0; c < ts.num_columns(); ++c) {
    out.rows.columns.emplace_back(ts.column(c).type);
  }
  std::vector<int> proj;
  for (int c = 0; c < ts.num_columns(); ++c) proj.push_back(c);

  auto handle = [&](RowBatch& batch,
                    const std::vector<uint64_t>& ids) -> Status {
    std::vector<uint32_t> sel;
    if (preds.residual) {
      DASHDB_ASSIGN_OR_RETURN(
          sel, EvalFilter(*preds.residual, batch, session->exec_ctx()));
    } else {
      sel.resize(batch.num_rows());
      for (size_t i = 0; i < sel.size(); ++i) sel[i] = static_cast<uint32_t>(i);
    }
    for (uint32_t i : sel) {
      out.ids.push_back(ids[i]);
      for (size_t c = 0; c < batch.columns.size(); ++c) {
        out.rows.columns[c].AppendFrom(batch.columns[c], i);
      }
    }
    return Status::OK();
  };

  auto col = std::dynamic_pointer_cast<ColumnTable>(entry.storage);
  auto row = std::dynamic_pointer_cast<RowTable>(entry.storage);
  Status inner_status;
  if (col) {
    DASHDB_RETURN_IF_ERROR(col->Scan(
        preds.pushdown, proj, bopts.scan,
        [&](RowBatch& b, const std::vector<uint64_t>& ids) {
          if (inner_status.ok()) inner_status = handle(b, ids);
        }));
  } else if (row) {
    DASHDB_RETURN_IF_ERROR(row->Scan(
        preds.pushdown, proj,
        [&](RowBatch& b, const std::vector<uint64_t>& ids) {
          if (inner_status.ok()) inner_status = handle(b, ids);
        }));
  } else {
    return Status::SemanticError("DML target is not a base table");
  }
  DASHDB_RETURN_IF_ERROR(inner_status);
  return out;
}

Result<QueryResult> Engine::ExecUpdate(Session* session,
                                       const ast::Statement& st) {
  std::string schema =
      st.target_schema.empty() ? session->default_schema() : st.target_schema;
  DASHDB_ASSIGN_OR_RETURN(auto entry,
                          catalog_.Lookup(schema, st.target_table));
  const TableSchema& ts = entry->schema;
  DASHDB_ASSIGN_OR_RETURN(MatchedRows matched,
                          CollectMatches(session, *entry, st.where));
  // Bind SET expressions over the table scope.
  Binder binder(&catalog_, session);
  std::vector<OutputCol> scope;
  for (int c = 0; c < ts.num_columns(); ++c) {
    scope.push_back({ts.column(c).name, ts.column(c).type});
  }
  std::vector<std::pair<int, ExprPtr>> sets;
  for (const auto& [name, expr] : st.set_clauses) {
    int idx = ts.FindColumn(name);
    if (idx < 0) return Status::SemanticError("unknown column " + name);
    DASHDB_ASSIGN_OR_RETURN(ExprPtr bound, binder.BindScalar(expr, scope));
    sets.emplace_back(idx, std::move(bound));
  }
  auto col = std::dynamic_pointer_cast<ColumnTable>(entry->storage);
  auto row = std::dynamic_pointer_cast<RowTable>(entry->storage);
  const size_t n = matched.ids.size();
  if (n == 0) {
    QueryResult r;
    r.message = "UPDATED 0";
    return r;
  }
  // Compute new rows.
  RowBatch updated = matched.rows;
  for (const auto& [idx, expr] : sets) {
    ColumnVector nv(ts.column(idx).type);
    for (size_t i = 0; i < n; ++i) {
      DASHDB_ASSIGN_OR_RETURN(Value v,
                              expr->EvaluateRow(matched.rows, i,
                                                session->exec_ctx()));
      DASHDB_ASSIGN_OR_RETURN(v, CoerceForColumn(v, ts.column(idx)));
      nv.AppendValue(v);
    }
    updated.columns[idx] = std::move(nv);
  }
  if (col) {
    // Column store: UPDATE = delete + re-insert (paper engines do the same;
    // the row-store baseline updates in place below).
    DASHDB_RETURN_IF_ERROR(col->DeleteRows(matched.ids));
    DASHDB_RETURN_IF_ERROR(col->Append(updated));
  } else {
    for (size_t i = 0; i < n; ++i) {
      DASHDB_RETURN_IF_ERROR(row->UpdateRow(matched.ids[i], updated.Row(i)));
    }
  }
  BumpDataVersion();
  QueryResult r;
  r.affected_rows = static_cast<int64_t>(n);
  r.message = "UPDATED " + std::to_string(n);
  return r;
}

Result<QueryResult> Engine::ExecDelete(Session* session,
                                       const ast::Statement& st) {
  std::string schema =
      st.target_schema.empty() ? session->default_schema() : st.target_schema;
  DASHDB_ASSIGN_OR_RETURN(auto entry,
                          catalog_.Lookup(schema, st.target_table));
  DASHDB_ASSIGN_OR_RETURN(MatchedRows matched,
                          CollectMatches(session, *entry, st.where));
  auto col = std::dynamic_pointer_cast<ColumnTable>(entry->storage);
  auto row = std::dynamic_pointer_cast<RowTable>(entry->storage);
  if (col) {
    DASHDB_RETURN_IF_ERROR(col->DeleteRows(matched.ids));
  } else {
    DASHDB_RETURN_IF_ERROR(row->DeleteRows(matched.ids));
  }
  BumpDataVersion();
  QueryResult r;
  r.affected_rows = static_cast<int64_t>(matched.ids.size());
  r.message = "DELETED " + std::to_string(matched.ids.size());
  return r;
}

Result<QueryResult> Engine::ExecCreateTable(Session* session,
                                            const ast::Statement& st) {
  std::string schema =
      st.target_schema.empty() ? session->default_schema() : st.target_schema;
  if (st.temporary) schema = "SESSION";
  if (!catalog_.HasSchema(schema)) {
    DASHDB_RETURN_IF_ERROR(catalog_.CreateSchema(schema));
  }
  std::vector<ColumnDef> cols;
  for (const auto& cd : st.columns) {
    ColumnDef col;
    col.name = NormalizeIdent(cd.name);
    DASHDB_ASSIGN_OR_RETURN(col.type, TypeFromName(cd.type_name));
    col.nullable = !cd.not_null;
    col.unique = cd.unique;
    cols.push_back(std::move(col));
  }
  TableOrganization org = st.organize_by_row
                              ? TableOrganization::kRow
                              : config_.default_organization;
  TableSchema ts(schema, NormalizeIdent(st.target_table), cols, org);
  ts.set_temporary(st.temporary);
  if (!st.distribute_by.empty()) {
    int idx = ts.FindColumn(st.distribute_by);
    if (idx < 0) {
      return Status::SemanticError("DISTRIBUTE BY column not found");
    }
    ts.set_distribution_key(idx);
  }
  if (org == TableOrganization::kRow) {
    DASHDB_ASSIGN_OR_RETURN(auto table, CreateRowTable(ts));
    (void)table;
  } else {
    DASHDB_ASSIGN_OR_RETURN(auto table, CreateColumnTable(ts));
    (void)table;
  }
  (void)session;
  QueryResult r;
  r.message = "TABLE CREATED";
  return r;
}

Result<QueryResult> Engine::ExecSet(Session* session,
                                    const ast::Statement& st) {
  QueryResult r;
  std::string name = NormalizeIdent(st.set_name);
  if (name == "SQL_DIALECT" || name == "SQL_COMPAT" || name == "DIALECT") {
    Dialect d;
    if (!DialectFromName(NormalizeIdent(st.set_value), &d)) {
      return Status::InvalidArgument("unknown dialect " + st.set_value);
    }
    session->set_dialect(d);
    r.message = "DIALECT " + std::string(DialectName(d));
    return r;
  }
  if (name == "SCHEMA" || name == "CURRENT_SCHEMA") {
    session->set_default_schema(NormalizeIdent(st.set_value));
    r.message = "SCHEMA " + session->default_schema();
    return r;
  }
  if (name == "DOP" || name == "QUERY_PARALLELISM" ||
      name == "MAX_PARALLELISM" || name == "DEGREE") {
    // DB2-style CURRENT DEGREE: an integer caps the session's intra-query
    // parallelism; ANY (or DEFAULT) restores the engine-configured degree.
    std::string v = NormalizeIdent(st.set_value);
    int dop = 0;
    if (v != "ANY" && v != "DEFAULT") {
      try {
        dop = std::stoi(v);
      } catch (...) {
        return Status::InvalidArgument("invalid degree " + st.set_value);
      }
      if (dop < 1) {
        return Status::InvalidArgument("degree must be >= 1 or ANY");
      }
    }
    session->set_max_parallelism(dop);
    r.message = "DOP " + std::to_string(EffectiveDop(*session));
    return r;
  }
  if (name == "OPTIMIZER" || name == "JOIN_ORDER") {
    std::string v = NormalizeIdent(st.set_value);
    if (v == "COST") {
      session->set_optimizer_mode(OptimizerMode::kCost);
    } else if (v == "HEURISTIC" || v == "SYNTACTIC") {
      session->set_optimizer_mode(OptimizerMode::kHeuristic);
    } else {
      return Status::InvalidArgument("OPTIMIZER must be COST or HEURISTIC");
    }
    r.message = "OPTIMIZER " + v;
    return r;
  }
  if (name == "ADAPTIVE") {
    std::string v = NormalizeIdent(st.set_value);
    if (v == "ON" || v == "TRUE" || v == "1") {
      session->set_adaptive_enabled(true);
    } else if (v == "OFF" || v == "FALSE" || v == "0") {
      session->set_adaptive_enabled(false);
    } else {
      return Status::InvalidArgument("ADAPTIVE must be ON or OFF");
    }
    r.message = std::string("ADAPTIVE ") +
                (session->adaptive_enabled() ? "ON" : "OFF");
    return r;
  }
  if (name == "SHARED_SCAN") {
    std::string v = NormalizeIdent(st.set_value);
    if (v == "ON" || v == "TRUE" || v == "1") {
      session->set_shared_scan_enabled(true);
    } else if (v == "OFF" || v == "FALSE" || v == "0") {
      session->set_shared_scan_enabled(false);
    } else {
      return Status::InvalidArgument("SHARED_SCAN must be ON or OFF");
    }
    r.message = std::string("SHARED_SCAN ") +
                (session->shared_scan_enabled() ? "ON" : "OFF");
    return r;
  }
  if (name == "RESULT_CACHE") {
    std::string v = NormalizeIdent(st.set_value);
    if (v == "ON" || v == "TRUE" || v == "1") {
      session->set_result_cache_enabled(true);
    } else if (v == "OFF" || v == "FALSE" || v == "0") {
      session->set_result_cache_enabled(false);
    } else {
      return Status::InvalidArgument("RESULT_CACHE must be ON or OFF");
    }
    r.message = std::string("RESULT_CACHE ") +
                (session->result_cache_enabled() ? "ON" : "OFF");
    return r;
  }
  if (name == "SORT") {
    std::string v = NormalizeIdent(st.set_value);
    if (v == "SERIAL") {
      session->set_serial_sort(true);
    } else if (v == "PARALLEL" || v == "DEFAULT") {
      session->set_serial_sort(false);
    } else {
      return Status::InvalidArgument("SORT must be SERIAL or PARALLEL");
    }
    r.message = std::string("SORT ") +
                (session->serial_sort() ? "SERIAL" : "PARALLEL");
    return r;
  }
  if (name == "TOPN") {
    std::string v = NormalizeIdent(st.set_value);
    if (v == "ON" || v == "TRUE" || v == "1") {
      session->set_topn_enabled(true);
    } else if (v == "OFF" || v == "FALSE" || v == "0") {
      session->set_topn_enabled(false);
    } else {
      return Status::InvalidArgument("TOPN must be ON or OFF");
    }
    r.message =
        std::string("TOPN ") + (session->topn_enabled() ? "ON" : "OFF");
    return r;
  }
  if (name == "STATEMENT_TIMEOUT" || name == "QUERY_TIMEOUT") {
    // Seconds (fractional allowed); 0 / NONE / DEFAULT disarms.
    std::string v = NormalizeIdent(st.set_value);
    double seconds = 0;
    if (v != "NONE" && v != "DEFAULT") {
      try {
        seconds = std::stod(v);
      } catch (...) {
        return Status::InvalidArgument("invalid timeout " + st.set_value);
      }
      if (seconds < 0) {
        return Status::InvalidArgument("timeout must be >= 0");
      }
    }
    session->set_statement_timeout_seconds(seconds);
    r.message = "STATEMENT_TIMEOUT " + std::to_string(seconds);
    return r;
  }
  if (name == "MEM_BUDGET" || name == "QUERY_MEM_LIMIT") {
    // Bytes; 0 / NONE / DEFAULT means unlimited.
    std::string v = NormalizeIdent(st.set_value);
    int64_t bytes = 0;
    if (v != "NONE" && v != "DEFAULT") {
      try {
        bytes = std::stoll(v);
      } catch (...) {
        return Status::InvalidArgument("invalid budget " + st.set_value);
      }
      if (bytes < 0) {
        return Status::InvalidArgument("budget must be >= 0");
      }
    }
    session->set_mem_budget_bytes(bytes);
    r.message = "MEM_BUDGET " + std::to_string(bytes);
    return r;
  }
  if (name == "ADMISSION") {
    std::string v = NormalizeIdent(st.set_value);
    if (v == "ON" || v == "TRUE" || v == "1") {
      session->set_admission_enabled(true);
    } else if (v == "OFF" || v == "FALSE" || v == "0") {
      session->set_admission_enabled(false);
    } else {
      return Status::InvalidArgument("ADMISSION must be ON or OFF");
    }
    r.message = std::string("ADMISSION ") +
                (session->admission_enabled() ? "ON" : "OFF");
    return r;
  }
  // Unknown session variables are accepted and ignored (compatibility).
  r.message = "SET " + name;
  return r;
}

}  // namespace dashdb
