// Shared plan cache for the serving layer (DESIGN.md "Serving layer").
//
// Keyed by (normalized SQL text, dialect): normalization collapses
// whitespace/comments and upper-cases everything outside quoted strings and
// quoted identifiers, so formatting differences share one compiled entry
// while literal differences — which change semantics — key separate
// entries (parameterize with '?' + PREPARE/EXECUTE to share a plan across
// values). The dialect is part of the key because binding is
// dialect-sensitive (function resolution, paper II.C.2), so the same text
// compiled under ORACLE and NZPLSQL must never share an entry.
//
// Entries carry the catalog DDL version and the engine statistics version
// they were compiled against. A lookup that finds a stale entry (either
// version moved) treats it as a miss and evicts — DROP/CREATE TABLE and
// RUNSTATS retire every affected plan without a registration protocol.
// Capacity is bounded with LRU eviction.
//
// Thread-safe: one mutex, hit path does one map find + list splice. The
// cached payload is a shared_ptr to the *immutable* parsed statement, so
// many sessions bind the same AST concurrently without copies.
//
// Feeds server.plan_cache_{hits,misses,evictions} and the
// server.plan_cache_entries gauge.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/dialect.h"
#include "sql/ast.h"

namespace dashdb {

/// Whitespace/comment-collapsed, case-normalized (outside quotes) SQL text.
/// Exposed for tests and for PREPARE, which keys on the same form.
std::string NormalizeSql(const std::string& sql);

class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 256) : capacity_(capacity) {}

  /// Returns the cached statement for (sql, dialect) when present AND
  /// compiled against the given catalog/stats versions; null otherwise.
  /// Stale entries are evicted on the way out. Counts one hit or miss.
  ast::StatementP Lookup(const std::string& sql, Dialect dialect,
                         uint64_t catalog_version, uint64_t stats_version);

  /// Inserts (or replaces) the entry for (sql, dialect), stamped with the
  /// versions it was compiled against. Evicts LRU past capacity.
  void Insert(const std::string& sql, Dialect dialect,
              uint64_t catalog_version, uint64_t stats_version,
              ast::StatementP stmt);

  /// Drops every entry (engine shutdown / tests).
  void Clear();

  size_t size() const;
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  struct Entry {
    ast::StatementP stmt;
    uint64_t catalog_version = 0;
    uint64_t stats_version = 0;
    std::list<std::string>::iterator lru_pos;  ///< position in lru_
  };

  static std::string Key(const std::string& sql, Dialect dialect);
  void EvictLocked(const std::string& key);

  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  ///< front = most recently used
};

}  // namespace dashdb
