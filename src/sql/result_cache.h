// Versioned result cache for the serving layer (DESIGN.md "Shared work
// under concurrency").
//
// Concurrent analytics traffic repeats itself: dashboards and report
// fan-out re-issue byte-identical SELECTs against data that changes far
// less often than it is read. The engine caches whole QueryResults, keyed
// exactly like the plan cache — dialect-prefixed NormalizeSql — plus the
// session's default schema (the same text resolves different tables under
// different schemas, so unlike the parse-only plan cache the *result* key
// must include it).
//
// Entries are stamped with the catalog DDL version, the statistics epoch,
// and the engine's data version (bumped by every INSERT/UPDATE/DELETE/
// TRUNCATE/LOAD). A lookup that finds any stamp moved treats the entry as
// stale and evicts — DDL, DML, and RUNSTATS all invalidate by version
// bump, with no registration protocol. The cache never serves a result
// that predates a write.
//
// Capacity is bounded in BYTES with LRU eviction; the payload is a
// shared_ptr to an immutable QueryResult, so a hit is one map find + list
// splice + shared_ptr copy, and the serving layer streams RESULT_BATCH
// frames straight out of the cached batch.
//
// Feeds server.result_cache_{hits,misses,evictions} counters and the
// server.result_cache_bytes / _entries gauges.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/dialect.h"

namespace dashdb {

struct QueryResult;

class ResultCache {
 public:
  explicit ResultCache(size_t capacity_bytes = size_t{64} << 20)
      : capacity_bytes_(capacity_bytes) {}

  /// Version stamps one entry was produced under; a lookup under any newer
  /// stamp evicts the entry on sight.
  struct Versions {
    uint64_t catalog = 0;
    uint64_t stats = 0;
    uint64_t data = 0;
    bool operator==(const Versions& o) const {
      return catalog == o.catalog && stats == o.stats && data == o.data;
    }
  };

  /// Returns the cached result for (sql, dialect, schema) when present AND
  /// produced under exactly `v`; null otherwise. Stale entries are evicted
  /// on the way out. Counts one hit or miss.
  std::shared_ptr<const QueryResult> Lookup(const std::string& sql,
                                            Dialect dialect,
                                            const std::string& schema,
                                            const Versions& v);

  /// Inserts (or replaces) the entry, stamped with the versions the result
  /// was produced under. `bytes` is the result's memory footprint (the
  /// caller computes it once for budget charging). Oversized results
  /// (> capacity) are rejected; otherwise LRU entries evict until it fits.
  void Insert(const std::string& sql, Dialect dialect,
              const std::string& schema, const Versions& v,
              std::shared_ptr<const QueryResult> result, size_t bytes);

  /// Drops every entry (tests / engine shutdown).
  void Clear();

  size_t size() const;
  size_t bytes() const;
  size_t capacity_bytes() const { return capacity_bytes_; }
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;

 private:
  struct Entry {
    std::shared_ptr<const QueryResult> result;
    Versions versions;
    size_t bytes = 0;
    std::list<std::string>::iterator lru_pos;
  };

  static std::string Key(const std::string& sql, Dialect dialect,
                         const std::string& schema);
  void EvictLocked(const std::string& key);

  mutable std::mutex mu_;
  const size_t capacity_bytes_;
  size_t bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  ///< front = most recently used
};

}  // namespace dashdb
