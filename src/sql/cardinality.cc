#include "sql/cardinality.h"

#include <algorithm>
#include <cmath>

#include "common/metrics.h"

namespace dashdb {

namespace {

constexpr double kMinSelectivity = 1e-7;

double Clamp01(double s) {
  return std::max(kMinSelectivity, std::min(1.0, s));
}

/// NDV with fallbacks: dictionary count, else the integer domain width,
/// else the non-null row count (every row distinct).
double NdvOf(const ColumnStatsView& cs) {
  if (cs.distinct > 0) return static_cast<double>(cs.distinct);
  if (cs.has_int_range) {
    double width =
        static_cast<double>(cs.int_max) - static_cast<double>(cs.int_min) + 1;
    double non_null =
        static_cast<double>(cs.rows) - static_cast<double>(cs.null_count);
    return std::max(1.0, std::min(width, std::max(1.0, non_null)));
  }
  return std::max(
      1.0, static_cast<double>(cs.rows) - static_cast<double>(cs.null_count));
}

}  // namespace

double RelationEstimate::KeyNdv(int table_col) const {
  if (!has_stats || table_col < 0 ||
      table_col >= static_cast<int>(cols.size())) {
    return 0;
  }
  return std::min(NdvOf(cols[table_col]), std::max(1.0, rows));
}

double CardinalityEstimator::PredicateSelectivity(const ColumnStatsView& cs,
                                                 const ColumnPredicate& p) {
  const double rows = static_cast<double>(cs.rows);
  if (rows <= 0) return 1.0;  // empty table: rows estimate is already 0
  const double non_null_frac =
      std::max(0.0, (rows - static_cast<double>(cs.null_count)) / rows);
  const double ndv = NdvOf(cs);

  // Integer-domain range against the synopsis [min, max] under uniformity.
  if (p.int_range.lo || p.int_range.hi) {
    const bool eq = p.int_range.lo && p.int_range.hi &&
                    *p.int_range.lo == *p.int_range.hi &&
                    p.int_range.lo_incl && p.int_range.hi_incl;
    if (eq) {
      if (cs.has_int_range && (*p.int_range.lo < cs.int_min ||
                               *p.int_range.lo > cs.int_max)) {
        return kMinSelectivity;
      }
      return Clamp01(non_null_frac / ndv);
    }
    if (!cs.has_int_range) return Clamp01(non_null_frac / 3.0);
    double dom_lo = static_cast<double>(cs.int_min);
    double dom_hi = static_cast<double>(cs.int_max);
    double lo = p.int_range.lo
                    ? static_cast<double>(*p.int_range.lo) +
                          (p.int_range.lo_incl ? 0.0 : 1.0)
                    : dom_lo;
    double hi = p.int_range.hi
                    ? static_cast<double>(*p.int_range.hi) -
                          (p.int_range.hi_incl ? 0.0 : 1.0)
                    : dom_hi;
    lo = std::max(lo, dom_lo);
    hi = std::min(hi, dom_hi);
    if (hi < lo) return kMinSelectivity;
    const double width = dom_hi - dom_lo + 1;
    return Clamp01(non_null_frac * ((hi - lo + 1) / width));
  }

  // VARCHAR: equality via NDV; open ranges have no usable interpolation
  // over strings, so they take the residual default shape.
  if (p.str_range.lo || p.str_range.hi) {
    const bool eq = p.str_range.lo && p.str_range.hi &&
                    *p.str_range.lo == *p.str_range.hi &&
                    p.str_range.lo_incl && p.str_range.hi_incl;
    if (eq) {
      if (cs.has_str_range &&
          (*p.str_range.lo < cs.str_min || *p.str_range.lo > cs.str_max)) {
        return kMinSelectivity;
      }
      return Clamp01(non_null_frac / ndv);
    }
    // Prefix ranges (LIKE 'a%') and inequalities: assume a third survives.
    double s = non_null_frac / 3.0;
    if (cs.has_str_range && p.str_range.lo && p.str_range.hi) {
      if (*p.str_range.hi < cs.str_min || *p.str_range.lo > cs.str_max) {
        return kMinSelectivity;
      }
    }
    return Clamp01(s);
  }

  // DOUBLE ranges: no synopsis today; equality is rare and sharp.
  if (p.dlo || p.dhi) {
    const bool eq = p.dlo && p.dhi && *p.dlo == *p.dhi;
    return Clamp01(non_null_frac * (eq ? 1.0 / ndv : 1.0 / 3.0));
  }
  return 1.0;
}

RelationEstimate CardinalityEstimator::EstimateScan(
    const ColumnTable& table, const std::vector<ColumnPredicate>& preds) {
  RelationEstimate est;
  est.has_stats = true;
  est.base_rows = static_cast<double>(table.live_row_count());
  est.cols.reserve(table.schema().num_columns());
  for (int c = 0; c < table.schema().num_columns(); ++c) {
    est.cols.push_back(table.ColumnStats(c));
  }
  double sel = 1.0;
  for (const auto& p : preds) {
    if (p.column < 0 || p.column >= static_cast<int>(est.cols.size())) {
      continue;
    }
    sel *= PredicateSelectivity(est.cols[p.column], p);
  }
  est.rows = est.base_rows * sel;
  return est;
}

double CardinalityEstimator::JoinRows(double left_rows, double right_rows,
                                      double left_ndv, double right_ndv) {
  left_rows = std::max(0.0, left_rows);
  right_rows = std::max(0.0, right_rows);
  const double ndv = std::max(left_ndv, right_ndv);
  if (ndv >= 1.0) return left_rows * right_rows / ndv;
  return std::max(left_rows, right_rows);
}

double CardinalityEstimator::ResidualConjunctSelectivity() {
  Histogram* h = MetricRegistry::Global().GetHistogram(
      "exec.filter_selectivity", {1, 5, 10, 25, 50, 75, 90, 100});
  if (h == nullptr || h->count() == 0) return 1.0 / 3.0;
  double mean_pct =
      static_cast<double>(h->sum()) / static_cast<double>(h->count());
  return std::max(0.05, std::min(0.95, mean_pct / 100.0));
}

}  // namespace dashdb
