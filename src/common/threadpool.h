// Fixed-size worker pool. Used for intra-query parallelism (strides
// scheduled across cores, paper II.B.6), per-node MPP workers, and the
// sparklite executors.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace dashdb {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn`; returns a future for completion/result.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lk(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Work is chunked so n can be large (e.g. one index per stride).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace dashdb
