// Fixed-size worker pool. Used for intra-query parallelism (strides
// scheduled across cores, paper II.B.6), per-node MPP workers, and the
// sparklite executors.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace dashdb {

class QueryContext;

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn`; returns a future for completion/result.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lk(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Work is chunked so n can be large (e.g. one index per stride).
  ///
  /// The calling thread participates in draining chunks, so this is safe to
  /// invoke from a pool worker (nested parallelism — e.g. an MPP node task
  /// fanning out a morsel scan): even with every worker blocked inside a
  /// ParallelFor, each call completes on its caller's thread. Helper tasks
  /// that start after all chunks are claimed return without touching `fn`.
  ///
  /// `max_workers` caps the number of threads cooperating on this call
  /// (caller included); 0 means caller + all pool workers. The first
  /// exception thrown by `fn` on any thread is rethrown here after every
  /// in-flight chunk has settled; remaining chunks are abandoned.
  ///
  /// `qctx`, when set, makes the loop governable: every thread probes
  /// QueryContext::CheckAlive() before claiming its next chunk (and the
  /// degenerate inline path probes per item), so a cancel/timeout stops
  /// the loop within one chunk of work per cooperating thread. The loop
  /// returns normally with the tail abandoned — callers observe the
  /// cancellation through their own governor check, which keeps the
  /// exception path reserved for real faults.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   int max_workers = 0, QueryContext* qctx = nullptr);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace dashdb
