#include "common/sort_key.h"

#include <cmath>
#include <limits>

namespace dashdb {

namespace {

inline void AppendBigEndian(uint64_t u, std::string* out) {
  char buf[8];
  for (int i = 7; i >= 0; --i) {
    buf[i] = static_cast<char>(u & 0xFF);
    u >>= 8;
  }
  out->append(buf, 8);
}

inline uint64_t DoubleBits(double d) {
  // Canonicalize so comparator-equal doubles encode identically: -0.0 and
  // +0.0 must collide, and every NaN payload maps to one quiet NaN (which
  // then sorts above +inf and below NULL).
  if (d == 0.0) d = 0.0;
  if (std::isnan(d)) d = std::numeric_limits<double>::quiet_NaN();
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d), "IEEE double expected");
  std::memcpy(&bits, &d, sizeof(bits));
  // Negative doubles: complement everything (reverses their order).
  // Non-negative: set the sign bit so they sort above all negatives.
  return (bits >> 63) ? ~bits : (bits | 0x8000000000000000ULL);
}

}  // namespace

void AppendNormalizedCell(const ColumnVector& cv, size_t row, bool desc,
                          std::string* out) {
  const size_t start = out->size();
  if (cv.IsNull(row)) {
    out->push_back('\x01');
  } else {
    out->push_back('\x00');
    switch (cv.type()) {
      case TypeId::kDouble:
        AppendBigEndian(DoubleBits(cv.GetDouble(row)), out);
        break;
      case TypeId::kVarchar: {
        const std::string& s = cv.GetString(row);
        for (char ch : s) {
          if (ch == '\0') {
            out->push_back('\x00');
            out->push_back('\xFF');
          } else {
            out->push_back(ch);
          }
        }
        out->push_back('\x00');
        out->push_back('\x00');
        break;
      }
      default:  // all integer-backed types share the int64 payload
        AppendBigEndian(static_cast<uint64_t>(cv.GetInt(row)) ^
                            0x8000000000000000ULL,
                        out);
        break;
    }
  }
  if (desc) {
    for (size_t i = start; i < out->size(); ++i) {
      (*out)[i] = static_cast<char>(~static_cast<unsigned char>((*out)[i]));
    }
  }
}

void NormalizedKeyColumn::Build(
    const std::vector<const ColumnVector*>& key_cols,
    const std::vector<bool>& desc, size_t begin, size_t end) {
  bytes_.clear();
  offsets_.clear();
  const size_t n = end - begin;
  offsets_.reserve(n + 1);
  // Fixed-width keys dominate; reserve as if every part were int/double.
  bytes_.reserve(n * (key_cols.size() * 9 + 1));
  offsets_.push_back(0);
  for (size_t r = begin; r < end; ++r) {
    for (size_t k = 0; k < key_cols.size(); ++k) {
      AppendNormalizedCell(*key_cols[k], r, desc[k], &bytes_);
    }
    offsets_.push_back(bytes_.size());
  }
}

}  // namespace dashdb
