// ColumnVector / RowBatch: the typed columnar batches that flow between
// storage, the vectorized executor, MPP exchange, and sparklite.
//
// All integer-backed SQL types (BOOLEAN/INT/DATE/TIMESTAMP/DECIMAL) share
// the int64 payload; DOUBLE and VARCHAR have their own payloads.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bitutil.h"
#include "common/types.h"
#include "common/value.h"

namespace dashdb {

/// Dictionary codes attached to a decoded column (defined in
/// compression/dict_codes.h; common/ cannot depend on compression/, so the
/// carrier is opaque here). Lets mid-query predicates run on codes instead
/// of decoded values (paper II.B.2 "operate on compressed").
struct DictCodes;

/// A typed, nullable column of values.
class ColumnVector {
 public:
  ColumnVector() : type_(TypeId::kInt64) {}
  explicit ColumnVector(TypeId t) : type_(t) {}

  TypeId type() const { return type_; }
  void set_type(TypeId t) { type_ = t; }

  size_t size() const { return size_; }
  bool has_nulls() const { return null_count_ > 0; }
  size_t null_count() const { return null_count_; }

  bool IsNull(size_t i) const {
    return null_count_ > 0 && nulls_.size() > i && nulls_.Get(i);
  }

  int64_t GetInt(size_t i) const { return ints_[i]; }
  double GetDouble(size_t i) const {
    return type_ == TypeId::kDouble ? doubles_[i]
                                    : static_cast<double>(ints_[i]);
  }
  const std::string& GetString(size_t i) const { return strings_[i]; }

  void Reserve(size_t n) {
    if (type_ == TypeId::kDouble) {
      doubles_.reserve(n);
    } else if (type_ == TypeId::kVarchar) {
      strings_.reserve(n);
    } else {
      ints_.reserve(n);
    }
    // The null bitmap grows lazily with the payload; reserve its words too
    // so a null mid-append doesn't trigger a separate reallocation chain.
    nulls_.Reserve(n);
  }

  void AppendInt(int64_t v) {
    assert(type_ != TypeId::kDouble && type_ != TypeId::kVarchar);
    ints_.push_back(v);
    BumpSize(false);
  }
  void AppendDouble(double v) {
    assert(type_ == TypeId::kDouble);
    doubles_.push_back(v);
    BumpSize(false);
  }
  void AppendString(std::string v) {
    assert(type_ == TypeId::kVarchar);
    strings_.push_back(std::move(v));
    BumpSize(false);
  }
  void AppendNull() {
    if (type_ == TypeId::kDouble) {
      doubles_.push_back(0);
    } else if (type_ == TypeId::kVarchar) {
      strings_.emplace_back();
    } else {
      ints_.push_back(0);
    }
    BumpSize(true);
  }

  /// Appends a Value (must already match this vector's type or be NULL).
  void AppendValue(const Value& v) {
    if (v.is_null()) {
      AppendNull();
    } else if (type_ == TypeId::kDouble) {
      AppendDouble(v.AsDouble());
    } else if (type_ == TypeId::kVarchar) {
      AppendString(v.AsString());
    } else {
      AppendInt(v.AsInt());
    }
  }

  Value GetValue(size_t i) const {
    if (IsNull(i)) return Value::Null(type_);
    switch (type_) {
      case TypeId::kBoolean: return Value::Boolean(ints_[i] != 0);
      case TypeId::kInt32: return Value::Int32(static_cast<int32_t>(ints_[i]));
      case TypeId::kInt64: return Value::Int64(ints_[i]);
      case TypeId::kDouble: return Value::Double(doubles_[i]);
      case TypeId::kVarchar: return Value::String(strings_[i]);
      case TypeId::kDate: return Value::Date(static_cast<int32_t>(ints_[i]));
      case TypeId::kTimestamp: return Value::Timestamp(ints_[i]);
      case TypeId::kDecimal: return Value::Decimal(ints_[i]);
    }
    return Value::Null(type_);
  }

  /// Appends row i of `other` (same type).
  void AppendFrom(const ColumnVector& other, size_t i) {
    if (other.IsNull(i)) {
      AppendNull();
    } else if (type_ == TypeId::kDouble) {
      AppendDouble(other.doubles_[i]);
    } else if (type_ == TypeId::kVarchar) {
      AppendString(other.strings_[i]);
    } else {
      AppendInt(other.ints_[i]);
    }
  }

  /// Appends rows sel[0..k) of `src` (same type) — the selection-vector
  /// compaction primitive. Attached dictionary codes never survive a
  /// gather (row positions change).
  void Gather(const ColumnVector& src, const uint32_t* sel, size_t k) {
    assert(type_ == src.type_);
    Reserve(size_ + k);
    if (!src.has_nulls()) {
      if (type_ == TypeId::kDouble) {
        for (size_t i = 0; i < k; ++i) doubles_.push_back(src.doubles_[sel[i]]);
      } else if (type_ == TypeId::kVarchar) {
        for (size_t i = 0; i < k; ++i) strings_.push_back(src.strings_[sel[i]]);
      } else {
        for (size_t i = 0; i < k; ++i) ints_.push_back(src.ints_[sel[i]]);
      }
      size_ += k;
      if (null_count_ > 0) nulls_.GrowTo(size_);
    } else {
      for (size_t i = 0; i < k; ++i) AppendFrom(src, sel[i]);
    }
  }

  /// Adopt a kernel-produced payload + null bitmap. `nulls` must be empty
  /// (no nulls) or sized to the payload length.
  static ColumnVector FromInts(TypeId t, std::vector<int64_t> v,
                               BitVector nulls = {}) {
    ColumnVector c(t);
    c.size_ = v.size();
    c.ints_ = std::move(v);
    c.AdoptNulls(std::move(nulls));
    return c;
  }
  static ColumnVector FromDoubles(std::vector<double> v, BitVector nulls = {}) {
    ColumnVector c(TypeId::kDouble);
    c.size_ = v.size();
    c.doubles_ = std::move(v);
    c.AdoptNulls(std::move(nulls));
    return c;
  }
  static ColumnVector FromStrings(std::vector<std::string> v,
                                  BitVector nulls = {}) {
    ColumnVector c(TypeId::kVarchar);
    c.size_ = v.size();
    c.strings_ = std::move(v);
    c.AdoptNulls(std::move(nulls));
    return c;
  }

  void Clear() {
    ints_.clear();
    doubles_.clear();
    strings_.clear();
    nulls_.Resize(0);
    size_ = 0;
    null_count_ = 0;
    dict_codes_.reset();
  }

  /// Dictionary codes aligned with this vector's rows, when the scan could
  /// keep them (full-page dictionary decode with no exceptions). Null rows
  /// alias code 0 and must be masked via the null bitmap.
  const std::shared_ptr<const DictCodes>& dict_codes() const {
    return dict_codes_;
  }
  void set_dict_codes(std::shared_ptr<const DictCodes> dc) {
    dict_codes_ = std::move(dc);
  }

  /// Direct access to the integer payload (integer-backed types only).
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }
  const BitVector& nulls() const { return nulls_; }

 private:
  void BumpSize(bool is_null) {
    if (is_null) {
      if (nulls_.size() < size_ + 1) nulls_.GrowTo(size_ + 1);
      nulls_.Set(size_);
      ++null_count_;
    } else if (null_count_ > 0 && nulls_.size() < size_ + 1) {
      nulls_.GrowTo(size_ + 1);
    }
    ++size_;
    if (dict_codes_) dict_codes_.reset();  // codes no longer row-aligned
  }

  void AdoptNulls(BitVector nulls) {
    assert(nulls.size() == 0 || nulls.size() == size_);
    null_count_ = nulls.CountSet();
    nulls_ = std::move(nulls);
  }

  TypeId type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  BitVector nulls_;
  std::shared_ptr<const DictCodes> dict_codes_;
  size_t size_ = 0;
  size_t null_count_ = 0;
};

/// A batch of rows in columnar form.
///
/// A batch may carry a *selection vector*: ascending row indices into the
/// dense columns, produced by FilterOp instead of eagerly compacting.
/// `num_rows()` stays the DENSE row count — code that has not opted into
/// selections keeps indexing columns directly and is handed compacted
/// batches by `Operator::Next()`. Selection-aware consumers use
/// `logical_rows()` / `row_at()` and defer compaction to blow-up points.
struct RowBatch {
  std::vector<ColumnVector> columns;
  std::shared_ptr<const std::vector<uint32_t>> selection;

  size_t num_rows() const { return columns.empty() ? 0 : columns[0].size(); }
  size_t num_columns() const { return columns.size(); }

  bool has_selection() const { return selection != nullptr; }
  size_t logical_rows() const {
    return selection ? selection->size() : num_rows();
  }
  /// Dense row index of logical row i.
  size_t row_at(size_t i) const { return selection ? (*selection)[i] : i; }

  /// Gathers selected rows into dense columns and drops the selection.
  void Compact() {
    if (!selection) return;
    for (auto& c : columns) {
      ColumnVector dense(c.type());
      dense.Gather(c, selection->data(), selection->size());
      c = std::move(dense);
    }
    selection.reset();
  }

  std::vector<Value> Row(size_t i) const {
    std::vector<Value> out;
    out.reserve(columns.size());
    for (const auto& c : columns) out.push_back(c.GetValue(i));
    return out;
  }
};

}  // namespace dashdb
