// Deterministic pseudo-random generators used by workload generators and
// the probabilistic buffer-pool policy. Fixed algorithms (not std::mt19937
// behind an unspecified distribution) so results are reproducible across
// platforms.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace dashdb {

/// xorshift128+ generator; fast, deterministic, seedable.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 to spread the seed into two non-zero state words.
    auto mix = [&seed]() {
      seed += 0x9E3779B97F4A7C15ull;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      return z ^ (z >> 31);
    };
    s0_ = mix();
    s1_ = mix();
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n).
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    return Next() % n;
  }

  /// Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    assert(hi >= lo);
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Standard normal via Box–Muller.
  double Gaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

 private:
  uint64_t s0_, s1_;
};

/// Zipf(s) sampler over {0, .., n-1} with precomputed CDF — models the
/// skewed value frequencies that make frequency encoding effective and the
/// hot-page access patterns the buffer pool benches need.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double s, uint64_t seed = 42)
      : rng_(seed), cdf_(n) {
    double sum = 0;
    for (uint64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  uint64_t Next() {
    double u = rng_.NextDouble();
    // Binary search for first cdf >= u.
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  Rng rng_;
  std::vector<double> cdf_;
};

}  // namespace dashdb
