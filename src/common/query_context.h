// Per-statement governor state: cooperative cancellation, a wall-clock
// deadline, and an atomically accounted memory budget (DESIGN.md "Query
// governance").
//
// One QueryContext is created per statement and plumbed into every layer
// that does unbounded work: operator Open/Next wrappers, ParallelFor morsel
// claims, MPP shard dispatch, and fluid remote-scan retry loops. Workers
// call CheckAlive() at batch/morsel granularity; the first failing check
// returns kCancelled / kTimeout and every sibling worker observes the same
// flag within one morsel of work, so threads drain instead of being killed.
//
// Memory-hungry operators reserve bytes through Charge()/Release(). The
// budget and the usage counters live on the ROOT context: child contexts
// (one per MPP shard attempt) share their root's accounting, so a query's
// footprint is bounded globally, not per shard. Exceeding the budget fails
// that one query with kResourceExhausted — the process stays healthy.
//
// Cancellation is one-way and sticky: Cancel() on a context stops that
// context and all of its descendants (checks walk the parent chain), which
// is what lets straggler speculation abort the losing duplicate attempt
// without touching the winner.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace dashdb {

class QueryContext {
 public:
  QueryContext() = default;
  /// A child context (e.g. one MPP shard attempt): has its own cancel flag
  /// but shares the root's deadline, memory budget, and check counter.
  explicit QueryContext(QueryContext* parent) : parent_(parent) {}

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  // --- cancellation & deadline -------------------------------------------

  /// Requests the query (and all descendants of this context) to stop at
  /// the next governor check. Safe from any thread, idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  /// True if this context or any ancestor was cancelled.
  bool cancelled() const {
    for (const QueryContext* c = this; c != nullptr; c = c->parent_) {
      if (c->cancelled_.load(std::memory_order_acquire)) return true;
    }
    return false;
  }

  /// Arms a deadline `seconds` from now on this context (root: the
  /// statement timeout; child: a per-attempt budget). <= 0 clears it.
  void SetTimeout(double seconds);

  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }

  /// The per-batch/per-morsel liveness probe. OK while the query may keep
  /// running; kCancelled once any owning context was cancelled; kTimeout
  /// once a deadline on the chain has passed. Also drives the
  /// CancelAfterChecks() test hook and the exec.cancelled /
  /// exec.statement_timeouts counters (each counted once per query).
  Status CheckAlive();

  // --- memory budget ------------------------------------------------------

  /// Sets the budget on the ROOT context. <= 0 means unlimited.
  void SetMemBudget(int64_t bytes);
  int64_t mem_budget() const;

  /// Reserves `bytes` against the root budget. On breach the reservation is
  /// rolled back and kResourceExhausted returned; the caller aborts its
  /// query but the engine keeps serving. `what` names the charging operator
  /// for the error message. Also the hook point for the
  /// `exec.alloc_pressure` fault (deterministic budget-exhaustion drills).
  Status Charge(int64_t bytes, const char* what);

  /// Returns a reservation. Safe to call with the exact total previously
  /// charged (operators release their peak on Close/destruction).
  void Release(int64_t bytes);

  int64_t mem_used() const;
  /// High-water mark of mem_used() over the query's lifetime.
  int64_t mem_peak() const;

  // --- deterministic cancellation for tests -------------------------------

  /// Trips Cancel() on the Nth governor check (1-based, counted at the
  /// root across all threads and child contexts). Lets tests sweep "cancel
  /// at every morsel boundary" without racing a second thread. 0 disarms.
  void CancelAfterChecks(uint64_t n) {
    Root()->cancel_after_checks_.store(n, std::memory_order_relaxed);
  }

  /// Governor checks observed so far (root-wide).
  uint64_t checks() const {
    return Root()->checks_.load(std::memory_order_relaxed);
  }

  QueryContext* parent() const { return parent_; }

 private:
  QueryContext* Root() {
    QueryContext* c = this;
    while (c->parent_ != nullptr) c = c->parent_;
    return c;
  }
  const QueryContext* Root() const {
    return const_cast<QueryContext*>(this)->Root();
  }

  QueryContext* const parent_ = nullptr;
  std::atomic<bool> cancelled_{false};
  /// steady_clock nanos-since-epoch; 0 = no deadline.
  std::atomic<int64_t> deadline_ns_{0};

  // Root-only fields (ignored on children; accessors route to Root()).
  std::atomic<int64_t> mem_budget_{0};
  std::atomic<int64_t> mem_used_{0};
  std::atomic<int64_t> mem_peak_{0};
  std::atomic<uint64_t> checks_{0};
  std::atomic<uint64_t> cancel_after_checks_{0};
  std::atomic<bool> cancel_counted_{false};
  std::atomic<bool> timeout_counted_{false};
};

}  // namespace dashdb
