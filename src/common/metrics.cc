#include "common/metrics.h"

#include <algorithm>
#include <sstream>

namespace dashdb {

Histogram::Histogram(std::vector<int64_t> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_.reserve(bounds_.size() + 1);
  for (size_t i = 0; i < bounds_.size() + 1; ++i) {
    buckets_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
}

void Histogram::Observe(int64_t v) {
  // First bound >= v; bounds are few (<=16 in practice), linear scan beats
  // branch-missing binary search at this size.
  size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i]->fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(b->load(std::memory_order_relaxed));
  return out;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b->store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricSnapshot SnapshotDelta(const MetricSnapshot& before,
                             const MetricSnapshot& after) {
  MetricSnapshot out;
  for (const auto& [name, v] : after) {
    auto it = before.find(name);
    int64_t d = v - (it == before.end() ? 0 : it->second);
    if (d != 0 || it == before.end()) out[name] = d;
  }
  return out;
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.kind == Kind::kCounter ? it->second.counter.get()
                                             : nullptr;
  }
  Entry e;
  e.kind = Kind::kCounter;
  e.counter = std::make_unique<Counter>();
  Counter* out = e.counter.get();
  entries_.emplace(name, std::move(e));
  return out;
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.kind == Kind::kGauge ? it->second.gauge.get() : nullptr;
  }
  Entry e;
  e.kind = Kind::kGauge;
  e.gauge = std::make_unique<Gauge>();
  Gauge* out = e.gauge.get();
  entries_.emplace(name, std::move(e));
  return out;
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        std::vector<int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.kind == Kind::kHistogram ? it->second.histogram.get()
                                               : nullptr;
  }
  Entry e;
  e.kind = Kind::kHistogram;
  e.histogram = std::make_unique<Histogram>(std::move(bounds));
  Histogram* out = e.histogram.get();
  entries_.emplace(name, std::move(e));
  return out;
}

MetricSnapshot MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricSnapshot out;
  for (const auto& [name, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        out[name] = static_cast<int64_t>(e.counter->value());
        break;
      case Kind::kGauge:
        out[name] = e.gauge->value();
        break;
      case Kind::kHistogram: {
        out[name + ".count"] = static_cast<int64_t>(e.histogram->count());
        out[name + ".sum"] = e.histogram->sum();
        auto counts = e.histogram->bucket_counts();
        const auto& bounds = e.histogram->bounds();
        for (size_t i = 0; i < bounds.size(); ++i) {
          out[name + ".le_" + std::to_string(bounds[i])] =
              static_cast<int64_t>(counts[i]);
        }
        out[name + ".le_inf"] = static_cast<int64_t>(counts.back());
        break;
      }
    }
  }
  return out;
}

std::string MetricRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [name, e] : entries_) {
    if (!first) os << ",";
    first = false;
    os << "\n  \"" << name << "\": ";
    switch (e.kind) {
      case Kind::kCounter:
        os << e.counter->value();
        break;
      case Kind::kGauge:
        os << e.gauge->value();
        break;
      case Kind::kHistogram: {
        os << "{\"count\": " << e.histogram->count()
           << ", \"sum\": " << e.histogram->sum() << ", \"buckets\": [";
        auto counts = e.histogram->bucket_counts();
        const auto& bounds = e.histogram->bounds();
        for (size_t i = 0; i < counts.size(); ++i) {
          if (i) os << ", ";
          os << "{\"le\": ";
          if (i < bounds.size()) {
            os << bounds[i];
          } else {
            os << "\"inf\"";
          }
          os << ", \"count\": " << counts[i] << "}";
        }
        os << "]}";
        break;
      }
    }
  }
  os << "\n}";
  return os.str();
}

void MetricRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : entries_) {
    (void)name;
    switch (e.kind) {
      case Kind::kCounter:
        e.counter->Reset();
        break;
      case Kind::kGauge:
        e.gauge->Reset();
        break;
      case Kind::kHistogram:
        e.histogram->Reset();
        break;
    }
  }
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* r = new MetricRegistry();
  return *r;
}

std::string SystemMetricsJson() { return MetricRegistry::Global().ToJson(); }

}  // namespace dashdb
