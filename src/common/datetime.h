// Proleptic-Gregorian date arithmetic (days since 1970-01-01) and
// 'YYYY-MM-DD' / 'YYYY-MM-DD HH:MM:SS' parsing & formatting.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"

namespace dashdb {

struct CivilDate {
  int32_t year;
  int32_t month;  ///< 1..12
  int32_t day;    ///< 1..31
};

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
int32_t DaysFromCivil(int32_t y, int32_t m, int32_t d);

/// Inverse of DaysFromCivil.
CivilDate CivilFromDays(int32_t days);

/// Parses 'YYYY-MM-DD' into days since epoch.
Result<int32_t> ParseDate(const std::string& s);

/// Parses 'YYYY-MM-DD[ HH:MM:SS]' into microseconds since epoch.
Result<int64_t> ParseTimestamp(const std::string& s);

/// Formats days since epoch as 'YYYY-MM-DD'.
std::string FormatDate(int32_t days);

/// Formats micros since epoch as 'YYYY-MM-DD HH:MM:SS'.
std::string FormatTimestamp(int64_t micros);

/// Day of week, 0 = Sunday (for DATE_PART('dow', ...)).
int DayOfWeek(int32_t days);

/// Day of year, 1-based.
int DayOfYear(int32_t days);

}  // namespace dashdb
