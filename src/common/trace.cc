#include "common/trace.h"

#include <cstdio>
#include <functional>
#include <sstream>

namespace dashdb {

uint32_t Trace::AddSpan(const std::string& name, uint32_t parent) {
  TraceSpan s;
  s.id = static_cast<uint32_t>(spans_.size()) + 1;
  s.parent = parent;
  s.name = name;
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

void Trace::Graft(const Trace& sub, uint32_t parent) {
  const uint32_t base = static_cast<uint32_t>(spans_.size());
  for (const TraceSpan& s : sub.spans_) {
    TraceSpan copy = s;
    copy.id = s.id + base;
    copy.parent = s.parent == kNoParent ? parent : s.parent + base;
    spans_.push_back(std::move(copy));
  }
}

std::string Trace::TreeString() const {
  // Children in id order under each parent preserves creation order.
  std::map<uint32_t, std::vector<const TraceSpan*>> children;
  for (const TraceSpan& s : spans_) children[s.parent].push_back(&s);

  std::ostringstream os;
  std::function<void(uint32_t, int)> emit = [&](uint32_t parent, int depth) {
    auto it = children.find(parent);
    if (it == children.end()) return;
    for (const TraceSpan* s : it->second) {
      for (int i = 0; i < depth; ++i) os << "  ";
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.3f", s->wall_seconds * 1e3);
      os << "#" << s->id << " " << s->name << " rows=" << s->rows
         << " wall_ms=" << buf;
      if (s->cpu_seconds > 0) {
        std::snprintf(buf, sizeof(buf), "%.3f", s->cpu_seconds * 1e3);
        os << " cpu_ms=" << buf;
      }
      for (const auto& [k, v] : s->attrs) os << " " << k << "=" << v;
      os << "\n";
      emit(s->id, depth + 1);
    }
  };
  emit(kNoParent, 0);
  return os.str();
}

std::string Trace::StructureDigest(bool include_attrs) const {
  std::ostringstream os;
  for (const TraceSpan& s : spans_) {
    os << s.id << "<" << s.parent << ":" << s.name << ":" << s.rows;
    if (include_attrs) {
      for (const auto& [k, v] : s.attrs) os << ":" << k << "=" << v;
    }
    os << ";";
  }
  return os.str();
}

}  // namespace dashdb
