#include "common/types.h"

#include <algorithm>
#include <cctype>

namespace dashdb {

const char* TypeName(TypeId t) {
  switch (t) {
    case TypeId::kBoolean: return "BOOLEAN";
    case TypeId::kInt32: return "INTEGER";
    case TypeId::kInt64: return "BIGINT";
    case TypeId::kDouble: return "DOUBLE";
    case TypeId::kVarchar: return "VARCHAR";
    case TypeId::kDate: return "DATE";
    case TypeId::kTimestamp: return "TIMESTAMP";
    case TypeId::kDecimal: return "DECIMAL";
  }
  return "UNKNOWN";
}

int FixedWidth(TypeId t) {
  switch (t) {
    case TypeId::kBoolean: return 1;
    case TypeId::kInt32: return 4;
    case TypeId::kInt64: return 8;
    case TypeId::kDouble: return 8;
    case TypeId::kDate: return 4;
    case TypeId::kTimestamp: return 8;
    case TypeId::kDecimal: return 8;
    case TypeId::kVarchar: return -1;
  }
  return -1;
}

Result<TypeId> TypeFromName(const std::string& name) {
  std::string u = name;
  std::transform(u.begin(), u.end(), u.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  // ANSI names.
  if (u == "BOOLEAN" || u == "BOOL") return TypeId::kBoolean;
  if (u == "INTEGER" || u == "INT") return TypeId::kInt32;
  if (u == "SMALLINT") return TypeId::kInt32;
  if (u == "BIGINT") return TypeId::kInt64;
  if (u == "DOUBLE" || u == "FLOAT" || u == "REAL") return TypeId::kDouble;
  if (u == "VARCHAR" || u == "CHAR" || u == "TEXT" || u == "CHARACTER")
    return TypeId::kVarchar;
  if (u == "DATE") return TypeId::kDate;
  if (u == "TIMESTAMP") return TypeId::kTimestamp;
  if (u == "DECIMAL" || u == "NUMERIC") return TypeId::kDecimal;
  // Netezza / PostgreSQL dialect names (paper II.C.1.b).
  if (u == "INT2") return TypeId::kInt32;
  if (u == "INT4") return TypeId::kInt32;
  if (u == "INT8") return TypeId::kInt64;
  if (u == "FLOAT4") return TypeId::kDouble;
  if (u == "FLOAT8") return TypeId::kDouble;
  if (u == "BPCHAR") return TypeId::kVarchar;
  // Oracle dialect names (paper II.C.1.a).
  if (u == "VARCHAR2") return TypeId::kVarchar;
  if (u == "NUMBER") return TypeId::kDecimal;
  return Status::SemanticError("unknown type name: " + name);
}

}  // namespace dashdb
