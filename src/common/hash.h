// Hash functions shared by the executor (hash join/group-by), the MPP
// sharding layer (hash partitioning), and the Netezza-compat HASH/HASH4/
// HASH8 scalar functions.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace dashdb {

/// 64-bit integer finalizer (Murmur3 fmix64). Good avalanche, cheap.
inline uint64_t HashInt64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xFF51AFD7ED558CCDull;
  k ^= k >> 33;
  k *= 0xC4CEB9FE1A85EC53ull;
  k ^= k >> 33;
  return k;
}

/// FNV-1a over bytes; used for string keys.
inline uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xCBF29CE484222325ull;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

/// Word-at-a-time 64-bit hash (Murmur3-style block mixing) for hot hash
/// table paths over serialized keys. Roughly 4x faster than HashBytes on
/// 16-byte keys; NOT interchangeable with it — the HASH()/HASH4() scalar
/// functions and the fault-injection seeds keep the FNV definition, this
/// one is for tables whose hashes never leave the process.
inline uint64_t HashBytesFast(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  const uint64_t c1 = 0x87C37B91114253D5ull;
  const uint64_t c2 = 0x4CF5AD432745937Full;
  uint64_t h = 0x9E3779B97F4A7C15ull ^ len;
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t k;
    std::memcpy(&k, p + i, 8);
    k *= c1;
    k = (k << 31) | (k >> 33);
    k *= c2;
    h ^= k;
    h = ((h << 27) | (h >> 37)) * 5 + 0x52DCE729u;
  }
  uint64_t k = 0;
  for (size_t j = len; j > i; --j) k = (k << 8) | p[j - 1];
  k *= c1;
  k = (k << 31) | (k >> 33);
  k *= c2;
  return HashInt64(h ^ k);
}

/// Combines two hashes (boost::hash_combine style, 64-bit).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9E3779B97F4A7C15ull + (a << 12) + (a >> 4));
}

}  // namespace dashdb
