#include "common/flat_hash.h"

namespace dashdb {

using flat_internal::CapacityFor;
using flat_internal::CtrlTag;

// ---------------------------------------------------------- FlatJoinIndex --

void FlatJoinIndex::Reserve(size_t n) {
  size_t cap = CapacityFor(n);
  if (cap > cap_) Grow(cap);
}

void FlatJoinIndex::Grow(size_t new_cap) {
  std::vector<Slot> old_slots = std::move(slots_);
  std::vector<uint64_t> old_hashes = std::move(hashes_);
  std::vector<int32_t> old_tail = std::move(tail_);
  const size_t old_cap = cap_;
  cap_ = new_cap;
  slots_.assign(cap_, Slot{0, 0, kEmptySlot});
  hashes_.resize(cap_);
  tail_.resize(cap_);
  const size_t mask = cap_ - 1;
  // Re-bucket from the stored hashes; keys are never re-hashed and chains
  // are untouched.
  for (size_t s = 0; s < old_cap; ++s) {
    if (old_slots[s].next == kEmptySlot) continue;
    size_t i = static_cast<size_t>(old_hashes[s]) & mask;
    while (slots_[i].next != kEmptySlot) i = (i + 1) & mask;
    slots_[i] = old_slots[s];
    hashes_[i] = old_hashes[s];
    tail_[i] = old_tail[s];
  }
}

void FlatJoinIndex::Insert(uint64_t key, uint64_t hash, uint32_t row) {
  if (cap_ == 0 || (used_ + 1) * 8 > cap_ * 7) {
    Grow(cap_ == 0 ? 16 : cap_ * 2);
  }
  const size_t mask = cap_ - 1;
  size_t i = static_cast<size_t>(hash) & mask;
  while (slots_[i].next != kEmptySlot) {
    if (slots_[i].key == key) {
      // Existing key: append to its chain, preserving insertion order.
      const int32_t link = static_cast<int32_t>(chain_.size());
      chain_.push_back({row, kNone});
      if (tail_[i] == kNone) {
        slots_[i].next = link;  // second row for this key
      } else {
        chain_[tail_[i]].next = link;
      }
      tail_[i] = link;
      return;
    }
    i = (i + 1) & mask;
  }
  slots_[i] = {key, row, kNone};
  hashes_[i] = hash;
  tail_[i] = kNone;
  ++used_;
}

// ----------------------------------------------------------- FlatKeyIndex --

void FlatKeyIndex::Reserve(size_t n) {
  entries_.reserve(n);
  size_t cap = CapacityFor(n);
  if (cap > cap_) Grow(cap);
}

void FlatKeyIndex::Grow(size_t new_cap) {
  std::vector<uint8_t> old_ctrl = std::move(ctrl_);
  std::vector<uint32_t> old_id = std::move(slot_id_);
  const size_t old_cap = cap_;
  cap_ = new_cap;
  ctrl_.assign(cap_, 0);
  slot_id_.resize(cap_);
  const size_t mask = cap_ - 1;
  for (size_t s = 0; s < old_cap; ++s) {
    if (old_ctrl[s] == 0) continue;
    size_t i = static_cast<size_t>(entries_[old_id[s]].hash) & mask;
    while (ctrl_[i] != 0) i = (i + 1) & mask;
    ctrl_[i] = old_ctrl[s];
    slot_id_[i] = old_id[s];
  }
}

uint32_t FlatKeyIndex::FindOrInsert(const uint8_t* key, size_t len,
                                    uint64_t hash, bool* inserted) {
  if (cap_ == 0 || (entries_.size() + 1) * 8 > cap_ * 7) {
    Grow(cap_ == 0 ? 16 : cap_ * 2);
  }
  const size_t mask = cap_ - 1;
  const uint8_t tag = CtrlTag(hash);
  size_t i = static_cast<size_t>(hash) & mask;
  while (ctrl_[i] != 0) {
    if (ctrl_[i] == tag && SlotMatches(i, key, len, hash)) {
      *inserted = false;
      return slot_id_[i];
    }
    i = (i + 1) & mask;
  }
  const uint32_t id = static_cast<uint32_t>(entries_.size());
  entries_.push_back({hash, arena_.size(), static_cast<uint32_t>(len)});
  arena_.insert(arena_.end(), key, key + len);
  ctrl_[i] = tag;
  slot_id_[i] = id;
  *inserted = true;
  return id;
}

int64_t FlatKeyIndex::Find(const uint8_t* key, size_t len,
                           uint64_t hash) const {
  if (entries_.empty() || cap_ == 0) return -1;
  const size_t mask = cap_ - 1;
  const uint8_t tag = CtrlTag(hash);
  size_t i = static_cast<size_t>(hash) & mask;
  while (ctrl_[i] != 0) {
    if (ctrl_[i] == tag && SlotMatches(i, key, len, hash)) {
      return slot_id_[i];
    }
    i = (i + 1) & mask;
  }
  return -1;
}

// ------------------------------------------------------------- FlatIntMap --

void FlatIntMap::Reserve(size_t n) {
  keys_dense_.reserve(n);
  size_t cap = CapacityFor(n);
  if (cap > cap_) Grow(cap);
}

void FlatIntMap::Grow(size_t new_cap) {
  std::vector<uint8_t> old_ctrl = std::move(ctrl_);
  std::vector<int64_t> old_keys = std::move(keys_);
  std::vector<uint32_t> old_id = std::move(slot_id_);
  const size_t old_cap = cap_;
  cap_ = new_cap;
  ctrl_.assign(cap_, 0);
  keys_.resize(cap_);
  slot_id_.resize(cap_);
  const size_t mask = cap_ - 1;
  for (size_t s = 0; s < old_cap; ++s) {
    if (old_ctrl[s] == 0) continue;
    uint64_t h = HashInt64(static_cast<uint64_t>(old_keys[s]));
    size_t i = static_cast<size_t>(h) & mask;
    while (ctrl_[i] != 0) i = (i + 1) & mask;
    ctrl_[i] = old_ctrl[s];
    keys_[i] = old_keys[s];
    slot_id_[i] = old_id[s];
  }
}

uint32_t FlatIntMap::FindOrInsert(int64_t key, bool* inserted) {
  if (cap_ == 0 || (keys_dense_.size() + 1) * 8 > cap_ * 7) {
    Grow(cap_ == 0 ? 16 : cap_ * 2);
  }
  const uint64_t h = HashInt64(static_cast<uint64_t>(key));
  const size_t mask = cap_ - 1;
  const uint8_t tag = CtrlTag(h);
  size_t i = static_cast<size_t>(h) & mask;
  while (ctrl_[i] != 0) {
    if (ctrl_[i] == tag && keys_[i] == key) {
      *inserted = false;
      return slot_id_[i];
    }
    i = (i + 1) & mask;
  }
  const uint32_t id = static_cast<uint32_t>(keys_dense_.size());
  keys_dense_.push_back(key);
  ctrl_[i] = tag;
  keys_[i] = key;
  slot_id_[i] = id;
  *inserted = true;
  return id;
}

}  // namespace dashdb
