// SQL dialect identifiers (paper II.C): dashDB compiles ANSI SQL plus
// Oracle, Netezza, PostgreSQL, and DB2 language variants, selected per
// session ("a session variable is leveraged allowing individual sessions to
// decide the dialect to use when compiling SQL").
#pragma once

#include <string>

namespace dashdb {

enum class Dialect : uint8_t {
  kAnsi = 0,
  kOracle,
  kNetezza,
  kPostgres,
  kDb2,
};

inline const char* DialectName(Dialect d) {
  switch (d) {
    case Dialect::kAnsi: return "ANSI";
    case Dialect::kOracle: return "ORACLE";
    case Dialect::kNetezza: return "NETEZZA";
    case Dialect::kPostgres: return "POSTGRES";
    case Dialect::kDb2: return "DB2";
  }
  return "?";
}

inline bool DialectFromName(const std::string& s, Dialect* out) {
  if (s == "ANSI") *out = Dialect::kAnsi;
  else if (s == "ORACLE") *out = Dialect::kOracle;
  else if (s == "NETEZZA" || s == "NZPLSQL") *out = Dialect::kNetezza;
  else if (s == "POSTGRES" || s == "POSTGRESQL") *out = Dialect::kPostgres;
  else if (s == "DB2") *out = Dialect::kDb2;
  else return false;
  return true;
}

}  // namespace dashdb
