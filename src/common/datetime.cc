#include "common/datetime.h"

#include <cstdio>

namespace dashdb {

int32_t DaysFromCivil(int32_t y, int32_t m, int32_t d) {
  y -= m <= 2;
  const int32_t era = (y >= 0 ? y : y - 399) / 400;
  const uint32_t yoe = static_cast<uint32_t>(y - era * 400);           // [0, 399]
  const uint32_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const uint32_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<int32_t>(doe) - 719468;
}

CivilDate CivilFromDays(int32_t z) {
  z += 719468;
  const int32_t era = (z >= 0 ? z : z - 146096) / 146097;
  const uint32_t doe = static_cast<uint32_t>(z - era * 146097);  // [0, 146096]
  const uint32_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int32_t y = static_cast<int32_t>(yoe) + era * 400;
  const uint32_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const uint32_t mp = (5 * doy + 2) / 153;                       // [0, 11]
  const uint32_t d = doy - (153 * mp + 2) / 5 + 1;               // [1, 31]
  const uint32_t m = mp + (mp < 10 ? 3 : -9);                    // [1, 12]
  return CivilDate{y + (m <= 2), static_cast<int32_t>(m), static_cast<int32_t>(d)};
}

Result<int32_t> ParseDate(const std::string& s) {
  int y, m, d;
  if (std::sscanf(s.c_str(), "%d-%d-%d", &y, &m, &d) != 3) {
    return Status::ParseError("bad date literal: '" + s + "'");
  }
  if (m < 1 || m > 12 || d < 1 || d > 31) {
    return Status::OutOfRange("date out of range: '" + s + "'");
  }
  return DaysFromCivil(y, m, d);
}

Result<int64_t> ParseTimestamp(const std::string& s) {
  int y, m, d, hh = 0, mm = 0, ss = 0;
  int n = std::sscanf(s.c_str(), "%d-%d-%d %d:%d:%d", &y, &m, &d, &hh, &mm, &ss);
  if (n != 3 && n != 6) {
    return Status::ParseError("bad timestamp literal: '" + s + "'");
  }
  if (m < 1 || m > 12 || d < 1 || d > 31 || hh < 0 || hh > 23 || mm < 0 ||
      mm > 59 || ss < 0 || ss > 60) {
    return Status::OutOfRange("timestamp out of range: '" + s + "'");
  }
  int64_t days = DaysFromCivil(y, m, d);
  int64_t secs = days * 86400 + hh * 3600 + mm * 60 + ss;
  return secs * 1000000;
}

std::string FormatDate(int32_t days) {
  CivilDate c = CivilFromDays(days);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", c.year, c.month, c.day);
  return buf;
}

std::string FormatTimestamp(int64_t micros) {
  int64_t secs = micros / 1000000;
  int64_t days = secs / 86400;
  int64_t rem = secs % 86400;
  if (rem < 0) {
    rem += 86400;
    days -= 1;
  }
  CivilDate c = CivilFromDays(static_cast<int32_t>(days));
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", c.year,
                c.month, c.day, static_cast<int>(rem / 3600),
                static_cast<int>((rem % 3600) / 60), static_cast<int>(rem % 60));
  return buf;
}

int DayOfWeek(int32_t days) {
  // 1970-01-01 was a Thursday (dow 4 with Sunday = 0).
  int dow = (days + 4) % 7;
  return dow < 0 ? dow + 7 : dow;
}

int DayOfYear(int32_t days) {
  CivilDate c = CivilFromDays(days);
  return days - DaysFromCivil(c.year, 1, 1) + 1;
}

}  // namespace dashdb
