// Bit-level utilities: bitmaps (selection/null vectors) and word-aligned
// bit-packed code arrays — the physical substrate for dashDB's
// "pack many values into a single word" representation (paper II.B.6).
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

namespace dashdb {

/// Bits needed to represent values in [0, max_value]; at least 1.
inline int BitWidthFor(uint64_t max_value) {
  int w = 64 - std::countl_zero(max_value | 1);
  return w;
}

/// A fixed-length bitmap used for null vectors and per-stride selection
/// vectors during scans.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(size_t n, bool initial = false) { Resize(n, initial); }

  void Resize(size_t n, bool initial = false) {
    size_ = n;
    words_.assign((n + 63) / 64, initial ? ~uint64_t{0} : 0);
    if (initial) TrimTail();
  }

  /// Grows to n bits, preserving existing bits (new bits are clear).
  /// No-op when n <= current size.
  void GrowTo(size_t n) {
    if (n <= size_) return;
    size_ = n;
    words_.resize((n + 63) / 64, 0);
  }

  /// Reserves word storage for n bits without changing the size.
  void Reserve(size_t n) { words_.reserve((n + 63) / 64); }

  size_t size() const { return size_; }

  bool Get(size_t i) const {
    assert(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void Set(size_t i) {
    assert(i < size_);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }
  void Clear(size_t i) {
    assert(i < size_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }
  void SetTo(size_t i, bool v) { v ? Set(i) : Clear(i); }

  void SetAll() {
    for (auto& w : words_) w = ~uint64_t{0};
    TrimTail();
  }

  /// Clears bits [begin, end) with word-level operations.
  void ClearRange(size_t begin, size_t end) {
    if (begin >= end) return;
    size_t wb = begin >> 6, we = (end - 1) >> 6;
    uint64_t first_mask = ~uint64_t{0} << (begin & 63);
    uint64_t last_mask = (end & 63) ? ((uint64_t{1} << (end & 63)) - 1)
                                    : ~uint64_t{0};
    if (wb == we) {
      words_[wb] &= ~(first_mask & last_mask);
      return;
    }
    words_[wb] &= ~first_mask;
    for (size_t w = wb + 1; w < we; ++w) words_[w] = 0;
    words_[we] &= ~last_mask;
  }
  void ClearAll() {
    for (auto& w : words_) w = 0;
  }

  /// this &= other. Sizes must match.
  void And(const BitVector& other) {
    assert(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  }
  /// this |= other. Sizes must match.
  void Or(const BitVector& other) {
    assert(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  }
  /// this = ~this (tail bits stay clear).
  void Not() {
    for (auto& w : words_) w = ~w;
    TrimTail();
  }

  size_t CountSet() const {
    size_t n = 0;
    for (uint64_t w : words_) n += std::popcount(w);
    return n;
  }

  /// Set bits in [begin, end), word-at-a-time.
  size_t CountSetRange(size_t begin, size_t end) const {
    end = std::min(end, size_);
    if (begin >= end) return 0;
    size_t wb = begin >> 6, we = (end - 1) >> 6;
    uint64_t first_mask = ~uint64_t{0} << (begin & 63);
    uint64_t last_mask =
        (end & 63) ? ((uint64_t{1} << (end & 63)) - 1) : ~uint64_t{0};
    if (wb == we) {
      return std::popcount(words_[wb] & first_mask & last_mask);
    }
    size_t n = std::popcount(words_[wb] & first_mask);
    for (size_t w = wb + 1; w < we; ++w) n += std::popcount(words_[w]);
    n += std::popcount(words_[we] & last_mask);
    return n;
  }

  bool AnySet() const {
    for (uint64_t w : words_)
      if (w) return true;
    return false;
  }

  /// Calls fn(index) for every set bit, in ascending order.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w) {
        int b = std::countr_zero(w);
        fn(wi * 64 + b);
        w &= w - 1;
      }
    }
  }

  const uint64_t* words() const { return words_.data(); }
  uint64_t* mutable_words() { return words_.data(); }
  size_t word_count() const { return words_.size(); }

 private:
  void TrimTail() {
    size_t tail = size_ & 63;
    if (tail && !words_.empty()) {
      words_.back() &= (uint64_t{1} << tail) - 1;
    }
  }
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

/// Word-aligned bit-packed array of unsigned codes.
///
/// Codes of width `bit_width` are packed floor(64/width) per 64-bit word;
/// codes never straddle word boundaries so that SWAR predicate kernels
/// (src/simd) can operate on whole words. BLU packs fully bit-aligned; the
/// word-aligned simplification is documented in DESIGN.md and costs at most
/// (64 mod width) bits per word.
class BitPackedArray {
 public:
  BitPackedArray() : bit_width_(1), per_word_(64) {}

  explicit BitPackedArray(int bit_width) { ResetWidth(bit_width); }

  void ResetWidth(int bit_width) {
    assert(bit_width >= 1 && bit_width <= 64);
    bit_width_ = bit_width;
    per_word_ = 64 / bit_width;
    size_ = 0;
    words_.clear();
  }

  int bit_width() const { return bit_width_; }
  /// Codes stored per 64-bit word.
  int codes_per_word() const { return per_word_; }
  size_t size() const { return size_; }
  size_t word_count() const { return words_.size(); }
  const uint64_t* words() const { return words_.data(); }

  /// Bytes of packed storage (the compression denominator).
  size_t ByteSize() const { return words_.size() * sizeof(uint64_t); }

  void Reserve(size_t n) { words_.reserve((n + per_word_ - 1) / per_word_); }

  void Append(uint64_t code) {
    assert(bit_width_ == 64 || code < (uint64_t{1} << bit_width_));
    size_t wi = size_ / per_word_;
    int slot = static_cast<int>(size_ % per_word_);
    if (slot == 0) words_.push_back(0);
    words_[wi] |= code << (slot * bit_width_);
    ++size_;
  }

  uint64_t Get(size_t i) const {
    assert(i < size_);
    size_t wi = i / per_word_;
    int slot = static_cast<int>(i % per_word_);
    uint64_t mask = bit_width_ == 64 ? ~uint64_t{0}
                                     : (uint64_t{1} << bit_width_) - 1;
    return (words_[wi] >> (slot * bit_width_)) & mask;
  }

  /// Decodes codes [begin, begin+count) into out[0..count).
  void Decode(size_t begin, size_t count, uint64_t* out) const {
    for (size_t i = 0; i < count; ++i) out[i] = Get(begin + i);
  }

 private:
  int bit_width_;
  int per_word_;
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace dashdb
