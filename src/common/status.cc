#include "common/status.h"

namespace dashdb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kUnimplemented: return "Unimplemented";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kAborted: return "Aborted";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kSemanticError: return "SemanticError";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kTimeout: return "Timeout";
    case StatusCode::kCancelled: return "Cancelled";
  }
  return "Unknown";
}

bool StatusCodeIsTransient(StatusCode code) {
  switch (code) {
    case StatusCode::kUnavailable:
    case StatusCode::kTimeout:
    case StatusCode::kAborted:
      return true;
    default:
      return false;
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace dashdb
