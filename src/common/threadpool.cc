#include "common/threadpool.h"

#include <algorithm>
#include <atomic>

namespace dashdb {

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(1, num_threads);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  int shards = num_threads();
  if (n < static_cast<size_t>(shards) * 4) {
    // Small job: run inline to avoid scheduling overhead.
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto next = std::make_shared<std::atomic<size_t>>(0);
  std::vector<std::future<void>> futs;
  futs.reserve(shards);
  const size_t chunk = std::max<size_t>(1, n / (shards * 8));
  for (int t = 0; t < shards; ++t) {
    futs.push_back(Submit([next, n, chunk, &fn] {
      for (;;) {
        size_t begin = next->fetch_add(chunk);
        if (begin >= n) return;
        size_t end = std::min(n, begin + chunk);
        for (size_t i = begin; i < end; ++i) fn(i);
      }
    }));
  }
  for (auto& f : futs) f.get();
}

}  // namespace dashdb
