#include "common/threadpool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/query_context.h"

namespace dashdb {

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(1, num_threads);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

/// Shared state of one ParallelFor call. Held by shared_ptr so helper tasks
/// that start after the caller returned (all chunks already claimed) still
/// have valid state to look at.
struct ParallelForState {
  std::function<void(size_t)> fn;
  QueryContext* qctx = nullptr;
  size_t n = 0;
  size_t chunk = 1;
  std::atomic<size_t> next{0};
  std::atomic<int> active{0};  ///< threads currently inside the drain loop
  std::mutex mu;
  std::condition_variable done_cv;
  std::exception_ptr first_error;

  /// Claims and runs chunks until the range is exhausted. On exception,
  /// records the first error and steals the remaining range so other
  /// threads stop early.
  void Drain() {
    active.fetch_add(1, std::memory_order_acq_rel);
    for (;;) {
      size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      // Governor probe only after a successful claim: begin < n proves the
      // caller is still inside ParallelFor (it drains until the range runs
      // dry before waiting), so qctx is alive. A helper that starts after
      // the caller returned claims begin >= n and never touches qctx.
      if (qctx != nullptr && !qctx->CheckAlive().ok()) {
        next.store(n, std::memory_order_relaxed);  // abandon remaining chunks
        break;
      }
      size_t end = std::min(n, begin + chunk);
      try {
        for (size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lk(mu);
          if (!first_error) first_error = std::current_exception();
        }
        next.store(n, std::memory_order_relaxed);  // abandon remaining chunks
        break;
      }
    }
    if (active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lk(mu);  // pair with the waiter's check
      done_cv.notify_all();
    }
  }
};

}  // namespace

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                             int max_workers, QueryContext* qctx) {
  if (n == 0) return;
  int workers = max_workers > 0 ? std::min(max_workers, num_threads() + 1)
                                : num_threads() + 1;
  if (workers <= 1 || n < static_cast<size_t>(workers)) {
    // Degenerate job (fewer items than workers would strand helpers on
    // sub-item work): run inline to avoid scheduling overhead. Callers with
    // coarse units (partitions, merge shards) rely on n == workers fanning
    // out, so the threshold must not exceed n == workers.
    for (size_t i = 0; i < n; ++i) {
      if (qctx != nullptr && !qctx->CheckAlive().ok()) return;
      fn(i);
    }
    return;
  }
  auto st = std::make_shared<ParallelForState>();
  st->fn = fn;
  st->qctx = qctx;
  st->n = n;
  // Coarse-grained calls (n comparable to workers — radix partitions,
  // merge shards) get chunk 1 so every unit can land on its own thread;
  // larger ranges use ~8 chunks per worker to amortize the atomic claim.
  st->chunk = std::max<size_t>(1, n / (static_cast<size_t>(workers) * 8));
  // The caller is one of the workers, so enqueue workers-1 helpers. A helper
  // that only starts once the range is exhausted returns immediately.
  for (int t = 0; t < workers - 1; ++t) {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.emplace_back([st] { st->Drain(); });
  }
  cv_.notify_all();
  st->Drain();
  {
    // Wait for helpers that claimed chunks before the range ran dry; helpers
    // still queued will see next >= n on arrival and never touch fn.
    std::unique_lock<std::mutex> lk(st->mu);
    st->done_cv.wait(lk, [&] {
      return st->active.load(std::memory_order_acquire) == 0;
    });
    if (st->first_error) std::rethrow_exception(st->first_error);
  }
}

}  // namespace dashdb
