#include "common/fault_injector.h"

#include <chrono>
#include <thread>

#include "common/hash.h"
#include "common/rng.h"

namespace dashdb {

void FaultInjector::Reset(uint64_t seed) {
  std::lock_guard<std::mutex> lk(mu_);
  seed_ = seed;
  points_.clear();
  log_.clear();
  armed_points_.store(0, std::memory_order_relaxed);
}

uint64_t FaultInjector::seed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return seed_;
}

void FaultInjector::Arm(const std::string& point, FaultSpec spec) {
  std::lock_guard<std::mutex> lk(mu_);
  auto [it, inserted] = points_.insert_or_assign(point, Point{spec, 0, 0});
  (void)it;
  if (inserted) armed_points_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lk(mu_);
  if (points_.erase(point) > 0) {
    armed_points_.fetch_sub(1, std::memory_order_relaxed);
  }
}

Status FaultInjector::Evaluate(const std::string& point) {
  if (!enabled()) return Status::OK();
  FaultSpec spec;
  uint64_t hit = 0;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = points_.find(point);
    if (it == points_.end()) return Status::OK();
    Point& p = it->second;
    hit = ++p.hits;
    bool eligible =
        hit > p.spec.skip_hits &&
        (p.spec.max_fires < 0 ||
         p.fires < static_cast<uint64_t>(p.spec.max_fires));
    if (eligible) {
      if (p.spec.probability >= 1.0) {
        fire = true;
      } else if (p.spec.probability > 0.0) {
        // Pure function of (seed, point, hit): replayable from the seed
        // no matter how threads interleave their hits.
        Rng decide(seed_ ^ (HashString(point) * 0x9E3779B97F4A7C15ull) ^
                   (hit * 0xBF58476D1CE4E5B9ull));
        fire = decide.NextDouble() < p.spec.probability;
      }
    }
    if (fire) {
      ++p.fires;
      log_.push_back({point, hit});
    }
    spec = p.spec;
  }
  if (!fire) return Status::OK();
  if (spec.stall_seconds > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(spec.stall_seconds));
  }
  if (spec.code == StatusCode::kOk) return Status::OK();  // stall-only point
  std::string msg = "injected(" + point + "#" + std::to_string(hit) + ")";
  if (!spec.message.empty()) msg += ": " + spec.message;
  return Status(spec.code, std::move(msg));
}

FaultPointStats FaultInjector::PointStats(const std::string& point) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return {};
  return {it->second.hits, it->second.fires};
}

std::vector<FaultFireEvent> FaultInjector::FireLog() const {
  std::lock_guard<std::mutex> lk(mu_);
  return log_;
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

}  // namespace dashdb
