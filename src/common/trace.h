// Per-query trace: a tree of spans covering operators (one span per plan
// node) and MPP shards (one span per shard attempt group), annotated with
// row counts, wall/CPU time, and integer attributes (attempts, retries,
// dop, ...).
//
// Determinism contract: span ids are assigned sequentially in creation
// order, and every creation site is deterministic — the coordinator runs
// shards serially and the operator tree walk is a fixed pre-order — so the
// same query with the same fault seed yields an identical span tree (ids,
// nesting, names, rows, attrs) across runs. Timing fields are excluded
// from StructureDigest for exactly this reason: wall/CPU time is the one
// thing that never replays.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dashdb {

struct TraceSpan {
  uint32_t id = 0;
  /// Parent span id; kNoParent for roots.
  uint32_t parent = 0;
  std::string name;
  uint64_t rows = 0;
  double wall_seconds = 0;
  double cpu_seconds = 0;
  /// Deterministic integer annotations (attempts, retries, dop, ...).
  std::map<std::string, int64_t> attrs;
};

/// Single-threaded span recorder for one query execution. Not thread-safe:
/// the coordinator owns it and shard/operator spans are appended from the
/// (serial) coordination loop.
class Trace {
 public:
  static constexpr uint32_t kNoParent = 0;  ///< ids start at 1

  /// Appends a span with the next sequential id; returns that id.
  uint32_t AddSpan(const std::string& name, uint32_t parent);

  TraceSpan& span(uint32_t id) { return spans_[id - 1]; }
  const std::vector<TraceSpan>& spans() const { return spans_; }
  bool empty() const { return spans_.empty(); }

  /// Splices another trace's spans under `parent`, remapping the child
  /// trace's ids onto this trace's sequence (used to attach per-shard
  /// operator traces to the coordinator's shard span).
  void Graft(const Trace& sub, uint32_t parent);

  /// Human-readable indented tree with rows/time/attrs per span.
  std::string TreeString() const;

  /// Canonical digest of the replay-stable parts: id, parent, name, rows,
  /// and (when `include_attrs`) the attribute map. Never timing. Two runs
  /// with the same seed must produce equal digests; cross-DOP comparisons
  /// pass include_attrs=false since `dop` itself is an attribute.
  std::string StructureDigest(bool include_attrs = true) const;

 private:
  std::vector<TraceSpan> spans_;
};

}  // namespace dashdb
