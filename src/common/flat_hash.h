// Cache-efficient compact hash tables for join and group-by (paper
// II.B.4): open addressing with linear probing over contiguous arrays,
// replacing the pointer-chasing node-based std maps in the executor's hot
// paths.
//
// Shared layout decisions:
//  - power-of-two capacity; the bucket index is `hash & (capacity - 1)`
//    (low hash bits), so the radix-partition digit (bits 32..37), the
//    Bloom prefilter bits (13.., 38..43, 51..56) and the control tag
//    (top 7 bits) all draw from disjoint hash ranges;
//  - the variable-length-key and int-map tables keep one control byte per
//    slot: 0 = empty, else 0x80 | (hash >> 57), so a probe compares one
//    byte before touching the slot's payload; the join index instead
//    embeds occupancy in its 16-byte slot (the key compare already shares
//    that cache line);
//  - the full 64-bit hash is stored per slot, making growth a re-bucketing
//    pass that never re-hashes keys;
//  - growth doubles at 7/8 load factor. Linear probing keeps every probe
//    sequence a contiguous memory walk.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/hash.h"

namespace dashdb {

namespace flat_internal {

inline uint64_t NextPow2(uint64_t n) {
  uint64_t c = 1;
  while (c < n) c <<= 1;
  return c;
}

inline uint8_t CtrlTag(uint64_t hash) {
  return static_cast<uint8_t>(0x80u | (hash >> 57));
}

/// Smallest power-of-two capacity (>= 16) holding n keys under 7/8 load.
inline size_t CapacityFor(size_t n) {
  uint64_t c = NextPow2(n * 8 / 7 + 1);
  return static_cast<size_t>(c < 16 ? 16 : c);
}

inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/1);
#else
  (void)p;
#endif
}

}  // namespace flat_internal

/// Multimap from a 64-bit key to build-row indices, specialized for hash
/// join builds. Each 16-byte slot holds the key, the key's FIRST build row
/// inline, and the chain index of its second row (kNone when unique, the
/// kEmptySlot sentinel when vacant — no separate control array, since at
/// the post-Reserve load factor the key compare lives in the same cache
/// line occupancy metadata would). A probe hit on a unique key — the
/// common join shape — therefore touches exactly ONE table cache line.
/// Only duplicate rows spill into the contiguous {row, next} chain array,
/// appended in insertion order, so duplicates iterate in ascending
/// build-row order. The full 64-bit hash and the chain tail live in cold
/// build-only arrays that the probe path never reads; growth re-buckets
/// slots from the stored hashes without touching chains.
class FlatJoinIndex {
 public:
  static constexpr int32_t kNone = -1;

  /// Pre-sizes the slot arrays for n distinct keys (no growth during build
  /// when the estimate holds; chains grow on demand).
  void Reserve(size_t n);

  /// Adds (key, row); `hash` must be the caller's hash of `key` (the
  /// generic join path uses key == hash, the int fast path hashes the raw
  /// key). Rows of equal keys chain in insertion order.
  void Insert(uint64_t key, uint64_t hash, uint32_t row);

  /// Returns a cursor over the rows stored under `key` (kNone if absent).
  /// Cursors <= -2 address a slot's inline first row (-2 - cursor), >= 0
  /// the overflow chain; capacity is therefore bounded by 2^31 slots,
  /// already implied by the int32 chain links.
  int32_t Find(uint64_t key, uint64_t hash) const {
    if (used_ == 0) return kNone;
    const size_t mask = cap_ - 1;
    size_t i = static_cast<size_t>(hash) & mask;
    while (slots_[i].next != kEmptySlot) {
      if (slots_[i].key == key) return -static_cast<int32_t>(i) - 2;
      i = (i + 1) & mask;
    }
    return kNone;
  }

  int32_t Next(int32_t cursor) const {
    return cursor < kNone ? slots_[-2 - cursor].next : chain_[cursor].next;
  }
  uint32_t Row(int32_t cursor) const {
    return cursor < kNone ? slots_[-2 - cursor].first_row
                          : chain_[cursor].row;
  }

  /// Prefetches the home slot for `hash`. Every probe address is
  /// computable from the hash alone (the point of the flat layout), so the
  /// probe loop issues this a few rows ahead and the hit path's cache
  /// misses overlap instead of serializing.
  void Prefetch(uint64_t hash) const {
    if (cap_ == 0) return;
    flat_internal::PrefetchRead(slots_.data() +
                                (static_cast<size_t>(hash) & (cap_ - 1)));
  }

  /// Distinct keys stored.
  size_t size() const { return used_; }
  /// Total rows stored (inline firsts + chain entries).
  size_t rows() const { return used_ + chain_.size(); }
  size_t capacity() const { return cap_; }

 private:
  /// `next` sentinel marking a vacant slot (chain indices are >= 0 and
  /// kNone marks a unique key, so INT32_MIN can never be a live link).
  static constexpr int32_t kEmptySlot = INT32_MIN;

  struct Slot {
    uint64_t key;
    uint32_t first_row;
    int32_t next;  ///< chain index of the second row; kNone when unique
  };
  struct Link {
    uint32_t row;
    int32_t next;
  };

  void Grow(size_t new_cap);

  std::vector<Slot> slots_;
  std::vector<uint64_t> hashes_;  ///< build/grow only, never probed
  std::vector<int32_t> tail_;     ///< chain tail (kNone = inline row is last)
  std::vector<Link> chain_;
  size_t cap_ = 0;
  size_t used_ = 0;
};

/// Per-partition Bloom-style prefilter for the probe side of a join:
/// ~8 bits per build key, two bits set per key inside a single 64-bit
/// word, so a probe miss costs one cache line and no table walk. The word
/// index and the two bit positions come from hash ranges unused by the
/// bucket index, the radix partition digit, and the control tag.
class BloomPrefilter {
 public:
  /// Sizes the filter for `expected_keys` (~one byte per key, rounded up
  /// to a power of two of words). Zero keys leaves the filter disabled
  /// (MayContain is then trivially true).
  void Init(size_t expected_keys) {
    words_.clear();
    mask_ = 0;
    if (expected_keys == 0) return;
    size_t n_words =
        static_cast<size_t>(flat_internal::NextPow2(expected_keys / 8 + 1));
    words_.assign(n_words, 0);
    mask_ = n_words - 1;
  }

  void Add(uint64_t hash) {
    if (words_.empty()) return;
    words_[WordIndex(hash)] |= BitsFor(hash);
  }

  bool MayContain(uint64_t hash) const {
    if (words_.empty()) return true;
    const uint64_t bits = BitsFor(hash);
    return (words_[WordIndex(hash)] & bits) == bits;
  }

  void Prefetch(uint64_t hash) const {
    if (!words_.empty()) {
      flat_internal::PrefetchRead(words_.data() + WordIndex(hash));
    }
  }

  size_t ByteSize() const { return words_.size() * sizeof(uint64_t); }

  /// Wire format for cross-shard semi-join pushdown: 8-byte little-endian
  /// word count followed by the raw words. An empty (disabled) filter
  /// serializes to a count of zero.
  std::string Serialize() const {
    std::string out;
    uint64_t n = words_.size();
    out.resize(sizeof(uint64_t) * (1 + words_.size()));
    std::memcpy(&out[0], &n, sizeof(n));
    if (n != 0) {
      std::memcpy(&out[sizeof(n)], words_.data(), n * sizeof(uint64_t));
    }
    return out;
  }

  bool Deserialize(const std::string& bytes) {
    words_.clear();
    mask_ = 0;
    if (bytes.size() < sizeof(uint64_t)) return false;
    uint64_t n = 0;
    std::memcpy(&n, bytes.data(), sizeof(n));
    if (bytes.size() != sizeof(uint64_t) * (1 + n)) return false;
    if (n == 0) return true;  // disabled filter round-trips as disabled
    // Word counts are powers of two by construction; reject anything else
    // so mask_ stays a valid bit mask.
    if ((n & (n - 1)) != 0) return false;
    words_.resize(n);
    std::memcpy(words_.data(), bytes.data() + sizeof(n),
                n * sizeof(uint64_t));
    mask_ = n - 1;
    return true;
  }

 private:
  size_t WordIndex(uint64_t hash) const {
    return static_cast<size_t>((hash >> 13) & mask_);
  }
  static uint64_t BitsFor(uint64_t hash) {
    return (uint64_t{1} << ((hash >> 38) & 63)) |
           (uint64_t{1} << ((hash >> 51) & 63));
  }

  std::vector<uint64_t> words_;
  uint64_t mask_ = 0;
};

/// Map from variable-length serialized group keys to dense insertion-order
/// ids. The sparse side is the usual ctrl + slot arrays; the dense side is
/// one entries array {hash, offset, len} plus a single byte arena holding
/// every key back to back — group-by state lives in caller-side vectors
/// indexed by the returned ids, and output walks ids 0..size) in first-seen
/// order without touching the sparse arrays.
class FlatKeyIndex {
 public:
  void Reserve(size_t n);

  /// Returns the id of `key` (bytes of length len, hashed to `hash` by the
  /// caller), inserting a copy into the arena when absent. Sets *inserted.
  uint32_t FindOrInsert(const uint8_t* key, size_t len, uint64_t hash,
                        bool* inserted);

  /// Id of `key` or -1.
  int64_t Find(const uint8_t* key, size_t len, uint64_t hash) const;

  size_t size() const { return entries_.size(); }
  const uint8_t* KeyData(uint32_t id) const {
    return arena_.data() + entries_[id].offset;
  }
  uint32_t KeyLen(uint32_t id) const { return entries_[id].len; }
  uint64_t HashOf(uint32_t id) const { return entries_[id].hash; }

 private:
  struct Entry {
    uint64_t hash;
    uint64_t offset;  ///< into arena_ (offsets stay valid across growth)
    uint32_t len;
  };

  bool SlotMatches(size_t slot, const uint8_t* key, size_t len,
                   uint64_t hash) const {
    const Entry& e = entries_[slot_id_[slot]];
    return e.hash == hash && e.len == len &&
           std::memcmp(arena_.data() + e.offset, key, len) == 0;
  }

  void Grow(size_t new_cap);

  std::vector<uint8_t> ctrl_;
  std::vector<uint32_t> slot_id_;
  std::vector<Entry> entries_;
  std::vector<uint8_t> arena_;
  size_t cap_ = 0;
};

/// Map from an int64 key to a dense insertion-order id — the single
/// integer group-key fast path (NULL keys use a caller-chosen sentinel).
class FlatIntMap {
 public:
  void Reserve(size_t n);

  /// Returns the id of `key`, assigning the next dense id when absent.
  uint32_t FindOrInsert(int64_t key, bool* inserted);

  size_t size() const { return keys_dense_.size(); }
  int64_t KeyOf(uint32_t id) const { return keys_dense_[id]; }

 private:
  void Grow(size_t new_cap);

  std::vector<uint8_t> ctrl_;
  std::vector<int64_t> keys_;
  std::vector<uint32_t> slot_id_;
  std::vector<int64_t> keys_dense_;
  size_t cap_ = 0;
};

}  // namespace dashdb
