#include "common/value.h"

#include <cmath>
#include <cstdlib>

#include "common/datetime.h"

namespace dashdb {

int Value::Compare(const Value& other) const {
  // NULLs sort high and equal to each other.
  if (null_ && other.null_) return 0;
  if (null_) return 1;
  if (other.null_) return -1;
  if (type_ == TypeId::kVarchar && other.type_ == TypeId::kVarchar) {
    const std::string& a = AsString();
    const std::string& b = other.AsString();
    return a < b ? -1 : (a == b ? 0 : 1);
  }
  if (type_ == TypeId::kVarchar || other.type_ == TypeId::kVarchar) {
    // Cross-family comparison: compare display strings for determinism.
    std::string a = ToString();
    std::string b = other.ToString();
    return a < b ? -1 : (a == b ? 0 : 1);
  }
  if (type_ == TypeId::kDouble || other.type_ == TypeId::kDouble) {
    double a = AsDouble();
    double b = other.AsDouble();
    return a < b ? -1 : (a == b ? 0 : 1);
  }
  int64_t a = AsInt();
  int64_t b = other.AsInt();
  return a < b ? -1 : (a == b ? 0 : 1);
}

Result<Value> Value::CastTo(TypeId target) const {
  if (null_) return Value::Null(target);
  if (target == type_) return *this;
  switch (target) {
    case TypeId::kBoolean: {
      if (type_ == TypeId::kVarchar) {
        const std::string& s = AsString();
        if (s == "t" || s == "true" || s == "TRUE" || s == "1")
          return Value::Boolean(true);
        if (s == "f" || s == "false" || s == "FALSE" || s == "0")
          return Value::Boolean(false);
        return Status::InvalidArgument("cannot cast '" + s + "' to BOOLEAN");
      }
      return Value::Boolean(AsDouble() != 0.0);
    }
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kDecimal: {
      if (type_ == TypeId::kVarchar) {
        char* end = nullptr;
        const std::string& s = AsString();
        long long v = std::strtoll(s.c_str(), &end, 10);
        if (end == s.c_str() || (end && *end != '\0' && *end != '.')) {
          return Status::InvalidArgument("cannot cast '" + s + "' to integer");
        }
        if (*end == '.') {
          double d = std::strtod(s.c_str(), nullptr);
          v = static_cast<long long>(std::llround(d));
        }
        return Value(target, static_cast<int64_t>(v));
      }
      if (type_ == TypeId::kDouble) {
        return Value(target, static_cast<int64_t>(std::llround(AsDouble())));
      }
      return Value(target, AsInt());
    }
    case TypeId::kDouble: {
      if (type_ == TypeId::kVarchar) {
        char* end = nullptr;
        const std::string& s = AsString();
        double v = std::strtod(s.c_str(), &end);
        if (end == s.c_str()) {
          return Status::InvalidArgument("cannot cast '" + s + "' to DOUBLE");
        }
        return Value::Double(v);
      }
      return Value::Double(AsDouble());
    }
    case TypeId::kVarchar:
      return Value::String(ToString());
    case TypeId::kDate: {
      if (type_ == TypeId::kVarchar) {
        DASHDB_ASSIGN_OR_RETURN(int32_t days, ParseDate(AsString()));
        return Value::Date(days);
      }
      if (type_ == TypeId::kTimestamp) {
        int64_t secs = AsInt() / 1000000;
        int64_t days = secs / 86400;
        if (secs % 86400 < 0) days -= 1;
        return Value::Date(static_cast<int32_t>(days));
      }
      return Value::Date(static_cast<int32_t>(AsInt()));
    }
    case TypeId::kTimestamp: {
      if (type_ == TypeId::kVarchar) {
        DASHDB_ASSIGN_OR_RETURN(int64_t us, ParseTimestamp(AsString()));
        return Value::Timestamp(us);
      }
      if (type_ == TypeId::kDate) {
        return Value::Timestamp(AsInt() * int64_t{86400} * 1000000);
      }
      return Value::Timestamp(AsInt());
    }
  }
  return Status::Internal("unhandled cast target");
}

std::string Value::ToString() const {
  if (null_) return "NULL";
  switch (type_) {
    case TypeId::kBoolean:
      return AsBool() ? "true" : "false";
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kDecimal:
      return std::to_string(AsInt());
    case TypeId::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case TypeId::kVarchar:
      return AsString();
    case TypeId::kDate:
      return FormatDate(static_cast<int32_t>(AsInt()));
    case TypeId::kTimestamp:
      return FormatTimestamp(AsInt());
  }
  return "?";
}

}  // namespace dashdb
