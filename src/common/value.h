// Scalar runtime value: a typed, nullable variant used at API boundaries
// (SQL literals, result sets, expression constants). Vectorized execution
// uses ColumnVector instead; Value is the per-cell escape hatch.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"
#include "common/types.h"

namespace dashdb {

/// A typed, nullable scalar.
class Value {
 public:
  /// Constructs a NULL of unspecified type (kVarchar carrier).
  Value() : type_(TypeId::kVarchar), null_(true) {}

  static Value Null(TypeId t) {
    Value v;
    v.type_ = t;
    v.null_ = true;
    return v;
  }
  static Value Boolean(bool b) { return Value(TypeId::kBoolean, int64_t{b}); }
  static Value Int32(int32_t i) { return Value(TypeId::kInt32, int64_t{i}); }
  static Value Int64(int64_t i) { return Value(TypeId::kInt64, i); }
  static Value Double(double d) { return Value(TypeId::kDouble, d); }
  static Value String(std::string s) {
    return Value(TypeId::kVarchar, std::move(s));
  }
  /// `days` since 1970-01-01.
  static Value Date(int32_t days) { return Value(TypeId::kDate, int64_t{days}); }
  /// `micros` since the epoch.
  static Value Timestamp(int64_t micros) {
    return Value(TypeId::kTimestamp, micros);
  }
  /// Scaled integer decimal; scale is tracked by the column/expression type.
  static Value Decimal(int64_t scaled) {
    return Value(TypeId::kDecimal, scaled);
  }

  TypeId type() const { return type_; }
  bool is_null() const { return null_; }

  bool AsBool() const { return std::get<int64_t>(payload_) != 0; }
  int64_t AsInt() const { return std::get<int64_t>(payload_); }
  double AsDouble() const {
    if (std::holds_alternative<double>(payload_)) {
      return std::get<double>(payload_);
    }
    return static_cast<double>(std::get<int64_t>(payload_));
  }
  const std::string& AsString() const { return std::get<std::string>(payload_); }

  /// Total order used by ORDER BY / MIN / MAX; NULLs sort high. Comparing
  /// across incompatible type families compares on the numeric promotion.
  int Compare(const Value& other) const;

  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }

  /// Best-effort cast; Status on impossible conversions (e.g. 'abc' -> INT).
  Result<Value> CastTo(TypeId target) const;

  /// Display form ("NULL", "42", "2017-04-01", "'s'"-less raw text).
  std::string ToString() const;

 private:
  Value(TypeId t, int64_t i) : type_(t), null_(false), payload_(i) {}
  Value(TypeId t, double d) : type_(t), null_(false), payload_(d) {}
  Value(TypeId t, std::string s) : type_(t), null_(false), payload_(std::move(s)) {}

  TypeId type_;
  bool null_;
  std::variant<int64_t, double, std::string> payload_;
};

}  // namespace dashdb
