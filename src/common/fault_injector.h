// Deterministic fault injection (the exercised half of the paper's II.E HA
// story). Production code declares named fault points at the places a real
// deployment can break — a shard attempt on a failed node, a remote-store
// request, a buffer-pool page read — and tests/benches arm those points
// with triggers. Whether a given hit of a point fires is a pure function
// of (injector seed, point name, hit index), computed with the repo's
// fixed-algorithm Rng: a fault schedule is therefore byte-replayable from
// its seed alone, regardless of thread interleaving, which is what makes
// a failing schedule a bug report instead of a flake.
//
// Trigger model per armed point:
//   probability    chance each eligible hit fires (1.0 = always)
//   skip_hits      first N hits never fire (target "the Nth attempt")
//   max_fires      total fires allowed (-1 unlimited, 1 = one-shot)
//   stall_seconds  injected latency; with code == kOk the point only
//                  stalls (straggler injection), otherwise the stall
//                  precedes the injected error.
//
// Disarmed points cost one relaxed atomic load — fault points stay
// compiled into release binaries, as they must to be trustworthy.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace dashdb {

/// What an armed fault point injects and when it triggers.
struct FaultSpec {
  /// Injected error category; kOk means "stall only, then succeed".
  StatusCode code = StatusCode::kUnavailable;
  std::string message;        ///< appended to the injected status text
  double probability = 1.0;   ///< per-eligible-hit fire chance
  uint64_t skip_hits = 0;     ///< hits 1..skip_hits never fire
  int64_t max_fires = -1;     ///< total fires allowed; -1 = unlimited
  double stall_seconds = 0;   ///< injected latency before returning
};

/// Counters for one point since it was armed.
struct FaultPointStats {
  uint64_t hits = 0;
  uint64_t fires = 0;
};

/// One fired injection, for replay verification and failure logging.
struct FaultFireEvent {
  std::string point;
  uint64_t hit_index = 0;  ///< 1-based hit at which the point fired
};

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0) : seed_(seed) {}

  /// Clears every armed point and the fire log, and installs a new seed.
  /// Tests log this seed; re-running with it reproduces the schedule.
  void Reset(uint64_t seed);
  uint64_t seed() const;

  /// Test-fixture hook: disarm everything and zero the seed so a test
  /// running after a fault-armed one starts from the same state as one
  /// running first (ctest -j ordering must not change outcomes).
  void ResetForTest() { Reset(0); }

  void Arm(const std::string& point, FaultSpec spec);
  void Disarm(const std::string& point);

  /// True when at least one point is armed (lock-free fast path).
  bool enabled() const {
    return armed_points_.load(std::memory_order_relaxed) > 0;
  }

  /// Evaluates one hit of `point`. Returns OK unless the point is armed
  /// and this hit fires, in which case the injected Status (annotated
  /// with point name and hit index) comes back. Stalls, when configured,
  /// happen outside the registry lock.
  Status Evaluate(const std::string& point);

  FaultPointStats PointStats(const std::string& point) const;
  std::vector<FaultFireEvent> FireLog() const;

  /// Process-wide instance used by the built-in fault points.
  static FaultInjector& Global();

  /// Number of points currently armed (scoped-arm bookkeeping for tests).
  int armed_count() const {
    return armed_points_.load(std::memory_order_relaxed);
  }

 private:
  struct Point {
    FaultSpec spec;
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  mutable std::mutex mu_;
  uint64_t seed_;
  std::map<std::string, Point> points_;
  std::vector<FaultFireEvent> log_;
  std::atomic<int> armed_points_{0};
};

/// RAII fault arming for tests: arms `point` with `spec` on construction
/// (optionally re-seeding the injector first) and disarms it on scope exit,
/// even when an ASSERT bails out of the test body early. This replaces the
/// bare Arm(...) + trailing ResetForTest() pattern, which leaves the point
/// armed — and firing into every OTHER session of the process — whenever
/// the code between the two throws or returns. Nested scopes on distinct
/// points compose; the last scope out does not clear foreign points.
class ScopedFault {
 public:
  ScopedFault(std::string point, FaultSpec spec,
              FaultInjector* injector = &FaultInjector::Global())
      : injector_(injector), point_(std::move(point)) {
    injector_->Arm(point_, std::move(spec));
  }
  /// Re-seeds the injector (logging-friendly deterministic schedules), then
  /// arms. The seed persists past the scope; only the point is disarmed.
  ScopedFault(uint64_t seed, std::string point, FaultSpec spec,
              FaultInjector* injector = &FaultInjector::Global())
      : injector_(injector), point_(std::move(point)) {
    injector_->Reset(seed);
    injector_->Arm(point_, std::move(spec));
  }
  ~ScopedFault() { injector_->Disarm(point_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  const std::string& point() const { return point_; }

 private:
  FaultInjector* injector_;
  std::string point_;
};

}  // namespace dashdb
