// Lock-cheap metrics registry (observability substrate for every perf PR).
//
// Three instrument kinds, all updatable with relaxed atomics on the hot
// path: Counter (monotonic), Gauge (last-set signed value), Histogram
// (fixed bucket bounds chosen at registration). Instruments are registered
// once by name under a mutex and then live for the process lifetime, so
// production code caches the returned pointer and pays one atomic add per
// event afterwards — no map lookups, no locks, no allocation.
//
// Naming scheme (DESIGN.md "Observability"): dotted lowercase paths rooted
// at the subsystem, e.g. `exec.rows`, `bufferpool.hits`,
// `mpp.shard_retries`, `fluid.bytes_transferred`. Histograms expand in
// snapshots to `<name>.count`, `<name>.sum`, and `<name>.le_<bound>`.
//
// Snapshots flatten every instrument to (name -> int64) so tests and
// benches can diff two snapshots (SnapshotDelta) to get "what did this
// query do" without resetting global state. ResetForTest() zeroes values
// but keeps instrument objects alive: cached pointers stay valid across
// tests, which is what makes ctest -j ordering harmless.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dashdb {

/// Monotonic event counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-written signed value (pool bytes in use, alive nodes, ...).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Histogram with fixed, registration-time bucket upper bounds (inclusive);
/// an implicit overflow bucket catches everything past the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<int64_t> bounds);

  void Observe(int64_t v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<int64_t>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; last = overflow.
  std::vector<uint64_t> bucket_counts() const;
  void Reset();

 private:
  std::vector<int64_t> bounds_;  ///< ascending
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// Flattened point-in-time view of a registry: name -> value (histograms
/// expand to .count/.sum/.le_* entries).
using MetricSnapshot = std::map<std::string, int64_t>;

/// after - before, keeping only keys whose delta is non-zero (plus keys new
/// in `after`).
MetricSnapshot SnapshotDelta(const MetricSnapshot& before,
                             const MetricSnapshot& after);

class MetricRegistry {
 public:
  /// Returns the named instrument, registering it on first use. The pointer
  /// is valid for the registry's lifetime (process lifetime for Global()).
  /// Re-registering an existing name with a different kind returns nullptr
  /// (a naming-scheme bug the caller should surface, not mask).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` are ascending inclusive upper bounds; only the first
  /// registration's bounds apply.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<int64_t> bounds);

  MetricSnapshot Snapshot() const;

  /// JSON object keyed by metric name; histograms nest their buckets.
  std::string ToJson() const;

  /// Zeroes every instrument IN PLACE — registered pointers stay valid, so
  /// code that cached a Counter* keeps working after a test reset.
  void ResetForTest();

  /// Process-wide registry used by the built-in instrumentation.
  static MetricRegistry& Global();

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

/// The SystemMetrics() API: the global registry as JSON (bench_observability
/// dumps this into BENCH_observability.json).
std::string SystemMetricsJson();

/// Test-scoped metric observation without global resets. ResetForTest()
/// zeroes the process-wide registry, which silently corrupts any OTHER
/// session still executing in the same process — exactly the situation the
/// serving layer creates. A MetricDeltaScope instead snapshots the registry
/// at construction and reports per-name deltas on demand, so concurrent
/// test fixtures (and a server running in the background of one) can each
/// measure their own traffic. Counters from foreign sessions still leak
/// into a scope's delta if they overlap in time; scopes make assertions
/// *relative*, which is the property concurrent tests need.
class MetricDeltaScope {
 public:
  explicit MetricDeltaScope(MetricRegistry* reg = &MetricRegistry::Global())
      : reg_(reg), begin_(reg->Snapshot()) {}

  /// Delta of one metric since construction (0 when never registered).
  int64_t Delta(const std::string& name) const {
    MetricSnapshot now = reg_->Snapshot();
    auto it = now.find(name);
    if (it == now.end()) return 0;
    auto b = begin_.find(name);
    return it->second - (b == begin_.end() ? 0 : b->second);
  }

  /// All non-zero deltas since construction.
  MetricSnapshot Deltas() const {
    return SnapshotDelta(begin_, reg_->Snapshot());
  }

  /// Re-anchors the scope at the current values.
  void Reset() { begin_ = reg_->Snapshot(); }

 private:
  MetricRegistry* reg_;
  MetricSnapshot begin_;
};

}  // namespace dashdb
