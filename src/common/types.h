// SQL type system shared by catalog, storage, execution, and SQL layers.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"

namespace dashdb {

/// Physical/logical SQL column types supported by the engine.
///
/// DECIMAL is represented as a scaled int64 (scale carried by the column
/// definition); DATE is int32 days since 1970-01-01; TIMESTAMP is int64
/// microseconds since the epoch.
enum class TypeId : uint8_t {
  kBoolean = 0,
  kInt32,
  kInt64,
  kDouble,
  kVarchar,
  kDate,
  kTimestamp,
  kDecimal,
};

/// Returns the SQL-ish display name ("INTEGER", "VARCHAR", ...).
const char* TypeName(TypeId t);

/// True for types whose values are stored as integers (and are therefore
/// eligible for minus/frequency encoding on the integer domain).
inline bool IsIntegerBacked(TypeId t) {
  switch (t) {
    case TypeId::kBoolean:
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kDate:
    case TypeId::kTimestamp:
    case TypeId::kDecimal:
      return true;
    default:
      return false;
  }
}

inline bool IsNumeric(TypeId t) {
  return t == TypeId::kInt32 || t == TypeId::kInt64 || t == TypeId::kDouble ||
         t == TypeId::kDecimal;
}

/// Width in bytes of the in-memory fixed representation (VARCHAR excluded).
int FixedWidth(TypeId t);

/// Parses a SQL type name (dialect-inclusive: INT4, FLOAT8, VARCHAR2,
/// NUMBER, BPCHAR, ...) into a TypeId.
Result<TypeId> TypeFromName(const std::string& name);

}  // namespace dashdb
