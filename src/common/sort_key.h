// Normalized sort keys: every ORDER BY key list encodes, per row, into one
// memcmp-able byte string, so multi-key comparison inside the sort and
// merge inner loops is a single memcmp instead of a per-key typed switch.
//
// Encoding, per key part (see DESIGN.md "Parallel sort & Top-N"):
//
//   prefix   payload                         order
//   ------   -----------------------------   -------------------------------
//   0x00     int64: (v XOR sign bit), BE     two's-complement order
//   0x00     double: sign-flipped IEEE, BE   -inf < ... < +inf < NaN
//   0x00     varchar: 0x00 escaped as        bytewise string order, embedded
//            0x00 0xFF, terminated 0x00 0x00 NULs and prefixes correct
//   0x01     (none)                          NULL — sorts after any value
//
// NULLs therefore sort high (matching Value::Compare); doubles canonicalize
// -0.0 to +0.0 and every NaN to one quiet NaN, so comparator-equal cells
// encode to identical bytes (the property the stable run/merge sort relies
// on for byte-identity with the serial oracle). A DESC key complements all
// of its bytes, which reverses the order and puts NULLs first — exactly
// what flipping the comparator does.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/column_vector.h"

namespace dashdb {

/// Appends the order-preserving encoding of cell `row` of `cv` to `*out`.
void AppendNormalizedCell(const ColumnVector& cv, size_t row, bool desc,
                          std::string* out);

/// The normalized keys of a contiguous row range, arena-backed: one byte
/// blob plus per-row offsets. Rows are addressed 0..n) relative to the
/// range's start.
class NormalizedKeyColumn {
 public:
  /// Builds keys for rows [begin, end) of the given key columns. `desc`
  /// runs parallel to `key_cols`.
  void Build(const std::vector<const ColumnVector*>& key_cols,
             const std::vector<bool>& desc, size_t begin, size_t end);

  size_t size() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }

  const uint8_t* data(size_t i) const {
    return reinterpret_cast<const uint8_t*>(bytes_.data()) + offsets_[i];
  }
  size_t length(size_t i) const { return offsets_[i + 1] - offsets_[i]; }

  /// memcmp of key i against key j of `other`: <0, 0, >0.
  int Compare(size_t i, const NormalizedKeyColumn& other, size_t j) const {
    const size_t la = length(i), lb = other.length(j);
    const size_t n = la < lb ? la : lb;
    int c = std::memcmp(data(i), other.data(j), n);
    if (c != 0) return c;
    return la < lb ? -1 : (la == lb ? 0 : 1);
  }

  size_t byte_size() const { return bytes_.size() + offsets_.size() * 8; }

 private:
  std::string bytes_;
  std::vector<uint64_t> offsets_;
};

/// Tournament tree for k-way merge of pre-sorted streams: a complete
/// binary winner tree over next-pow2(k) leaves. The caller supplies a
/// strict "stream a's head sorts before stream b's" comparator over live
/// stream indices plus a liveness probe; after consuming the winner's head
/// row (or exhausting it), Replay() recomputes the single leaf-to-root
/// path, so each merged row costs ceil(log2 k) comparisons.
class TournamentTree {
 public:
  /// `wins(a, b)`: stream a's current head sorts strictly before stream
  /// b's (both live). `alive(s)`: stream s still has rows. Both must stay
  /// callable for the tree's lifetime.
  template <typename Wins, typename Alive>
  void Init(size_t k, const Wins& wins, const Alive& alive) {
    k_ = k;
    leaves_ = 1;
    while (leaves_ < k_) leaves_ <<= 1;
    if (k_ == 0) leaves_ = 0;
    nodes_.assign(2 * leaves_, -1);
    for (size_t s = 0; s < k_; ++s) {
      nodes_[leaves_ + s] = alive(s) ? static_cast<int>(s) : -1;
    }
    for (size_t n = leaves_ == 0 ? 0 : leaves_ - 1; n >= 1; --n) {
      nodes_[n] = Winner(nodes_[2 * n], nodes_[2 * n + 1], wins, alive);
    }
  }

  /// Index of the stream holding the smallest head, or -1 if all exhausted.
  int winner() const { return nodes_.empty() ? -1 : nodes_[1]; }

  /// Recomputes the path from stream `s`'s leaf to the root after its head
  /// changed (advanced or exhausted).
  template <typename Wins, typename Alive>
  void Replay(size_t s, const Wins& wins, const Alive& alive) {
    size_t n = leaves_ + s;
    nodes_[n] = alive(s) ? static_cast<int>(s) : -1;
    for (n /= 2; n >= 1; n /= 2) {
      nodes_[n] = Winner(nodes_[2 * n], nodes_[2 * n + 1], wins, alive);
    }
  }

 private:
  template <typename Wins, typename Alive>
  int Winner(int a, int b, const Wins& wins, const Alive& alive) const {
    const bool la = a != -1 && alive(static_cast<size_t>(a));
    const bool lb = b != -1 && alive(static_cast<size_t>(b));
    if (!la) return lb ? b : -1;
    if (!lb) return a;
    return wins(static_cast<size_t>(b), static_cast<size_t>(a)) ? b : a;
  }

  size_t k_ = 0;
  size_t leaves_ = 0;
  std::vector<int> nodes_;  ///< nodes_[1] = root; nodes_[leaves_+s] = leaf s
};

}  // namespace dashdb
