#include "common/query_context.h"

#include <string>

#include "common/fault_injector.h"
#include "common/metrics.h"

namespace dashdb {
namespace {

/// Deterministic budget-exhaustion drills arm this point (DESIGN.md "Fault
/// injection"): every Charge() evaluates one hit, so a FaultSpec with
/// skip_hits targets the Nth allocation of a query exactly.
constexpr const char* kAllocPressurePoint = "exec.alloc_pressure";

struct GovernorInstruments {
  Counter* cancelled;
  Counter* statement_timeouts;
  Counter* mem_charged_bytes;
  Counter* mem_budget_exceeded;
};

GovernorInstruments& GlobalGovernorInstruments() {
  auto& reg = MetricRegistry::Global();
  static GovernorInstruments in{
      reg.GetCounter("exec.cancelled"),
      reg.GetCounter("exec.statement_timeouts"),
      reg.GetCounter("exec.mem_charged_bytes"),
      reg.GetCounter("exec.mem_budget_exceeded"),
  };
  return in;
}

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void QueryContext::SetTimeout(double seconds) {
  if (seconds <= 0) {
    deadline_ns_.store(0, std::memory_order_relaxed);
    return;
  }
  deadline_ns_.store(NowNs() + static_cast<int64_t>(seconds * 1e9),
                     std::memory_order_relaxed);
}

Status QueryContext::CheckAlive() {
  QueryContext* root = Root();
  const uint64_t n = root->checks_.fetch_add(1, std::memory_order_relaxed) + 1;
  const uint64_t trip =
      root->cancel_after_checks_.load(std::memory_order_relaxed);
  if (trip != 0 && n >= trip) root->Cancel();

  int64_t now_ns = -1;
  for (QueryContext* c = this; c != nullptr; c = c->parent_) {
    if (c->cancelled_.load(std::memory_order_acquire)) {
      if (!root->cancel_counted_.exchange(true, std::memory_order_relaxed)) {
        GlobalGovernorInstruments().cancelled->Add(1);
      }
      return Status::Cancelled("query cancelled");
    }
    const int64_t dl = c->deadline_ns_.load(std::memory_order_relaxed);
    if (dl != 0) {
      if (now_ns < 0) now_ns = NowNs();
      if (now_ns >= dl) {
        // Sticky: once past the deadline every subsequent check (any
        // thread, any shard) agrees the query is dead.
        c->cancelled_.store(true, std::memory_order_release);
        if (!root->timeout_counted_.exchange(true,
                                             std::memory_order_relaxed)) {
          GlobalGovernorInstruments().statement_timeouts->Add(1);
        }
        return Status::Timeout("statement timeout exceeded");
      }
    }
  }
  return Status::OK();
}

void QueryContext::SetMemBudget(int64_t bytes) {
  Root()->mem_budget_.store(bytes > 0 ? bytes : 0, std::memory_order_relaxed);
}

int64_t QueryContext::mem_budget() const {
  return Root()->mem_budget_.load(std::memory_order_relaxed);
}

Status QueryContext::Charge(int64_t bytes, const char* what) {
  if (bytes <= 0) return Status::OK();
  QueryContext* root = Root();
  Status injected = FaultInjector::Global().Evaluate(kAllocPressurePoint);
  if (!injected.ok()) {
    GlobalGovernorInstruments().mem_budget_exceeded->Add(1);
    return injected.WithContext(std::string("allocation pressure in ") + what);
  }
  GlobalGovernorInstruments().mem_charged_bytes->Add(
      static_cast<uint64_t>(bytes));
  const int64_t used =
      root->mem_used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  const int64_t budget = root->mem_budget_.load(std::memory_order_relaxed);
  if (budget > 0 && used > budget) {
    root->mem_used_.fetch_sub(bytes, std::memory_order_relaxed);
    GlobalGovernorInstruments().mem_budget_exceeded->Add(1);
    return Status::ResourceExhausted(
        std::string(what) + " needs " + std::to_string(bytes) +
        " bytes but the query budget is " + std::to_string(budget) +
        " with " + std::to_string(used - bytes) + " in use");
  }
  // Racy-but-monotonic high-water mark: good enough for EXPLAIN ANALYZE.
  int64_t peak = root->mem_peak_.load(std::memory_order_relaxed);
  while (used > peak && !root->mem_peak_.compare_exchange_weak(
                            peak, used, std::memory_order_relaxed)) {
  }
  return Status::OK();
}

void QueryContext::Release(int64_t bytes) {
  if (bytes <= 0) return;
  Root()->mem_used_.fetch_sub(bytes, std::memory_order_relaxed);
}

int64_t QueryContext::mem_used() const {
  return Root()->mem_used_.load(std::memory_order_relaxed);
}

int64_t QueryContext::mem_peak() const {
  return Root()->mem_peak_.load(std::memory_order_relaxed);
}

}  // namespace dashdb
