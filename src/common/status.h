// Status / Result error-handling primitives, in the style of Arrow / RocksDB.
//
// All fallible operations across module boundaries return Status (or
// Result<T> when they produce a value). Exceptions are not thrown across
// public APIs.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace dashdb {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kAborted,
  kIOError,
  kParseError,       ///< SQL text could not be parsed.
  kSemanticError,    ///< SQL parsed but is semantically invalid.
  kUnavailable,      ///< A node/container/shard is currently down.
  kTimeout,          ///< An attempt exceeded its time budget.
  kCancelled,        ///< The statement was cancelled by its owner.
};

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// Retryability taxonomy: transient failures describe a moment, not the
/// request — re-executing the same deterministic work can succeed (a node
/// went down and its shards reassociated, a remote hiccuped, an attempt
/// ran past its budget). Everything else is fatal for the request.
bool StatusCodeIsTransient(StatusCode code);

/// A cheap, copyable success-or-error value. OK status carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(msg)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status SemanticError(std::string msg) {
    return Status(StatusCode::kSemanticError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->msg : kEmpty;
  }

  /// True when retrying the same deterministic work may succeed
  /// (kUnavailable / kTimeout / kAborted). OK is not transient.
  bool IsTransient() const { return !ok() && StatusCodeIsTransient(code()); }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsTimeout() const { return code() == StatusCode::kTimeout; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }

  /// Same code, message prefixed with `context` — lets layers annotate
  /// (which shard, which statement) without laundering retryability
  /// through a fresh string-typed Internal error.
  Status WithContext(const std::string& context) const {
    if (ok()) return *this;
    return Status(code(), context + ": " + message());
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<Rep> rep_;  // null == OK
};

/// A value-or-Status. Access to the value on an error Result aborts.
template <typename T>
class Result {
 public:
  Result(T value) : var_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : var_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(var_).ok() && "Result built from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(var_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(var_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(var_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(var_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> var_;
};

#define DASHDB_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::dashdb::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                        \
  } while (0)

#define DASHDB_CONCAT_IMPL(a, b) a##b
#define DASHDB_CONCAT(a, b) DASHDB_CONCAT_IMPL(a, b)

#define DASHDB_ASSIGN_OR_RETURN(lhs, rexpr)                         \
  auto DASHDB_CONCAT(_res_, __LINE__) = (rexpr);                    \
  if (!DASHDB_CONCAT(_res_, __LINE__).ok())                         \
    return DASHDB_CONCAT(_res_, __LINE__).status();                 \
  lhs = std::move(DASHDB_CONCAT(_res_, __LINE__)).value()

}  // namespace dashdb
