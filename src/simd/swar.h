// Software-SIMD predicate kernels (paper II.B.6).
//
// dashDB packs many bit-width-w codes into each 64-bit word; hardware SIMD
// only supports power-of-2 byte lanes, so BLU evaluates predicates with
// SWAR ("SIMD within a register") arithmetic that works for ANY code width
// 1..64: a comparison against a broadcast constant is answered for all
// lanes of a word in a handful of ALU ops, independent of the lane count.
//
// Kernels produce per-row match bits in a BitVector. Scalar reference
// kernels are provided for correctness tests and as the "no software SIMD"
// ablation baseline.
#pragma once

#include <cstdint>

#include "common/bitutil.h"

namespace dashdb {

/// SQL comparison operators shared by simd, exec, and sql layers.
enum class CmpOp : uint8_t { kEq = 0, kNe, kLt, kLe, kGt, kGe };

/// Returns `c` replicated into every lane of a (width, lanes)-packed word.
uint64_t SwarBroadcast(uint64_t c, int width, int lanes);

/// Evaluates `code OP c` over codes[0..n) of `arr`, setting bit i of *out
/// for every matching row. *out must be presized to n; bits are OR-set
/// (callers start from a cleared vector).
void SwarCompare(const BitPackedArray& arr, size_t n, CmpOp op, uint64_t c,
                 BitVector* out);

/// Evaluates `lo <= code <= hi` (inclusive band, the compiled form of
/// BETWEEN and of range predicates translated into the code domain).
void SwarBetween(const BitPackedArray& arr, size_t n, uint64_t lo, uint64_t hi,
                 BitVector* out);

/// Counts matches without materializing a bitmap (fast COUNT(*) path).
size_t SwarCount(const BitPackedArray& arr, size_t n, CmpOp op, uint64_t c);

/// Scalar (decode-then-compare) reference implementations.
void ScalarCompare(const BitPackedArray& arr, size_t n, CmpOp op, uint64_t c,
                   BitVector* out);
void ScalarBetween(const BitPackedArray& arr, size_t n, uint64_t lo,
                   uint64_t hi, BitVector* out);

}  // namespace dashdb
