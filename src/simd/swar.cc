#include "simd/swar.h"

#include <bit>
#include <cassert>

namespace dashdb {

namespace {

/// Per-width constant masks for SWAR arithmetic.
struct LaneMasks {
  uint64_t lsb;  ///< bit (i*w) set for each lane i
  uint64_t msb;  ///< bit (i*w + w-1) set for each lane i
  int width;
  int lanes;
};

LaneMasks MakeMasks(int width, int lanes) {
  LaneMasks m;
  m.width = width;
  m.lanes = lanes;
  m.lsb = 0;
  for (int i = 0; i < lanes; ++i) m.lsb |= uint64_t{1} << (i * width);
  m.msb = width == 1 ? m.lsb : m.lsb << (width - 1);
  return m;
}

/// Per-lane MSB set iff lane of x >= lane of y (unsigned), for all lanes at
/// once. Standard SWAR comparison: split each lane into MSB + low bits; the
/// borrow-free subtraction (x|H) - (y&~H) answers the low-bits comparison.
inline uint64_t LaneGe(uint64_t x, uint64_t y, const LaneMasks& m) {
  uint64_t t = (x | m.msb) - (y & ~m.msb);  // MSB lane bit = (xl >= yl)
  uint64_t gt = x & ~y & m.msb;             // xh=1, yh=0  ->  x > y
  uint64_t eq = ~(x ^ y) & m.msb;           // xh == yh
  return gt | (eq & t);
}

/// Per-lane MSB set iff lane of v is all-zero.
inline uint64_t LaneZero(uint64_t v, const LaneMasks& m) {
  uint64_t low_nonzero = ((v & ~m.msb) + ~m.msb) & m.msb;  // MSB=1 iff low!=0
  uint64_t nonzero = (low_nonzero | v) & m.msb;
  return ~nonzero & m.msb;
}

/// Match-mask (MSB bits) for `x OP c_bcast` over one packed word.
inline uint64_t MatchWord(uint64_t x, CmpOp op, uint64_t c_bcast,
                          const LaneMasks& m) {
  switch (op) {
    case CmpOp::kEq:
      return LaneZero(x ^ c_bcast, m);
    case CmpOp::kNe:
      return ~LaneZero(x ^ c_bcast, m) & m.msb;
    case CmpOp::kGe:
      return LaneGe(x, c_bcast, m);
    case CmpOp::kLe:
      return LaneGe(c_bcast, x, m);
    case CmpOp::kGt:
      return ~LaneGe(c_bcast, x, m) & m.msb;
    case CmpOp::kLt:
      return ~LaneGe(x, c_bcast, m) & m.msb;
  }
  return 0;
}

/// MSB-mask covering only the first `valid` lanes (tail-word clamp).
inline uint64_t ValidMask(const LaneMasks& m, int valid) {
  if (valid >= m.lanes) return m.msb;
  uint64_t out = 0;
  for (int i = 0; i < valid; ++i) {
    out |= uint64_t{1} << (i * m.width + m.width - 1);
  }
  return out;
}

/// Scatters match-mask MSB bits into row positions of `out`.
inline void EmitMatches(uint64_t match, size_t base_row, int width,
                        BitVector* out) {
  while (match) {
    int p = std::countr_zero(match);
    size_t lane = static_cast<size_t>(p) / width;
    out->Set(base_row + lane);
    match &= match - 1;
  }
}

}  // namespace

uint64_t SwarBroadcast(uint64_t c, int width, int lanes) {
  uint64_t out = 0;
  for (int i = 0; i < lanes; ++i) out |= c << (i * width);
  return out;
}

void SwarCompare(const BitPackedArray& arr, size_t n, CmpOp op, uint64_t c,
                 BitVector* out) {
  assert(out->size() >= n);
  const int w = arr.bit_width();
  const int k = arr.codes_per_word();
  const LaneMasks m = MakeMasks(w, k);
  const uint64_t cb = SwarBroadcast(c, w, k);
  const uint64_t* words = arr.words();
  const size_t num_words = arr.word_count();
  for (size_t wi = 0; wi < num_words; ++wi) {
    uint64_t match = MatchWord(words[wi], op, cb, m);
    size_t base = wi * static_cast<size_t>(k);
    if (base + k > n) match &= ValidMask(m, static_cast<int>(n - base));
    EmitMatches(match, base, w, out);
  }
}

void SwarBetween(const BitPackedArray& arr, size_t n, uint64_t lo, uint64_t hi,
                 BitVector* out) {
  assert(out->size() >= n);
  const int w = arr.bit_width();
  const int k = arr.codes_per_word();
  const LaneMasks m = MakeMasks(w, k);
  const uint64_t lob = SwarBroadcast(lo, w, k);
  const uint64_t hib = SwarBroadcast(hi, w, k);
  const uint64_t* words = arr.words();
  const size_t num_words = arr.word_count();
  for (size_t wi = 0; wi < num_words; ++wi) {
    uint64_t x = words[wi];
    uint64_t match = LaneGe(x, lob, m) & LaneGe(hib, x, m);
    size_t base = wi * static_cast<size_t>(k);
    if (base + k > n) match &= ValidMask(m, static_cast<int>(n - base));
    EmitMatches(match, base, w, out);
  }
}

size_t SwarCount(const BitPackedArray& arr, size_t n, CmpOp op, uint64_t c) {
  const int w = arr.bit_width();
  const int k = arr.codes_per_word();
  const LaneMasks m = MakeMasks(w, k);
  const uint64_t cb = SwarBroadcast(c, w, k);
  const uint64_t* words = arr.words();
  const size_t num_words = arr.word_count();
  size_t count = 0;
  for (size_t wi = 0; wi < num_words; ++wi) {
    uint64_t match = MatchWord(words[wi], op, cb, m);
    size_t base = wi * static_cast<size_t>(k);
    if (base + k > n) match &= ValidMask(m, static_cast<int>(n - base));
    count += std::popcount(match);
  }
  return count;
}

namespace {
inline bool ScalarMatch(uint64_t v, CmpOp op, uint64_t c) {
  switch (op) {
    case CmpOp::kEq: return v == c;
    case CmpOp::kNe: return v != c;
    case CmpOp::kLt: return v < c;
    case CmpOp::kLe: return v <= c;
    case CmpOp::kGt: return v > c;
    case CmpOp::kGe: return v >= c;
  }
  return false;
}
}  // namespace

void ScalarCompare(const BitPackedArray& arr, size_t n, CmpOp op, uint64_t c,
                   BitVector* out) {
  for (size_t i = 0; i < n; ++i) {
    if (ScalarMatch(arr.Get(i), op, c)) out->Set(i);
  }
}

void ScalarBetween(const BitPackedArray& arr, size_t n, uint64_t lo,
                   uint64_t hi, BitVector* out) {
  for (size_t i = 0; i < n; ++i) {
    uint64_t v = arr.Get(i);
    if (v >= lo && v <= hi) out->Set(i);
  }
}

}  // namespace dashdb
