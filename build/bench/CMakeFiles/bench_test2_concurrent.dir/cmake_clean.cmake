file(REMOVE_RECURSE
  "CMakeFiles/bench_test2_concurrent.dir/bench_test2_concurrent.cc.o"
  "CMakeFiles/bench_test2_concurrent.dir/bench_test2_concurrent.cc.o.d"
  "bench_test2_concurrent"
  "bench_test2_concurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_test2_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
