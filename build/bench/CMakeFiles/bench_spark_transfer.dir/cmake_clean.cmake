file(REMOVE_RECURSE
  "CMakeFiles/bench_spark_transfer.dir/bench_spark_transfer.cc.o"
  "CMakeFiles/bench_spark_transfer.dir/bench_spark_transfer.cc.o.d"
  "bench_spark_transfer"
  "bench_spark_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spark_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
