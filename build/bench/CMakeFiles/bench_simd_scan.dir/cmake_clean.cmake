file(REMOVE_RECURSE
  "CMakeFiles/bench_simd_scan.dir/bench_simd_scan.cc.o"
  "CMakeFiles/bench_simd_scan.dir/bench_simd_scan.cc.o.d"
  "bench_simd_scan"
  "bench_simd_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simd_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
