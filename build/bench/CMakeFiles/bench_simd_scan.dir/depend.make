# Empty dependencies file for bench_simd_scan.
# This may be replaced when dependencies are built.
