file(REMOVE_RECURSE
  "libdashdb_workloads.a"
)
