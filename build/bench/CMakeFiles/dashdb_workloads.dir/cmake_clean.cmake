file(REMOVE_RECURSE
  "CMakeFiles/dashdb_workloads.dir/workloads/customer_workload.cc.o"
  "CMakeFiles/dashdb_workloads.dir/workloads/customer_workload.cc.o.d"
  "CMakeFiles/dashdb_workloads.dir/workloads/tpcds_mini.cc.o"
  "CMakeFiles/dashdb_workloads.dir/workloads/tpcds_mini.cc.o.d"
  "libdashdb_workloads.a"
  "libdashdb_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dashdb_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
