# Empty dependencies file for dashdb_workloads.
# This may be replaced when dependencies are built.
