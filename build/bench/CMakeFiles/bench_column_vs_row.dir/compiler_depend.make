# Empty compiler generated dependencies file for bench_column_vs_row.
# This may be replaced when dependencies are built.
