file(REMOVE_RECURSE
  "CMakeFiles/bench_column_vs_row.dir/bench_column_vs_row.cc.o"
  "CMakeFiles/bench_column_vs_row.dir/bench_column_vs_row.cc.o.d"
  "bench_column_vs_row"
  "bench_column_vs_row.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_column_vs_row.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
