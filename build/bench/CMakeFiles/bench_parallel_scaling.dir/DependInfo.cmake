
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_parallel_scaling.cc" "bench/CMakeFiles/bench_parallel_scaling.dir/bench_parallel_scaling.cc.o" "gcc" "bench/CMakeFiles/bench_parallel_scaling.dir/bench_parallel_scaling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/dashdb_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dashdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/deploy/CMakeFiles/dashdb_deploy.dir/DependInfo.cmake"
  "/root/repo/build/src/spark/CMakeFiles/dashdb_spark.dir/DependInfo.cmake"
  "/root/repo/build/src/mpp/CMakeFiles/dashdb_mpp.dir/DependInfo.cmake"
  "/root/repo/build/src/fluid/CMakeFiles/dashdb_fluid.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/dashdb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/dashdb_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dashdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/dashdb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/synopsis/CMakeFiles/dashdb_synopsis.dir/DependInfo.cmake"
  "/root/repo/build/src/compression/CMakeFiles/dashdb_compression.dir/DependInfo.cmake"
  "/root/repo/build/src/bufferpool/CMakeFiles/dashdb_bufferpool.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/dashdb_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dashdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
