# Empty compiler generated dependencies file for bench_test4_cloud_throughput.
# This may be replaced when dependencies are built.
