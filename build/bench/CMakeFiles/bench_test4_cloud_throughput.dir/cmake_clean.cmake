file(REMOVE_RECURSE
  "CMakeFiles/bench_test4_cloud_throughput.dir/bench_test4_cloud_throughput.cc.o"
  "CMakeFiles/bench_test4_cloud_throughput.dir/bench_test4_cloud_throughput.cc.o.d"
  "bench_test4_cloud_throughput"
  "bench_test4_cloud_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_test4_cloud_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
