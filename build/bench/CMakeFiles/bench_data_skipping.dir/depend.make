# Empty dependencies file for bench_data_skipping.
# This may be replaced when dependencies are built.
