file(REMOVE_RECURSE
  "CMakeFiles/bench_bufferpool.dir/bench_bufferpool.cc.o"
  "CMakeFiles/bench_bufferpool.dir/bench_bufferpool.cc.o.d"
  "bench_bufferpool"
  "bench_bufferpool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bufferpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
