file(REMOVE_RECURSE
  "CMakeFiles/bench_test1_customer_serial.dir/bench_test1_customer_serial.cc.o"
  "CMakeFiles/bench_test1_customer_serial.dir/bench_test1_customer_serial.cc.o.d"
  "bench_test1_customer_serial"
  "bench_test1_customer_serial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_test1_customer_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
