# Empty dependencies file for bench_test1_customer_serial.
# This may be replaced when dependencies are built.
