# Empty dependencies file for bench_test3_tpcds.
# This may be replaced when dependencies are built.
