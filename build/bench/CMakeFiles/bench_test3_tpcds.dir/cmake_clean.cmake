file(REMOVE_RECURSE
  "CMakeFiles/bench_test3_tpcds.dir/bench_test3_tpcds.cc.o"
  "CMakeFiles/bench_test3_tpcds.dir/bench_test3_tpcds.cc.o.d"
  "bench_test3_tpcds"
  "bench_test3_tpcds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_test3_tpcds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
