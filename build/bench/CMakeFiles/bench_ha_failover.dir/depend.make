# Empty dependencies file for bench_ha_failover.
# This may be replaced when dependencies are built.
