file(REMOVE_RECURSE
  "CMakeFiles/bench_mpp_scaling.dir/bench_mpp_scaling.cc.o"
  "CMakeFiles/bench_mpp_scaling.dir/bench_mpp_scaling.cc.o.d"
  "bench_mpp_scaling"
  "bench_mpp_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mpp_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
