# Empty compiler generated dependencies file for bench_mpp_scaling.
# This may be replaced when dependencies are built.
