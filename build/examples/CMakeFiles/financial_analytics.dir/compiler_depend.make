# Empty compiler generated dependencies file for financial_analytics.
# This may be replaced when dependencies are built.
