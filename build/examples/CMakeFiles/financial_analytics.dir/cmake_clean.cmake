file(REMOVE_RECURSE
  "CMakeFiles/financial_analytics.dir/financial_analytics.cpp.o"
  "CMakeFiles/financial_analytics.dir/financial_analytics.cpp.o.d"
  "financial_analytics"
  "financial_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/financial_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
