# Empty compiler generated dependencies file for spark_ml.
# This may be replaced when dependencies are built.
