file(REMOVE_RECURSE
  "CMakeFiles/spark_ml.dir/spark_ml.cpp.o"
  "CMakeFiles/spark_ml.dir/spark_ml.cpp.o.d"
  "spark_ml"
  "spark_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spark_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
