file(REMOVE_RECURSE
  "CMakeFiles/dashdb_deploy.dir/autoconfig.cc.o"
  "CMakeFiles/dashdb_deploy.dir/autoconfig.cc.o.d"
  "CMakeFiles/dashdb_deploy.dir/container.cc.o"
  "CMakeFiles/dashdb_deploy.dir/container.cc.o.d"
  "CMakeFiles/dashdb_deploy.dir/hardware.cc.o"
  "CMakeFiles/dashdb_deploy.dir/hardware.cc.o.d"
  "libdashdb_deploy.a"
  "libdashdb_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dashdb_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
