file(REMOVE_RECURSE
  "libdashdb_deploy.a"
)
