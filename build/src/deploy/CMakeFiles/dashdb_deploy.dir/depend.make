# Empty dependencies file for dashdb_deploy.
# This may be replaced when dependencies are built.
