
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/deploy/autoconfig.cc" "src/deploy/CMakeFiles/dashdb_deploy.dir/autoconfig.cc.o" "gcc" "src/deploy/CMakeFiles/dashdb_deploy.dir/autoconfig.cc.o.d"
  "/root/repo/src/deploy/container.cc" "src/deploy/CMakeFiles/dashdb_deploy.dir/container.cc.o" "gcc" "src/deploy/CMakeFiles/dashdb_deploy.dir/container.cc.o.d"
  "/root/repo/src/deploy/hardware.cc" "src/deploy/CMakeFiles/dashdb_deploy.dir/hardware.cc.o" "gcc" "src/deploy/CMakeFiles/dashdb_deploy.dir/hardware.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dashdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/dashdb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dashdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/bufferpool/CMakeFiles/dashdb_bufferpool.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/dashdb_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/dashdb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/synopsis/CMakeFiles/dashdb_synopsis.dir/DependInfo.cmake"
  "/root/repo/build/src/compression/CMakeFiles/dashdb_compression.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/dashdb_simd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
