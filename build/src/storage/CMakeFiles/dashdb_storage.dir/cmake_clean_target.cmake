file(REMOVE_RECURSE
  "libdashdb_storage.a"
)
