file(REMOVE_RECURSE
  "CMakeFiles/dashdb_storage.dir/btree.cc.o"
  "CMakeFiles/dashdb_storage.dir/btree.cc.o.d"
  "CMakeFiles/dashdb_storage.dir/clusterfs.cc.o"
  "CMakeFiles/dashdb_storage.dir/clusterfs.cc.o.d"
  "CMakeFiles/dashdb_storage.dir/column_page.cc.o"
  "CMakeFiles/dashdb_storage.dir/column_page.cc.o.d"
  "CMakeFiles/dashdb_storage.dir/column_table.cc.o"
  "CMakeFiles/dashdb_storage.dir/column_table.cc.o.d"
  "CMakeFiles/dashdb_storage.dir/row_table.cc.o"
  "CMakeFiles/dashdb_storage.dir/row_table.cc.o.d"
  "libdashdb_storage.a"
  "libdashdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dashdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
