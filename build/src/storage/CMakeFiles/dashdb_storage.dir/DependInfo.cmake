
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/btree.cc" "src/storage/CMakeFiles/dashdb_storage.dir/btree.cc.o" "gcc" "src/storage/CMakeFiles/dashdb_storage.dir/btree.cc.o.d"
  "/root/repo/src/storage/clusterfs.cc" "src/storage/CMakeFiles/dashdb_storage.dir/clusterfs.cc.o" "gcc" "src/storage/CMakeFiles/dashdb_storage.dir/clusterfs.cc.o.d"
  "/root/repo/src/storage/column_page.cc" "src/storage/CMakeFiles/dashdb_storage.dir/column_page.cc.o" "gcc" "src/storage/CMakeFiles/dashdb_storage.dir/column_page.cc.o.d"
  "/root/repo/src/storage/column_table.cc" "src/storage/CMakeFiles/dashdb_storage.dir/column_table.cc.o" "gcc" "src/storage/CMakeFiles/dashdb_storage.dir/column_table.cc.o.d"
  "/root/repo/src/storage/row_table.cc" "src/storage/CMakeFiles/dashdb_storage.dir/row_table.cc.o" "gcc" "src/storage/CMakeFiles/dashdb_storage.dir/row_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dashdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/dashdb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/compression/CMakeFiles/dashdb_compression.dir/DependInfo.cmake"
  "/root/repo/build/src/synopsis/CMakeFiles/dashdb_synopsis.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/dashdb_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/bufferpool/CMakeFiles/dashdb_bufferpool.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
