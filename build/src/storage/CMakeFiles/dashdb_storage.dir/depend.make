# Empty dependencies file for dashdb_storage.
# This may be replaced when dependencies are built.
