file(REMOVE_RECURSE
  "CMakeFiles/dashdb_mpp.dir/mpp.cc.o"
  "CMakeFiles/dashdb_mpp.dir/mpp.cc.o.d"
  "CMakeFiles/dashdb_mpp.dir/portability.cc.o"
  "CMakeFiles/dashdb_mpp.dir/portability.cc.o.d"
  "CMakeFiles/dashdb_mpp.dir/topology.cc.o"
  "CMakeFiles/dashdb_mpp.dir/topology.cc.o.d"
  "libdashdb_mpp.a"
  "libdashdb_mpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dashdb_mpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
