# Empty compiler generated dependencies file for dashdb_mpp.
# This may be replaced when dependencies are built.
