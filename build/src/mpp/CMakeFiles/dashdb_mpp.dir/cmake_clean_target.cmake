file(REMOVE_RECURSE
  "libdashdb_mpp.a"
)
