# Empty dependencies file for dashdb_common.
# This may be replaced when dependencies are built.
