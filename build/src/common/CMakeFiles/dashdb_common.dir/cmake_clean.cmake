file(REMOVE_RECURSE
  "CMakeFiles/dashdb_common.dir/datetime.cc.o"
  "CMakeFiles/dashdb_common.dir/datetime.cc.o.d"
  "CMakeFiles/dashdb_common.dir/status.cc.o"
  "CMakeFiles/dashdb_common.dir/status.cc.o.d"
  "CMakeFiles/dashdb_common.dir/threadpool.cc.o"
  "CMakeFiles/dashdb_common.dir/threadpool.cc.o.d"
  "CMakeFiles/dashdb_common.dir/types.cc.o"
  "CMakeFiles/dashdb_common.dir/types.cc.o.d"
  "CMakeFiles/dashdb_common.dir/value.cc.o"
  "CMakeFiles/dashdb_common.dir/value.cc.o.d"
  "libdashdb_common.a"
  "libdashdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dashdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
