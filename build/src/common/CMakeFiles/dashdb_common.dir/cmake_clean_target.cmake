file(REMOVE_RECURSE
  "libdashdb_common.a"
)
