# Empty compiler generated dependencies file for dashdb_core.
# This may be replaced when dependencies are built.
