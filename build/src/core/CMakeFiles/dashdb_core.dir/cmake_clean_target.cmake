file(REMOVE_RECURSE
  "libdashdb_core.a"
)
