file(REMOVE_RECURSE
  "CMakeFiles/dashdb_core.dir/dashdb.cc.o"
  "CMakeFiles/dashdb_core.dir/dashdb.cc.o.d"
  "libdashdb_core.a"
  "libdashdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dashdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
