file(REMOVE_RECURSE
  "libdashdb_sql.a"
)
