file(REMOVE_RECURSE
  "CMakeFiles/dashdb_sql.dir/binder.cc.o"
  "CMakeFiles/dashdb_sql.dir/binder.cc.o.d"
  "CMakeFiles/dashdb_sql.dir/engine.cc.o"
  "CMakeFiles/dashdb_sql.dir/engine.cc.o.d"
  "CMakeFiles/dashdb_sql.dir/lexer.cc.o"
  "CMakeFiles/dashdb_sql.dir/lexer.cc.o.d"
  "CMakeFiles/dashdb_sql.dir/parser.cc.o"
  "CMakeFiles/dashdb_sql.dir/parser.cc.o.d"
  "libdashdb_sql.a"
  "libdashdb_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dashdb_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
