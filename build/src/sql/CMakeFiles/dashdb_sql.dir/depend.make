# Empty dependencies file for dashdb_sql.
# This may be replaced when dependencies are built.
