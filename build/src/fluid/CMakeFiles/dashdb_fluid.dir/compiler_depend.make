# Empty compiler generated dependencies file for dashdb_fluid.
# This may be replaced when dependencies are built.
