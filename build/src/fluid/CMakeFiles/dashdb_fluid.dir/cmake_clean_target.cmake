file(REMOVE_RECURSE
  "libdashdb_fluid.a"
)
