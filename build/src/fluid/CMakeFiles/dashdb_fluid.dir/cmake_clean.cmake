file(REMOVE_RECURSE
  "CMakeFiles/dashdb_fluid.dir/nickname.cc.o"
  "CMakeFiles/dashdb_fluid.dir/nickname.cc.o.d"
  "CMakeFiles/dashdb_fluid.dir/remote_store.cc.o"
  "CMakeFiles/dashdb_fluid.dir/remote_store.cc.o.d"
  "libdashdb_fluid.a"
  "libdashdb_fluid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dashdb_fluid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
