file(REMOVE_RECURSE
  "libdashdb_synopsis.a"
)
