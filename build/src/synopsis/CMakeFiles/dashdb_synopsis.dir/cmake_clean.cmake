file(REMOVE_RECURSE
  "CMakeFiles/dashdb_synopsis.dir/synopsis.cc.o"
  "CMakeFiles/dashdb_synopsis.dir/synopsis.cc.o.d"
  "libdashdb_synopsis.a"
  "libdashdb_synopsis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dashdb_synopsis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
