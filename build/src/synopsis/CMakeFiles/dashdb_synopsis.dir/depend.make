# Empty dependencies file for dashdb_synopsis.
# This may be replaced when dependencies are built.
