# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("catalog")
subdirs("compression")
subdirs("storage")
subdirs("synopsis")
subdirs("bufferpool")
subdirs("simd")
subdirs("exec")
subdirs("sql")
subdirs("mpp")
subdirs("deploy")
subdirs("spark")
subdirs("fluid")
subdirs("core")
