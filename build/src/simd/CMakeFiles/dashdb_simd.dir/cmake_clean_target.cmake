file(REMOVE_RECURSE
  "libdashdb_simd.a"
)
