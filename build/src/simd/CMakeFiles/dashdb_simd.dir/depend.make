# Empty dependencies file for dashdb_simd.
# This may be replaced when dependencies are built.
