file(REMOVE_RECURSE
  "CMakeFiles/dashdb_simd.dir/swar.cc.o"
  "CMakeFiles/dashdb_simd.dir/swar.cc.o.d"
  "libdashdb_simd.a"
  "libdashdb_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dashdb_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
