file(REMOVE_RECURSE
  "libdashdb_spark.a"
)
