# Empty dependencies file for dashdb_spark.
# This may be replaced when dependencies are built.
