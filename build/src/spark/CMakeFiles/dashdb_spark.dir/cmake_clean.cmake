file(REMOVE_RECURSE
  "CMakeFiles/dashdb_spark.dir/connector.cc.o"
  "CMakeFiles/dashdb_spark.dir/connector.cc.o.d"
  "CMakeFiles/dashdb_spark.dir/dataset.cc.o"
  "CMakeFiles/dashdb_spark.dir/dataset.cc.o.d"
  "CMakeFiles/dashdb_spark.dir/dispatcher.cc.o"
  "CMakeFiles/dashdb_spark.dir/dispatcher.cc.o.d"
  "CMakeFiles/dashdb_spark.dir/glm.cc.o"
  "CMakeFiles/dashdb_spark.dir/glm.cc.o.d"
  "libdashdb_spark.a"
  "libdashdb_spark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dashdb_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
