# Empty compiler generated dependencies file for dashdb_catalog.
# This may be replaced when dependencies are built.
