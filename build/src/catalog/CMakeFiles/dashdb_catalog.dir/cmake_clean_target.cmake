file(REMOVE_RECURSE
  "libdashdb_catalog.a"
)
