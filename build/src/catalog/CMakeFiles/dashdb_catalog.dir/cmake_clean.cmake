file(REMOVE_RECURSE
  "CMakeFiles/dashdb_catalog.dir/catalog.cc.o"
  "CMakeFiles/dashdb_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/dashdb_catalog.dir/schema.cc.o"
  "CMakeFiles/dashdb_catalog.dir/schema.cc.o.d"
  "libdashdb_catalog.a"
  "libdashdb_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dashdb_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
