file(REMOVE_RECURSE
  "CMakeFiles/dashdb_compression.dir/for_encoding.cc.o"
  "CMakeFiles/dashdb_compression.dir/for_encoding.cc.o.d"
  "CMakeFiles/dashdb_compression.dir/legacy.cc.o"
  "CMakeFiles/dashdb_compression.dir/legacy.cc.o.d"
  "CMakeFiles/dashdb_compression.dir/prefix.cc.o"
  "CMakeFiles/dashdb_compression.dir/prefix.cc.o.d"
  "CMakeFiles/dashdb_compression.dir/stats.cc.o"
  "CMakeFiles/dashdb_compression.dir/stats.cc.o.d"
  "libdashdb_compression.a"
  "libdashdb_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dashdb_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
