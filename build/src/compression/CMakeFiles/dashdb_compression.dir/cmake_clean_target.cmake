file(REMOVE_RECURSE
  "libdashdb_compression.a"
)
