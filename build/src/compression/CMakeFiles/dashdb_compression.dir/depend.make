# Empty dependencies file for dashdb_compression.
# This may be replaced when dependencies are built.
