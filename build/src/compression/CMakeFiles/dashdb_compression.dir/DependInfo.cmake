
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compression/for_encoding.cc" "src/compression/CMakeFiles/dashdb_compression.dir/for_encoding.cc.o" "gcc" "src/compression/CMakeFiles/dashdb_compression.dir/for_encoding.cc.o.d"
  "/root/repo/src/compression/legacy.cc" "src/compression/CMakeFiles/dashdb_compression.dir/legacy.cc.o" "gcc" "src/compression/CMakeFiles/dashdb_compression.dir/legacy.cc.o.d"
  "/root/repo/src/compression/prefix.cc" "src/compression/CMakeFiles/dashdb_compression.dir/prefix.cc.o" "gcc" "src/compression/CMakeFiles/dashdb_compression.dir/prefix.cc.o.d"
  "/root/repo/src/compression/stats.cc" "src/compression/CMakeFiles/dashdb_compression.dir/stats.cc.o" "gcc" "src/compression/CMakeFiles/dashdb_compression.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dashdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
