file(REMOVE_RECURSE
  "libdashdb_exec.a"
)
