# Empty compiler generated dependencies file for dashdb_exec.
# This may be replaced when dependencies are built.
