file(REMOVE_RECURSE
  "CMakeFiles/dashdb_exec.dir/agg.cc.o"
  "CMakeFiles/dashdb_exec.dir/agg.cc.o.d"
  "CMakeFiles/dashdb_exec.dir/expr.cc.o"
  "CMakeFiles/dashdb_exec.dir/expr.cc.o.d"
  "CMakeFiles/dashdb_exec.dir/functions.cc.o"
  "CMakeFiles/dashdb_exec.dir/functions.cc.o.d"
  "CMakeFiles/dashdb_exec.dir/geo.cc.o"
  "CMakeFiles/dashdb_exec.dir/geo.cc.o.d"
  "CMakeFiles/dashdb_exec.dir/json.cc.o"
  "CMakeFiles/dashdb_exec.dir/json.cc.o.d"
  "CMakeFiles/dashdb_exec.dir/operator.cc.o"
  "CMakeFiles/dashdb_exec.dir/operator.cc.o.d"
  "libdashdb_exec.a"
  "libdashdb_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dashdb_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
