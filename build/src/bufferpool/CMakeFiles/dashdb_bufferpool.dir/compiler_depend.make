# Empty compiler generated dependencies file for dashdb_bufferpool.
# This may be replaced when dependencies are built.
