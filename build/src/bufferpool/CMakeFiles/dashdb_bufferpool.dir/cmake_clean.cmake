file(REMOVE_RECURSE
  "CMakeFiles/dashdb_bufferpool.dir/bufferpool.cc.o"
  "CMakeFiles/dashdb_bufferpool.dir/bufferpool.cc.o.d"
  "libdashdb_bufferpool.a"
  "libdashdb_bufferpool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dashdb_bufferpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
