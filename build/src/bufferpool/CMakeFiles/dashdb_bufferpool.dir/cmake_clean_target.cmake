file(REMOVE_RECURSE
  "libdashdb_bufferpool.a"
)
