# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/compression_test[1]_include.cmake")
include("/root/repo/build/tests/simd_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/synopsis_test[1]_include.cmake")
include("/root/repo/build/tests/bufferpool_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/mpp_test[1]_include.cmake")
include("/root/repo/build/tests/deploy_test[1]_include.cmake")
include("/root/repo/build/tests/spark_test[1]_include.cmake")
include("/root/repo/build/tests/fluid_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/io_model_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/portability_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/threadpool_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_exec_test[1]_include.cmake")
