
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/parallel_exec_test.cc" "tests/CMakeFiles/parallel_exec_test.dir/parallel_exec_test.cc.o" "gcc" "tests/CMakeFiles/parallel_exec_test.dir/parallel_exec_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/dashdb_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/dashdb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/dashdb_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dashdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/dashdb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/synopsis/CMakeFiles/dashdb_synopsis.dir/DependInfo.cmake"
  "/root/repo/build/src/compression/CMakeFiles/dashdb_compression.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/dashdb_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/bufferpool/CMakeFiles/dashdb_bufferpool.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dashdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
