file(REMOVE_RECURSE
  "CMakeFiles/io_model_test.dir/io_model_test.cc.o"
  "CMakeFiles/io_model_test.dir/io_model_test.cc.o.d"
  "io_model_test"
  "io_model_test.pdb"
  "io_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
